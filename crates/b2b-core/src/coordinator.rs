//! The per-party coordinator: the `B2BCoordinator` package of Figure 4.
//!
//! One [`Coordinator`] runs at each organisation. It owns the party's
//! replicas, executes the coordination protocols over a reliable-delivery
//! layer, maintains the non-repudiation log and state checkpoints, and
//! exposes the local operations the [`crate::controller`] builds on.
//!
//! The coordinator is an event-driven [`NetNode`], so the same engine runs
//! under the deterministic network simulator and the threaded in-process
//! transport.

use crate::config::CoordinatorConfig;
use crate::decision::{CoordEvent, CoordEventKind, Outcome};
use crate::detect::Misbehaviour;
use crate::error::CoordError;
use crate::ids::{GroupId, ObjectId, RunId, StateId};
use crate::messages::{ConnectRequestMsg, WireMsg};
use crate::object::B2BObject;
use crate::replica::{ActiveRun, QueuedRequest, Replica, ReplicaSnapshot};
use b2b_crypto::{
    sha256, Digest32, KeyRing, PartyId, SecureRng, SigVerifyCache, Signature, Signer, TimeMs,
    TimeStampAuthority,
};
use b2b_evidence::{EvidenceKind, EvidenceRecord, EvidenceStore, SnapshotStore};
use b2b_net::reliable::Inbound;
use b2b_net::{NetNode, NodeCtx, ReliableMux};
use b2b_telemetry::{names, SpanIds, Telemetry, TraceContext};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Builds fresh application-object instances, used to reconstruct replicas
/// during crash recovery (the object's state is then re-installed from the
/// checkpoint). Factories model code and configuration, which survive
/// crashes; object *state* does not.
pub type ObjectFactory = Box<dyn Fn() -> Box<dyn B2BObject> + Send>;

/// Progress of this party's attempt to join an object's group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectStatus {
    /// Request sent; awaiting the sponsor's welcome or rejection.
    Pending,
    /// Admitted: the replica is installed and coordinated.
    Member,
    /// Rejected — immediately by the sponsor or by a member's veto; the
    /// two are indistinguishable to the subject (§4.5.3).
    Rejected,
}

/// The causal episode a coordinator is currently inside: one delivered
/// message, fired timer or client operation. Every trace event recorded
/// during the episode is stamped with its span, and every message sent
/// names that span as its causal parent — which is what lets the
/// assembler reconstruct a cross-node DAG from per-node flight recorders.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Episode {
    /// The distributed trace this episode belongs to (0 = untraced).
    trace_id: u64,
    /// The span allocated for this episode on this party.
    span_id: u64,
    /// The (possibly remote) span that caused this episode (0 for roots).
    parent_span: u64,
    /// Causal distance from the root, as carried on the incoming frame.
    hop: u8,
}

/// A connection attempt in progress at the subject.
pub(crate) struct PendingConnect {
    pub(crate) request: ConnectRequestMsg,
    pub(crate) sponsor: PartyId,
}

/// Handle for one application update submitted through
/// [`Coordinator::submit_update`].
///
/// A ticket survives batching: whether the update ends up coordinating
/// alone or coalesced with others into one signed round, the ticket resolves
/// to the round that carried it (or to a failure). Tickets are volatile —
/// they do not survive a crash, exactly like undecided run outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TicketId(pub u64);

impl std::fmt::Display for TicketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket-{}", self.0)
    }
}

/// Where a submitted update currently stands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TicketState {
    /// Waiting in the pending queue for the next coordination round.
    Queued,
    /// Dispatched: the update rides (possibly batched) in this run.
    Run(RunId),
    /// Never dispatched — e.g. the update stopped being applicable to the
    /// state the group agreed in the meantime.
    Failed(String),
}

/// The pending-update queue of one object: updates accepted by
/// [`Coordinator::submit_update`] but not yet carried by a round.
#[derive(Default)]
pub(crate) struct PendingUpdates {
    pub(crate) queue: Vec<(TicketId, Vec<u8>)>,
    /// The armed batch-linger timer, if any (stale timer ids are ignored
    /// when they fire).
    pub(crate) linger_timer: Option<u64>,
    /// The armed contention-retry holdoff timer, if any: while set, the
    /// queue is not flushed — requeued updates wait out a short jittered
    /// backoff so two colliding proposers desynchronise instead of
    /// re-colliding in lockstep.
    pub(crate) holdoff_timer: Option<u64>,
}

/// How many times one ticket's update is re-proposed after rounds lost
/// purely to the group's concurrency control before the ticket fails.
pub(crate) const MAX_TRANSIENT_RETRIES: u32 = 100;

/// Whether a veto reason is the systematic concurrency-control rejection
/// a recipient issues for a structurally honest proposal that merely
/// lost a race — a peer was mid-round, or an install beat this proposal
/// to the sequence number. These carry no application judgement, so the
/// proposer retries them (§3.3) instead of surfacing a veto.
pub(crate) fn is_transient_reject(reason: &str) -> bool {
    reason == "concurrent coordination run active"
        || reason == "predecessor is not the agreed state"
        || reason == "sequence number is not agreed + 1"
}

#[derive(Serialize, Deserialize)]
struct PendingConnectSnapshot {
    request: ConnectRequestMsg,
    sponsor: PartyId,
    object: ObjectId,
}

/// The B2BObjects coordinator for one party.
pub struct Coordinator {
    pub(crate) me: PartyId,
    pub(crate) signer: Arc<dyn Signer>,
    /// Shared: in a multi-group process every coordinator of every group
    /// holds the same `Arc`, so 10k groups pay for one ring, not 20k
    /// copies of every party's key.
    pub(crate) ring: Arc<KeyRing>,
    pub(crate) tsa: Option<TimeStampAuthority>,
    pub(crate) config: CoordinatorConfig,
    pub(crate) mux: ReliableMux,
    pub(crate) evidence: Arc<dyn EvidenceStore>,
    pub(crate) snapshots: Arc<dyn SnapshotStore>,
    pub(crate) rng: SecureRng,
    pub(crate) replicas: HashMap<ObjectId, Replica>,
    pub(crate) factories: HashMap<ObjectId, ObjectFactory>,
    pub(crate) pending_connects: HashMap<ObjectId, PendingConnect>,
    pub(crate) connect_status: HashMap<ObjectId, ConnectStatus>,
    pub(crate) outcomes: HashMap<RunId, Outcome>,
    pub(crate) events: Vec<CoordEvent>,
    pub(crate) msg_counts: BTreeMap<&'static str, u64>,
    pub(crate) detected: Vec<Misbehaviour>,
    pub(crate) deadline_timers: HashMap<u64, (ObjectId, RunId)>,
    pub(crate) ttp_cases: HashMap<RunId, crate::termination::TtpCase>,
    pub(crate) ttp_timers: HashMap<u64, RunId>,
    pub(crate) next_timer: u64,
    /// Per-object queues of updates accepted by [`Coordinator::submit_update`]
    /// and awaiting a coordination round. Volatile (cleared on crash).
    pub(crate) pending_updates: HashMap<ObjectId, PendingUpdates>,
    /// Resolution state of every ticket handed out. Volatile.
    pub(crate) tickets: HashMap<TicketId, TicketState>,
    pub(crate) next_ticket: u64,
    /// Armed batch-linger timers, timer id → object.
    pub(crate) linger_timers: HashMap<u64, ObjectId>,
    /// Armed contention-retry holdoff timers, timer id → object.
    pub(crate) holdoff_timers: HashMap<u64, ObjectId>,
    /// How often each still-live ticket has been re-proposed after a round
    /// lost to the group's concurrency control. Entries are dropped when
    /// the ticket's run completes (or the ticket fails). Volatile.
    pub(crate) transient_retry: HashMap<TicketId, u32>,
    /// Optional worker pool for cross-group parallel signature
    /// verification. When absent, batch verification runs inline on the
    /// coordinator's thread (deterministic — the simulator never sets it).
    pub(crate) verify_pool: Option<Arc<b2b_crypto::VerifyPool>>,
    /// Bounded memo of signature checks that already succeeded, so a
    /// signature verified at m2 receipt is not cryptographically
    /// re-verified at m3 aggregation. `RefCell` because verification sites
    /// hold `&self`; the coordinator is single-threaded per event. Cleared
    /// on [`Coordinator::update_ring`] and on crash (volatile state).
    pub(crate) sig_cache: RefCell<SigVerifyCache>,
    pub(crate) telemetry: Telemetry,
    /// Virtual start time of runs this party is participating in, used to
    /// observe `round_latency_ms` when the run completes. Volatile.
    pub(crate) run_started: HashMap<RunId, TimeMs>,
    /// The causal episode currently being executed, if any. Set by
    /// [`Coordinator::begin_episode`]/[`Coordinator::begin_root`] around
    /// message dispatch, timer firings and client operations.
    pub(crate) episode: Option<Episode>,
    /// Monotone per-party span allocator; combined with [`Self::party_tag`]
    /// it yields fleet-unique span ids without coordination or randomness.
    pub(crate) span_counter: u64,
    /// A 32-bit tag of this party's id, the high half of every span id it
    /// allocates.
    pub(crate) party_tag: u32,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("me", &self.me)
            .field("objects", &self.replicas.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Builder for [`Coordinator`] (C-BUILDER).
pub struct CoordinatorBuilder {
    me: PartyId,
    signer: Arc<dyn Signer>,
    ring: Arc<KeyRing>,
    tsa: Option<TimeStampAuthority>,
    config: CoordinatorConfig,
    evidence: Option<Arc<dyn EvidenceStore>>,
    snapshots: Option<Arc<dyn SnapshotStore>>,
    seed: u64,
    telemetry: Telemetry,
    verify_pool: Option<Arc<b2b_crypto::VerifyPool>>,
}

impl CoordinatorBuilder {
    /// Registers the shared key ring (every party's verification key).
    pub fn ring(mut self, ring: KeyRing) -> CoordinatorBuilder {
        self.ring = Arc::new(ring);
        self
    }

    /// Registers an already-shared key ring. A multi-group fleet builds
    /// the ring once and hands every coordinator the same `Arc`.
    pub fn shared_ring(mut self, ring: Arc<KeyRing>) -> CoordinatorBuilder {
        self.ring = ring;
        self
    }

    /// Installs the trusted time-stamping authority handle.
    pub fn tsa(mut self, tsa: TimeStampAuthority) -> CoordinatorBuilder {
        self.tsa = Some(tsa);
        self
    }

    /// Overrides the default configuration.
    pub fn config(mut self, config: CoordinatorConfig) -> CoordinatorBuilder {
        self.config = config;
        self
    }

    /// Uses `store` for both the non-repudiation log and checkpoints.
    pub fn store<S>(mut self, store: Arc<S>) -> CoordinatorBuilder
    where
        S: EvidenceStore + SnapshotStore + 'static,
    {
        self.evidence = Some(store.clone() as Arc<dyn EvidenceStore>);
        self.snapshots = Some(store as Arc<dyn SnapshotStore>);
        self
    }

    /// Seeds the coordinator's random generator (reproducible runs).
    pub fn seed(mut self, seed: u64) -> CoordinatorBuilder {
        self.seed = seed;
        self
    }

    /// Attaches an observability handle (metrics registry + optional trace
    /// sink). Without this call the coordinator runs with a private,
    /// sink-less [`Telemetry`] — observably identical behaviour, nothing to
    /// read out.
    pub fn telemetry(mut self, telemetry: Telemetry) -> CoordinatorBuilder {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a shared signature-verification worker pool. Batched
    /// verifications with enough cache misses are fanned out across the
    /// pool's threads; a pool shared by several coordinators (one per
    /// group) parallelises verification *across groups* too. Without this
    /// call, batch verification runs inline — same results, one thread.
    pub fn verify_pool(mut self, pool: Arc<b2b_crypto::VerifyPool>) -> CoordinatorBuilder {
        self.verify_pool = Some(pool);
        self
    }

    /// Builds the coordinator. Without an explicit store, an in-memory
    /// store is created (sufficient when crash-recovery is not exercised).
    pub fn build(self) -> Coordinator {
        let (evidence, snapshots) = match (self.evidence, self.snapshots) {
            (Some(e), Some(s)) => (e, s),
            _ => {
                let mem = Arc::new(b2b_evidence::MemStore::new());
                (
                    mem.clone() as Arc<dyn EvidenceStore>,
                    mem as Arc<dyn SnapshotStore>,
                )
            }
        };
        let mut rng = SecureRng::seeded(self.seed);
        let epoch = rng.next_u64();
        let mut mux = ReliableMux::new(self.config.retransmit_after, epoch);
        if let Some(max) = self.config.retransmit_max {
            mux = mux.with_retransmit_max(max);
        }
        mux.set_telemetry(self.telemetry.clone(), self.me.clone());
        let sig_cache = RefCell::new(SigVerifyCache::new(self.config.sig_cache_capacity));
        let party_tag = Coordinator::party_tag_of(&self.me);
        Coordinator {
            me: self.me,
            signer: self.signer,
            ring: self.ring,
            tsa: self.tsa,
            mux,
            config: self.config,
            evidence,
            snapshots,
            rng,
            replicas: HashMap::new(),
            factories: HashMap::new(),
            pending_connects: HashMap::new(),
            connect_status: HashMap::new(),
            outcomes: HashMap::new(),
            events: Vec::new(),
            msg_counts: BTreeMap::new(),
            detected: Vec::new(),
            deadline_timers: HashMap::new(),
            ttp_cases: HashMap::new(),
            ttp_timers: HashMap::new(),
            next_timer: 1,
            pending_updates: HashMap::new(),
            tickets: HashMap::new(),
            next_ticket: 1,
            linger_timers: HashMap::new(),
            holdoff_timers: HashMap::new(),
            transient_retry: HashMap::new(),
            verify_pool: self.verify_pool,
            sig_cache,
            telemetry: self.telemetry,
            run_started: HashMap::new(),
            episode: None,
            span_counter: 0,
            party_tag,
        }
    }
}

impl Coordinator {
    /// Starts building a coordinator for `me` signing with `signer`.
    ///
    /// # Example
    ///
    /// ```
    /// use b2b_core::Coordinator;
    /// use b2b_crypto::{KeyPair, PartyId};
    ///
    /// let kp = KeyPair::generate_from_seed(1);
    /// let coord = Coordinator::builder(PartyId::new("org1"), kp).seed(1).build();
    /// assert_eq!(coord.party().as_str(), "org1");
    /// ```
    pub fn builder(me: PartyId, signer: impl Signer + 'static) -> CoordinatorBuilder {
        CoordinatorBuilder {
            me,
            signer: Arc::new(signer),
            ring: Arc::new(KeyRing::new()),
            tsa: None,
            config: CoordinatorConfig::default(),
            evidence: None,
            snapshots: None,
            seed: 0,
            telemetry: Telemetry::default(),
            verify_pool: None,
        }
    }

    /// This coordinator's party identity.
    pub fn party(&self) -> &PartyId {
        &self.me
    }

    // -----------------------------------------------------------------
    // Object registration and queries
    // -----------------------------------------------------------------

    /// Registers a new shared object with this party as the sole group
    /// member. Other organisations join through the connection protocol.
    ///
    /// # Errors
    ///
    /// Returns [`CoordError::DuplicateObject`] if the alias is taken.
    pub fn register_object(
        &mut self,
        object_id: ObjectId,
        factory: ObjectFactory,
    ) -> Result<(), CoordError> {
        if self.replicas.contains_key(&object_id) || self.factories.contains_key(&object_id) {
            return Err(CoordError::DuplicateObject(object_id));
        }
        let object = factory();
        let state = object.get_state();
        let members = vec![self.me.clone()];
        let replica = Replica {
            object_id: object_id.clone(),
            object,
            group: GroupId::genesis(sha256(&self.rng.nonce()), &members),
            agreed: StateId::genesis(sha256(&self.rng.nonce()), &state),
            agreed_state: state,
            members,
            seen_runs: Default::default(),
            seen_tuples: Default::default(),
            active: None,
            queued: Vec::new(),
            completed_replies: HashMap::new(),
            completed_order: Default::default(),
            dirty_replies: Vec::new(),
            reply_slots: 0,
            detached: false,
        };
        self.factories.insert(object_id.clone(), factory);
        self.replicas.insert(object_id.clone(), replica);
        self.persist(&object_id);
        self.persist_index();
        Ok(())
    }

    /// Returns `true` if this party currently coordinates `object` as a
    /// group member.
    pub fn is_member(&self, object: &ObjectId) -> bool {
        self.replicas
            .get(object)
            .map(|r| !r.detached && r.is_member(&self.me))
            .unwrap_or(false)
    }

    /// The member list (join order) of `object`'s group, if known here.
    pub fn members(&self, object: &ObjectId) -> Option<Vec<PartyId>> {
        self.replicas.get(object).map(|r| r.members.clone())
    }

    /// The current group identifier of `object`, if known here.
    pub fn group(&self, object: &ObjectId) -> Option<GroupId> {
        self.replicas.get(object).map(|r| r.group)
    }

    /// The current connection sponsor for `object` (the most recently
    /// joined member), if known here.
    pub fn sponsor_of(&self, object: &ObjectId) -> Option<PartyId> {
        self.replicas.get(object).map(|r| r.sponsor().clone())
    }

    /// The agreed state tuple of `object`, if known here.
    pub fn agreed_id(&self, object: &ObjectId) -> Option<StateId> {
        self.replicas.get(object).map(|r| r.agreed)
    }

    /// The bytes of `object`'s current agreed state, if known here.
    pub fn agreed_state(&self, object: &ObjectId) -> Option<Vec<u8>> {
        self.replicas.get(object).map(|r| r.agreed_state.clone())
    }

    /// Whether a protocol run is currently active on `object`.
    pub fn is_busy(&self, object: &ObjectId) -> bool {
        self.replicas
            .get(object)
            .map(|r| r.active.is_some())
            .unwrap_or(false)
    }

    /// Read-only access to the application object of `object`.
    pub fn object(&self, object: &ObjectId) -> Option<&dyn B2BObject> {
        self.replicas.get(object).map(|r| r.object.as_ref())
    }

    /// Pre-flight check: how would *this* party's own policy judge a
    /// transition to `proposed`? Useful before proposing — the protocol
    /// itself never self-validates, because "the proposer is committed to
    /// acceptance at initiation" (§4.3) and a dishonest proposer would
    /// skip any local check anyway.
    ///
    /// # Errors
    ///
    /// [`CoordError::UnknownObject`] if `object` is not coordinated here.
    pub fn validate_locally(
        &self,
        object: &ObjectId,
        proposed: &[u8],
    ) -> Result<crate::decision::Decision, CoordError> {
        let rep = self
            .replicas
            .get(object)
            .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
        Ok(rep
            .object
            .validate_state(&self.me, &rep.agreed_state, proposed))
    }

    /// The outcome of `run`, once this party has learnt it.
    pub fn outcome_of(&self, run: &RunId) -> Option<&Outcome> {
        self.outcomes.get(run)
    }

    /// Progress of this party's connection attempt to `object`.
    pub fn connect_status(&self, object: &ObjectId) -> Option<&ConnectStatus> {
        self.connect_status.get(object)
    }

    /// Drains the coordination events accumulated since the last call (the
    /// application-visible `coordCallback` stream).
    pub fn take_events(&mut self) -> Vec<CoordEvent> {
        std::mem::take(&mut self.events)
    }

    /// Protocol-level messages sent so far, by kind (excludes acks and
    /// retransmissions). Experiment E1 reads these counters.
    pub fn message_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.msg_counts
    }

    /// Total protocol-level messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.msg_counts.values().sum()
    }

    /// Misbehaviour detected so far (also logged as evidence records).
    pub fn detected(&self) -> &[Misbehaviour] {
        &self.detected
    }

    /// The non-repudiation log of this party.
    pub fn evidence(&self) -> &Arc<dyn EvidenceStore> {
        &self.evidence
    }

    /// The observability handle this coordinator reports into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    // -----------------------------------------------------------------
    // Internal plumbing shared by the protocol modules
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // Causal episodes (distributed tracing)
    // -----------------------------------------------------------------

    /// A stable 32-bit tag of a party id, the high half of its span ids.
    pub(crate) fn party_tag_of(me: &PartyId) -> u32 {
        let digest = sha256(me.as_str().as_bytes());
        u32::from_be_bytes(digest.as_bytes()[..4].try_into().expect("4 bytes"))
    }

    /// Derives a content-addressed root trace id from `parts`. Content —
    /// never randomness — so the same logical operation gets the same
    /// trace id on every fabric and every rerun, which is what makes
    /// sim-vs-TCP trace comparison possible.
    pub(crate) fn derive_root(parts: &[&[u8]]) -> u64 {
        let mut buf = Vec::new();
        for p in parts {
            buf.extend_from_slice(&(p.len() as u64).to_be_bytes());
            buf.extend_from_slice(p);
        }
        let digest = sha256(&buf);
        u64::from_be_bytes(digest.as_bytes()[..8].try_into().expect("8 bytes"))
    }

    /// The root trace id of a protocol run: the first eight bytes of its
    /// run id, which is itself a digest of the signed proposal.
    pub(crate) fn run_root(run: &RunId) -> u64 {
        u64::from_be_bytes(run.0.as_bytes()[..8].try_into().expect("8 bytes"))
    }

    /// Allocates the next span id. Allocation is unconditional on every
    /// episode — independent of whether a trace sink is attached — so
    /// attaching one never changes the bytes a coordinator puts on the
    /// wire.
    fn alloc_span(&mut self) -> u64 {
        self.span_counter += 1;
        ((self.party_tag as u64) << 32) | (self.span_counter & 0xffff_ffff)
    }

    /// Opens the episode for a delivered message carrying `incoming`.
    pub(crate) fn begin_episode(&mut self, incoming: TraceContext) {
        let span_id = self.alloc_span();
        self.episode = Some(Episode {
            trace_id: incoming.trace_id,
            span_id,
            parent_span: incoming.parent_span,
            hop: incoming.hop,
        });
    }

    /// Opens a root episode — a client operation, timer firing or recovery
    /// that *starts* a causal chain rather than continuing one.
    pub(crate) fn begin_root(&mut self, trace_id: u64) {
        let span_id = self.alloc_span();
        self.episode = Some(Episode {
            trace_id,
            span_id,
            parent_span: 0,
            hop: 0,
        });
    }

    /// Closes the current episode.
    pub(crate) fn end_episode(&mut self) {
        self.episode = None;
    }

    /// The trace context to stamp on outgoing frames: the current episode's
    /// span becomes the causal parent, one hop further from the root.
    pub(crate) fn outgoing_ctx(&self) -> TraceContext {
        match &self.episode {
            Some(e) if e.trace_id != 0 => TraceContext {
                trace_id: e.trace_id,
                parent_span: e.span_id,
                hop: e.hop.saturating_add(1),
            },
            _ => TraceContext::NONE,
        }
    }

    /// The id triple stamped on trace events recorded in this episode.
    pub(crate) fn span_ids(&self) -> SpanIds {
        match &self.episode {
            Some(e) if e.trace_id != 0 => SpanIds {
                trace_id: e.trace_id,
                span_id: e.span_id,
                parent_span: e.parent_span,
            },
            _ => SpanIds::default(),
        }
    }

    pub(crate) fn send_wire(&mut self, to: &PartyId, msg: &WireMsg, ctx: &mut NodeCtx) {
        *self.msg_counts.entry(msg.kind_name()).or_default() += 1;
        let trace = self.outgoing_ctx();
        self.mux.send_traced(to.clone(), msg.to_bytes(), trace, ctx);
    }

    /// Sends one wire message to every recipient, serializing it once: the
    /// reliable layer frames the shared bytes per peer, so an m1/m3 fanned
    /// out to n−1 members costs one JSON encoding instead of n−1.
    pub(crate) fn send_wire_all(
        &mut self,
        recipients: &[PartyId],
        msg: &WireMsg,
        ctx: &mut NodeCtx,
    ) {
        if recipients.is_empty() {
            return;
        }
        let bytes = msg.to_bytes();
        *self.msg_counts.entry(msg.kind_name()).or_default() += recipients.len() as u64;
        self.telemetry.add(
            names::FANOUT_SERIALIZATIONS_AVOIDED,
            (recipients.len() - 1) as u64,
        );
        let trace = self.outgoing_ctx();
        for r in recipients {
            self.mux.send_traced(r.clone(), &bytes, trace, ctx);
        }
    }

    /// Verifies `sig` over `msg` against `party`'s registered key.
    ///
    /// `sig_verify_count` counts the *real* public-key operations; checks
    /// answered by the verification cache count under `sig_cache_hits`
    /// instead. A tampered byte, substituted signature or impersonated
    /// origin always misses the cache (the key binds all three), so §4.4
    /// detection is unaffected.
    pub(crate) fn verify_for(
        &self,
        party: &PartyId,
        msg: &[u8],
        sig: &Signature,
    ) -> Result<(), b2b_crypto::CryptoError> {
        self.verify_cached(party, msg, sha256(msg), sig)
    }

    /// As [`Coordinator::verify_for`], for callers that already hold the
    /// digest of `msg` (from a [`b2b_crypto::CachedCanonical`] memo) and
    /// need not re-hash.
    pub(crate) fn verify_cached(
        &self,
        party: &PartyId,
        msg: &[u8],
        digest: Digest32,
        sig: &Signature,
    ) -> Result<(), b2b_crypto::CryptoError> {
        if self.sig_cache.borrow_mut().check(party, &digest, sig) {
            self.telemetry.inc(names::SIG_CACHE_HITS);
            return Ok(());
        }
        self.telemetry.inc(names::SIG_VERIFY_COUNT);
        self.ring.verify_for(party, msg, sig)?;
        self.sig_cache
            .borrow_mut()
            .insert(party.clone(), digest, sig.clone());
        Ok(())
    }

    /// How many cache misses it takes before a batched verification is
    /// worth shipping to the worker pool (channel + wake-up overhead).
    const POOL_MIN_BATCH: usize = 4;

    /// Verifies a batch of `(party, message, digest, signature)` items,
    /// composing batch verification with the LRU cache:
    ///
    /// * items answered by the cache are excluded from the batch and count
    ///   under `sig_cache_hits`;
    /// * the remaining misses count under `sig_verify_count` (they are the
    ///   real cryptographic work) and — when there are at least two — are
    ///   checked by **one** [`b2b_crypto::verify_batch`] call, counted
    ///   under `sig_batch_verifies`, fanned out across the worker pool
    ///   when one is attached and the batch is large enough;
    /// * batch verification is all-or-nothing, so on failure each miss is
    ///   re-checked individually to *attribute* the fault — the returned
    ///   `PartyId` is the first offender (§4.4 detection is batch-size
    ///   independent);
    /// * verified signatures populate the cache exactly as the unbatched
    ///   path does, so later re-encounters are hits.
    pub(crate) fn verify_batch_cached(
        &self,
        items: &[(PartyId, Arc<[u8]>, Digest32, Signature)],
    ) -> Result<(), PartyId> {
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut cache = self.sig_cache.borrow_mut();
            for (i, (party, _, digest, sig)) in items.iter().enumerate() {
                if cache.check(party, digest, sig) {
                    self.telemetry.inc(names::SIG_CACHE_HITS);
                } else {
                    misses.push(i);
                }
            }
        }
        if misses.is_empty() {
            return Ok(());
        }
        self.telemetry
            .add(names::SIG_VERIFY_COUNT, misses.len() as u64);
        let ok = if misses.len() >= 2 {
            self.telemetry.inc(names::SIG_BATCH_VERIFIES);
            match &self.verify_pool {
                Some(pool) if misses.len() >= Coordinator::POOL_MIN_BATCH => {
                    let mut owned = Vec::with_capacity(misses.len());
                    for &i in &misses {
                        let (party, msg, _, sig) = &items[i];
                        let Some(key) = self.ring.key_for(party) else {
                            return Err(party.clone());
                        };
                        owned.push((key.clone(), msg.clone(), sig.clone()));
                    }
                    pool.verify(owned)
                }
                _ => {
                    let mut borrowed = Vec::with_capacity(misses.len());
                    for &i in &misses {
                        let (party, msg, _, sig) = &items[i];
                        let Some(key) = self.ring.key_for(party) else {
                            return Err(party.clone());
                        };
                        borrowed.push((key, msg.as_ref(), sig));
                    }
                    b2b_crypto::verify_batch(&borrowed).is_ok()
                }
            }
        } else {
            let (party, msg, _, sig) = &items[misses[0]];
            self.ring.verify_for(party, msg, sig).is_ok()
        };
        if ok {
            let mut cache = self.sig_cache.borrow_mut();
            for &i in &misses {
                let (party, _, digest, sig) = &items[i];
                cache.insert(party.clone(), *digest, sig.clone());
            }
            return Ok(());
        }
        // All-or-nothing failed: fall back to per-item verification so the
        // fault is pinned on a signer, caching the innocents along the way.
        for &i in &misses {
            let (party, msg, digest, sig) = &items[i];
            match self.ring.verify_for(party, msg, sig) {
                Ok(()) => {
                    self.sig_cache
                        .borrow_mut()
                        .insert(party.clone(), *digest, sig.clone());
                }
                Err(_) => return Err(party.clone()),
            }
        }
        // The batch claimed failure but every item verifies individually —
        // per-item checks are ground truth, so accept.
        Ok(())
    }

    /// Signs `msg` and seeds the verification cache with our own signature,
    /// so re-encountering it (e.g. our response aggregated into an m3) is a
    /// cache hit rather than a self re-verification.
    pub(crate) fn sign_and_cache(&self, msg: &[u8], digest: Digest32) -> Signature {
        let sig = self.signer.sign(msg);
        self.sig_cache
            .borrow_mut()
            .insert(self.me.clone(), digest, sig.clone());
        sig
    }

    /// Replaces the key ring and flushes the signature-verification cache:
    /// a cached accept must not outlive the key material it was checked
    /// against (§4.4 — detection re-checks everything under new keys).
    pub fn update_ring(&mut self, ring: KeyRing) {
        self.ring = Arc::new(ring);
        self.sig_cache.borrow_mut().clear();
    }

    /// Returns `m1`'s memoized proposal bytes, counting memo hits.
    pub(crate) fn proposal_bytes_of(&self, m1: &crate::messages::ProposeMsg) -> Arc<[u8]> {
        if m1.memo.is_cached() {
            self.telemetry.inc(names::CANONICAL_CACHE_HITS);
        }
        m1.proposal_bytes()
    }

    /// Returns `m2`'s memoized response bytes, counting memo hits.
    pub(crate) fn response_bytes_of(&self, m2: &crate::messages::RespondMsg) -> Arc<[u8]> {
        if m2.memo.is_cached() {
            self.telemetry.inc(names::CANONICAL_CACHE_HITS);
        }
        m2.response_bytes()
    }

    /// Records a trace event under this party's label, stamped with the
    /// current episode's causal ids (untraced outside an episode).
    pub(crate) fn trace(
        &self,
        now: TimeMs,
        span: &str,
        phase: &str,
        detail: impl FnOnce() -> String,
    ) {
        self.telemetry.trace_span(
            now.as_millis(),
            self.me.as_str(),
            span,
            phase,
            self.span_ids(),
            detail,
        );
    }

    /// Notes that `run` started at `now` (for round-latency observation).
    pub(crate) fn note_run_started(&mut self, run: RunId, now: TimeMs) {
        self.run_started.entry(run).or_insert(now);
    }

    /// Observes the latency of `run` completing at `now`, if its start was
    /// recorded on this party.
    pub(crate) fn observe_run_latency(&mut self, run: &RunId, now: TimeMs) {
        if let Some(started) = self.run_started.remove(run) {
            self.telemetry.observe_ms(
                names::ROUND_LATENCY_MS,
                now.saturating_sub(started).as_millis(),
            );
        }
    }

    /// Appends an evidence record; timestamps it when a TSA is configured.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn log_evidence(
        &mut self,
        kind: EvidenceKind,
        object: &ObjectId,
        run: &str,
        origin: PartyId,
        payload: Vec<u8>,
        signature: Option<b2b_crypto::Signature>,
        now: TimeMs,
    ) {
        let timestamp = self.tsa.as_ref().map(|tsa| tsa.stamp(&payload, now));
        let record = EvidenceRecord::new(
            kind,
            object.as_str(),
            run,
            origin,
            payload,
            signature,
            timestamp,
            now,
        );
        // A full log is a liveness problem, not a safety one; surface
        // storage failures as diagnostics rather than panicking.
        match self.evidence.append(record) {
            Ok(_) => self.telemetry.inc(names::EVIDENCE_RECORDS_APPENDED),
            Err(e) => self.detected.push(Misbehaviour::UnexpectedMessage {
                detail: format!("evidence log append failed: {e}"),
            }),
        }
    }

    /// Flushes a group-commit evidence batch at a protocol-step boundary
    /// (no-op for durable-per-append stores). Called at the end of every
    /// message/timer delivery and client operation, so a batch never spans
    /// the externally visible effects of a step.
    pub(crate) fn flush_evidence(&mut self) {
        if let Err(e) = self.evidence.flush() {
            self.detected.push(Misbehaviour::UnexpectedMessage {
                detail: format!("evidence flush failed: {e}"),
            });
        }
    }

    pub(crate) fn log_misbehaviour(
        &mut self,
        object: &ObjectId,
        run: &str,
        m: Misbehaviour,
        now: TimeMs,
    ) {
        let payload = serde_json::to_vec(&m).expect("misbehaviour serialises");
        self.log_evidence(
            EvidenceKind::Misbehaviour,
            object,
            run,
            self.me.clone(),
            payload,
            None,
            now,
        );
        self.detected.push(m);
    }

    pub(crate) fn emit(
        &mut self,
        object: &ObjectId,
        run: RunId,
        kind: CoordEventKind,
        now: TimeMs,
    ) {
        let event = CoordEvent {
            object: object.clone(),
            run,
            event: kind,
            at: now,
        };
        if let Some(rep) = self.replicas.get_mut(object) {
            rep.object.coord_callback(&event);
        }
        self.events.push(event);
    }

    /// Persists the replica snapshot for `object`.
    ///
    /// Re-replies remembered since the last checkpoint go to their own
    /// per-slot store entries (`obj-X-reply-N`, blob = run id || wire
    /// bytes) **before** the core document is written, so a crash between
    /// the two writes leaves the core referencing only slots that exist.
    /// Each reply is thus written once, when its run completes, instead of
    /// the whole retention window being re-serialised on every install.
    pub(crate) fn persist(&mut self, object: &ObjectId) {
        let (reply_blobs, snap) = {
            let Some(rep) = self.replicas.get_mut(object) else {
                return;
            };
            let reply_blobs: Vec<(u64, Vec<u8>)> = std::mem::take(&mut rep.dirty_replies)
                .into_iter()
                .filter_map(|run| {
                    // Evicted before this checkpoint: nothing to write.
                    let stored = rep.completed_replies.get(&run)?;
                    let mut blob = Vec::with_capacity(32 + stored.wire.len());
                    blob.extend_from_slice(&run.0 .0);
                    blob.extend_from_slice(&stored.wire);
                    Some((stored.slot, blob))
                })
                .collect();
            (reply_blobs, ReplicaSnapshot::capture(rep))
        };
        for (slot, blob) in reply_blobs {
            if let Err(e) = self
                .snapshots
                .put_snapshot(&format!("obj-{object}-reply-{slot}"), blob)
            {
                self.detected.push(Misbehaviour::UnexpectedMessage {
                    detail: format!("reply checkpoint write failed: {e}"),
                });
            }
        }
        let bytes = serde_json::to_vec(&snap).expect("snapshot serialises");
        if let Err(e) = self.snapshots.put_snapshot(&format!("obj-{object}"), bytes) {
            self.detected.push(Misbehaviour::UnexpectedMessage {
                detail: format!("snapshot write failed: {e}"),
            });
        }
    }

    pub(crate) fn persist_index(&mut self) {
        let ids: Vec<String> = self
            .replicas
            .keys()
            .map(|k| k.as_str().to_string())
            .collect();
        let bytes = serde_json::to_vec(&ids).expect("index serialises");
        let _ = self.snapshots.put_snapshot("objects", bytes);
        let pend: Vec<PendingConnectSnapshot> = self
            .pending_connects
            .iter()
            .map(|(oid, p)| PendingConnectSnapshot {
                request: p.request.clone(),
                sponsor: p.sponsor.clone(),
                object: oid.clone(),
            })
            .collect();
        let bytes = serde_json::to_vec(&pend).expect("pending serialises");
        let _ = self.snapshots.put_snapshot("pending-connects", bytes);
    }

    /// Arms the proposer-side run deadline, when configured.
    pub(crate) fn arm_deadline(&mut self, object: &ObjectId, run: RunId, ctx: &mut NodeCtx) {
        if let Some(deadline) = self.config.run_deadline {
            let id = self.next_timer;
            self.next_timer += 1;
            self.deadline_timers.insert(id, (object.clone(), run));
            ctx.set_timer(id, deadline);
        }
    }

    fn dispatch(&mut self, from: &PartyId, msg: WireMsg, ctx: &mut NodeCtx) {
        match msg {
            WireMsg::Propose(m) => self.on_propose(from, m, ctx),
            WireMsg::Respond(m) => self.on_respond(from, m, ctx),
            WireMsg::Decide(m) => self.on_decide(from, m, ctx),
            WireMsg::ConnectRequest(m) => self.on_connect_request(from, m, ctx),
            WireMsg::ConnectPropose(m) => self.on_connect_propose(from, m, ctx),
            WireMsg::MemberRespond(m) => self.on_member_respond(from, m, ctx),
            WireMsg::MemberDecide(m) => self.on_member_decide(from, m, ctx),
            WireMsg::Welcome(m) => self.on_welcome(from, m, ctx),
            WireMsg::ConnectReject(m) => self.on_connect_reject(from, m, ctx),
            WireMsg::DisconnectRequest(m) => self.on_disconnect_request(from, m, ctx),
            WireMsg::DisconnectPropose(m) => self.on_disconnect_propose(from, m, ctx),
            WireMsg::DisconnectAck(m) => self.on_disconnect_ack(from, m, ctx),
            WireMsg::DisconnectReject(m) => self.on_disconnect_reject(from, m, ctx),
            WireMsg::TtpResolve(m) => self.on_ttp_resolve(from, m, ctx),
            WireMsg::TtpEvidenceRequest(m) => self.on_ttp_evidence_request(from, m, ctx),
            WireMsg::TtpEvidence(m) => self.on_ttp_evidence(from, m, ctx),
            WireMsg::TtpResolution(m) => self.on_ttp_resolution(from, m, ctx),
        }
    }

    // -----------------------------------------------------------------
    // Crash recovery
    // -----------------------------------------------------------------

    fn recover_from_storage(&mut self, ctx: &mut NodeCtx) {
        // Recovery is a root cause of its own: the resumed-run resends it
        // triggers all hang off one recovery trace for this party.
        self.begin_root(Coordinator::derive_root(&[
            b"recovery",
            self.me.as_str().as_bytes(),
        ]));
        self.trace(ctx.now(), "recovery", "begin", || {
            "restoring replicas from checkpoints".to_string()
        });
        // Fresh reliable-layer incarnation so peers do not confuse our
        // restarted sequence numbers with pre-crash traffic.
        let epoch = self.rng.next_u64();
        let mut mux = ReliableMux::new(self.config.retransmit_after, epoch);
        if let Some(max) = self.config.retransmit_max {
            mux = mux.with_retransmit_max(max);
        }
        self.mux = mux;
        self.mux
            .set_telemetry(self.telemetry.clone(), self.me.clone());

        let ids: Vec<String> = self
            .snapshots
            .get_snapshot("objects")
            .and_then(|b| serde_json::from_slice(&b).ok())
            .unwrap_or_default();
        for id in ids {
            let object_id = ObjectId::new(id);
            let Some(bytes) = self.snapshots.get_snapshot(&format!("obj-{object_id}")) else {
                continue;
            };
            let Ok(snap) = serde_json::from_slice::<ReplicaSnapshot>(&bytes) else {
                continue;
            };
            let Some(factory) = self.factories.get(&object_id) else {
                continue;
            };
            let replica = snap.restore(object_id.clone(), factory(), |slot| {
                self.snapshots
                    .get_snapshot(&format!("obj-{object_id}-reply-{slot}"))
            });
            self.replicas.insert(object_id.clone(), replica);
            self.resume_run(&object_id, ctx);
        }
        // Pending connection attempts (no replica yet at the subject).
        let pending: Vec<PendingConnectSnapshot> = self
            .snapshots
            .get_snapshot("pending-connects")
            .and_then(|b| serde_json::from_slice(&b).ok())
            .unwrap_or_default();
        for p in pending {
            if self.replicas.contains_key(&p.object) {
                continue; // welcomed before the crash
            }
            let msg = WireMsg::ConnectRequest(p.request.clone());
            self.send_wire(&p.sponsor.clone(), &msg, ctx);
            self.connect_status
                .insert(p.object.clone(), ConnectStatus::Pending);
            self.pending_connects.insert(
                p.object,
                PendingConnect {
                    request: p.request,
                    sponsor: p.sponsor,
                },
            );
        }
        self.trace(ctx.now(), "recovery", "done", || {
            format!("replicas={}", self.replicas.len())
        });
        self.end_episode();
    }

    /// Re-sends the in-flight message(s) of a persisted active run.
    fn resume_run(&mut self, object: &ObjectId, ctx: &mut NodeCtx) {
        let Some(rep) = self.replicas.get(object) else {
            return;
        };
        let me = self.me.clone();
        match rep.active.clone() {
            None => {}
            Some(ActiveRun::Proposer(run)) => {
                let recipients = rep.recipients(&me);
                if let Some(decide) = &run.decided {
                    let msg = WireMsg::Decide(decide.clone());
                    self.send_wire_all(&recipients, &msg, ctx);
                } else {
                    let msg = WireMsg::Propose(run.propose.clone());
                    let pending: Vec<PartyId> = recipients
                        .into_iter()
                        .filter(|r| !run.responses.contains_key(r))
                        .collect();
                    self.send_wire_all(&pending, &msg, ctx);
                }
            }
            Some(ActiveRun::Recipient(run)) => {
                let proposer = run.propose.proposal.proposer.clone();
                let msg = WireMsg::Respond(run.my_response.clone());
                self.send_wire(&proposer, &msg, ctx);
            }
            Some(ActiveRun::Sponsor(run)) => {
                self.resume_sponsor_run(object, run, ctx);
            }
            Some(ActiveRun::Member(run)) => {
                let sponsor = match &run.change {
                    crate::replica::MembershipChange::Connect { propose, .. } => {
                        propose.proposal.sponsor.clone()
                    }
                    crate::replica::MembershipChange::Disconnect { propose, .. } => {
                        propose.proposal.sponsor.clone()
                    }
                };
                let msg = WireMsg::MemberRespond(run.my_response.clone());
                self.send_wire(&sponsor, &msg, ctx);
            }
            Some(ActiveRun::Leaving(run)) => {
                let msg = WireMsg::DisconnectRequest(run.request.clone());
                self.send_wire(&run.sponsor.clone(), &msg, ctx);
            }
        }
    }

    /// Answers a duplicate or post-recovery retransmission of a message
    /// belonging to an already-completed run. Returns `true` if handled.
    pub(crate) fn replay_completed_reply(
        &mut self,
        object: &ObjectId,
        run: &RunId,
        to: &PartyId,
        ctx: &mut NodeCtx,
    ) -> bool {
        let reply = self
            .replicas
            .get(object)
            .and_then(|r| r.completed_reply(run));
        match reply {
            Some(msg) => {
                self.send_wire(to, &msg, ctx);
                true
            }
            None => false,
        }
    }

    /// Runs the next queued membership request, if the object is idle;
    /// failing that, flushes any pending application updates. Membership
    /// changes take priority so a join/leave queued behind a stream of
    /// updates is not starved by batching.
    pub(crate) fn pump_queue(&mut self, object: &ObjectId, ctx: &mut NodeCtx) {
        loop {
            let next = {
                let Some(rep) = self.replicas.get_mut(object) else {
                    return;
                };
                if rep.active.is_some() {
                    return;
                }
                if rep.queued.is_empty() {
                    break;
                }
                rep.queued.remove(0)
            };
            let started = match next {
                QueuedRequest::Connect(req) => {
                    let from = req.request.subject.clone();
                    self.sponsor_connect(&from, req, ctx)
                }
                QueuedRequest::Disconnect(req) => {
                    let from = req.request.proposer.clone();
                    self.sponsor_disconnect(&from, req, ctx)
                }
            };
            // If the request started a run we are done; if it was answered
            // immediately (e.g. rejected), try the next queued request.
            if started {
                return;
            }
        }
        self.flush_pending_updates(object, ctx);
    }

    // -----------------------------------------------------------------
    // Pipelined update submission (batched rounds)
    // -----------------------------------------------------------------

    /// Submits an application update for coordination without waiting for
    /// the object to go idle. The update is queued; when the object is (or
    /// becomes) idle, pending updates are coalesced — up to
    /// [`CoordinatorConfig::batch_max`] of them, after at most
    /// [`CoordinatorConfig::batch_linger`] of gathering time — into **one**
    /// signed coordination round. The returned ticket resolves to the run
    /// that carried the update (see [`Coordinator::outcome_of_ticket`]).
    ///
    /// # Errors
    ///
    /// * [`CoordError::UnknownObject`] / [`CoordError::NotMember`] as for
    ///   a direct proposal.
    /// * [`CoordError::Busy`] when the pending queue has reached
    ///   [`CoordinatorConfig::pending_updates_max`] — backpressure, the
    ///   caller should retry after outstanding rounds complete.
    pub fn submit_update(
        &mut self,
        object: &ObjectId,
        update: Vec<u8>,
        ctx: &mut NodeCtx,
    ) -> Result<TicketId, CoordError> {
        {
            let rep = self
                .replicas
                .get(object)
                .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
            if rep.detached || !rep.is_member(&self.me) {
                return Err(CoordError::NotMember {
                    party: self.me.clone(),
                    object: object.clone(),
                });
            }
        }
        let pending = self.pending_updates.entry(object.clone()).or_default();
        if pending.queue.len() >= self.config.pending_updates_max {
            return Err(CoordError::Busy {
                object: object.clone(),
            });
        }
        let ticket = TicketId(self.next_ticket);
        self.next_ticket += 1;
        pending.queue.push((ticket, update));
        self.tickets.insert(ticket, TicketState::Queued);
        self.maybe_dispatch(object, ctx);
        Ok(ticket)
    }

    /// Submits several updates in one call: every update is ticketed and
    /// enqueued before the queue is pumped once, so the whole bulk rides
    /// a single batched round (up to `batch_max`) instead of the first
    /// update dispatching a round alone. Admission is all-or-nothing
    /// against `pending_updates_max` — a bulk that does not fit answers
    /// `Busy` without enqueueing anything.
    pub fn submit_updates(
        &mut self,
        object: &ObjectId,
        updates: Vec<Vec<u8>>,
        ctx: &mut NodeCtx,
    ) -> Result<Vec<TicketId>, CoordError> {
        {
            let rep = self
                .replicas
                .get(object)
                .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
            if rep.detached || !rep.is_member(&self.me) {
                return Err(CoordError::NotMember {
                    party: self.me.clone(),
                    object: object.clone(),
                });
            }
        }
        let pending = self.pending_updates.entry(object.clone()).or_default();
        if pending.queue.len() + updates.len() > self.config.pending_updates_max {
            return Err(CoordError::Busy {
                object: object.clone(),
            });
        }
        let mut tickets = Vec::with_capacity(updates.len());
        for update in updates {
            let ticket = TicketId(self.next_ticket);
            self.next_ticket += 1;
            pending.queue.push((ticket, update));
            tickets.push(ticket);
        }
        for &ticket in &tickets {
            self.tickets.insert(ticket, TicketState::Queued);
        }
        self.maybe_dispatch(object, ctx);
        Ok(tickets)
    }

    /// Dispatches or schedules pending updates for `object`: flush now when
    /// the queue is full enough (or lingering is disabled), otherwise arm
    /// the linger timer and let a little more load coalesce.
    fn maybe_dispatch(&mut self, object: &ObjectId, ctx: &mut NodeCtx) {
        let busy = self
            .replicas
            .get(object)
            .map(|r| r.active.is_some())
            .unwrap_or(true);
        if busy {
            return; // completion pumps the queue
        }
        let (len, armed) = match self.pending_updates.get(object) {
            Some(p) => (p.queue.len(), p.linger_timer.is_some()),
            None => return,
        };
        if len == 0 {
            return;
        }
        if len >= self.config.batch_max || self.config.batch_linger.as_millis() == 0 {
            self.flush_pending_updates(object, ctx);
        } else if !armed {
            let id = self.next_timer;
            self.next_timer += 1;
            self.linger_timers.insert(id, object.clone());
            if let Some(p) = self.pending_updates.get_mut(object) {
                p.linger_timer = Some(id);
            }
            ctx.set_timer(id, self.config.batch_linger);
        }
    }

    /// Arms a short, jittered contention holdoff on `object`'s pending
    /// queue: requeued updates re-propose only after it fires, so two
    /// proposers that just collided are unlikely to collide again in
    /// lockstep (randomised backoff; the jitter comes from this party's
    /// own seeded rng, keeping simulation runs deterministic).
    pub(crate) fn arm_retry_holdoff(&mut self, object: &ObjectId, ctx: &mut NodeCtx) {
        let already = self
            .pending_updates
            .get(object)
            .map(|p| p.holdoff_timer.is_some())
            .unwrap_or(false);
        if already {
            return;
        }
        let id = self.next_timer;
        self.next_timer += 1;
        self.holdoff_timers.insert(id, object.clone());
        if let Some(p) = self.pending_updates.get_mut(object) {
            p.holdoff_timer = Some(id);
        }
        let jitter_ms = 1 + (self.rng.nonce()[0] % 8) as u64;
        ctx.set_timer(id, b2b_crypto::TimeMs(jitter_ms));
    }

    /// Coalesces the pending updates of `object` into the next coordination
    /// round, if the object is idle: up to `batch_max` updates become one
    /// signed proposal (a singleton flush is byte-identical to a direct
    /// [`propose_update`](crate::Coordinator) call). Updates that no longer
    /// apply to the evolved state fail their tickets without sinking the
    /// rest of the chunk.
    pub(crate) fn flush_pending_updates(&mut self, object: &ObjectId, ctx: &mut NodeCtx) {
        if self
            .pending_updates
            .get(object)
            .map(|p| p.holdoff_timer.is_some())
            .unwrap_or(false)
        {
            return; // contention backoff armed: the holdoff timer flushes
        }
        loop {
            let busy = self
                .replicas
                .get(object)
                .map(|r| r.active.is_some())
                .unwrap_or(true);
            if busy {
                return;
            }
            let chunk: Vec<(TicketId, Vec<u8>)> = {
                let Some(p) = self.pending_updates.get_mut(object) else {
                    return;
                };
                p.linger_timer = None;
                if p.queue.is_empty() {
                    return;
                }
                let n = p.queue.len().min(self.config.batch_max);
                p.queue.drain(..n).collect()
            };
            // Pre-screen each update against the evolving state so one
            // inapplicable update fails its own ticket instead of aborting
            // the whole chunk's round.
            let mut updates = Vec::with_capacity(chunk.len());
            let mut ids = Vec::with_capacity(chunk.len());
            {
                let rep = self.replicas.get(object).expect("screened above");
                let mut state = rep.agreed_state.clone();
                for (tid, u) in chunk {
                    match rep.object.apply_update(&state, &u) {
                        Ok(next) => {
                            state = next;
                            ids.push(tid);
                            updates.push(u);
                        }
                        Err(reason) => {
                            self.tickets.insert(
                                tid,
                                TicketState::Failed(format!("update not applicable: {reason}")),
                            );
                        }
                    }
                }
            }
            if updates.is_empty() {
                continue; // whole chunk screened out; try the next one
            }
            match self.propose_update_batch(object, updates, ctx) {
                Ok(run) => {
                    for tid in ids {
                        self.tickets.insert(tid, TicketState::Run(run));
                    }
                    return;
                }
                Err(e) => {
                    let reason = e.to_string();
                    for tid in ids {
                        self.tickets
                            .insert(tid, TicketState::Failed(reason.clone()));
                    }
                }
            }
        }
    }

    /// Wraps an already-started run in a ticket, so callers that proposed
    /// directly (overwrite, synchronous update) and callers that went
    /// through the pending queue poll one uniform handle.
    pub fn ticket_for_run(&mut self, run: RunId) -> TicketId {
        let ticket = TicketId(self.next_ticket);
        self.next_ticket += 1;
        self.tickets.insert(ticket, TicketState::Run(run));
        ticket
    }

    /// Where `ticket` currently stands, if known.
    pub fn ticket_state(&self, ticket: &TicketId) -> Option<&TicketState> {
        self.tickets.get(ticket)
    }

    /// The run that carried `ticket`'s update, once dispatched.
    pub fn run_of_ticket(&self, ticket: &TicketId) -> Option<RunId> {
        match self.tickets.get(ticket) {
            Some(TicketState::Run(run)) => Some(*run),
            _ => None,
        }
    }

    /// The outcome of `ticket`'s update, once this party has learnt it.
    /// A ticket that failed before dispatch (inapplicable update, proposal
    /// error) reports as [`Outcome::Aborted`] with the failure reason.
    pub fn outcome_of_ticket(&self, ticket: &TicketId) -> Option<Outcome> {
        match self.tickets.get(ticket)? {
            TicketState::Queued => None,
            TicketState::Run(run) => self.outcomes.get(run).cloned(),
            TicketState::Failed(reason) => Some(Outcome::Aborted {
                reason: reason.clone(),
            }),
        }
    }

    /// How many submitted updates are still waiting (not yet dispatched)
    /// on `object`.
    pub fn pending_update_count(&self, object: &ObjectId) -> usize {
        self.pending_updates
            .get(object)
            .map(|p| p.queue.len())
            .unwrap_or(0)
    }
}

impl NetNode for Coordinator {
    fn id(&self) -> PartyId {
        self.me.clone()
    }

    fn on_message(&mut self, from: &PartyId, payload: &[u8], ctx: &mut NodeCtx) {
        match self.mux.on_message(from, payload, ctx) {
            Inbound::Deliver(bytes, trace) => {
                // One delivered message = one causal episode: every trace
                // event and outgoing frame below cites it as parent.
                self.begin_episode(trace);
                match WireMsg::from_bytes(&bytes) {
                    Some(msg) => self.dispatch(from, msg, ctx),
                    None => {
                        let object = ObjectId::new("?");
                        self.log_misbehaviour(
                            &object,
                            "",
                            Misbehaviour::UnexpectedMessage {
                                detail: format!("undecodable payload from {from}"),
                            },
                            ctx.now(),
                        );
                    }
                }
                self.end_episode();
            }
            Inbound::Duplicate | Inbound::Ack => {}
            Inbound::Malformed => {
                // Foreign or corrupted traffic below the protocol layer.
            }
        }
        self.flush_evidence();
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut NodeCtx) {
        if self.mux.on_timer(timer, ctx) && timer >= b2b_net::RELIABLE_TIMER_BASE {
            return;
        }
        if let Some((object, run)) = self.deadline_timers.remove(&timer) {
            // The deadline continues the run's trace as a second root —
            // the appeal/abort it triggers stays in the round's DAG.
            self.begin_root(Coordinator::run_root(&run));
            self.on_run_deadline(&object, run, ctx);
            self.end_episode();
        }
        if let Some(run) = self.ttp_timers.remove(&timer) {
            self.begin_root(Coordinator::run_root(&run));
            self.on_ttp_timer(run, ctx);
            self.end_episode();
        }
        if let Some(object) = self.linger_timers.remove(&timer) {
            // Only the currently armed timer flushes; a timer superseded by
            // an earlier full-batch flush is stale and ignored.
            let armed = self
                .pending_updates
                .get(&object)
                .map(|p| p.linger_timer == Some(timer))
                .unwrap_or(false);
            if armed {
                self.begin_root(Coordinator::derive_root(&[
                    b"batch-linger",
                    self.me.as_str().as_bytes(),
                    object.as_str().as_bytes(),
                    &timer.to_be_bytes(),
                ]));
                self.flush_pending_updates(&object, ctx);
                self.end_episode();
            }
        }
        if let Some(object) = self.holdoff_timers.remove(&timer) {
            let armed = self
                .pending_updates
                .get_mut(&object)
                .map(|p| {
                    if p.holdoff_timer == Some(timer) {
                        p.holdoff_timer = None;
                        true
                    } else {
                        false
                    }
                })
                .unwrap_or(false);
            if armed {
                self.begin_root(Coordinator::derive_root(&[
                    b"retry-holdoff",
                    self.me.as_str().as_bytes(),
                    object.as_str().as_bytes(),
                    &timer.to_be_bytes(),
                ]));
                self.flush_pending_updates(&object, ctx);
                self.end_episode();
            }
        }
        self.flush_evidence();
    }

    fn on_crash(&mut self) {
        // Volatile state is lost; the evidence log, checkpoints, key
        // material, object factories — and the telemetry handle, which
        // models an external observer — survive.
        self.replicas.clear();
        self.pending_connects.clear();
        self.connect_status.clear();
        self.outcomes.clear();
        self.events.clear();
        self.deadline_timers.clear();
        self.ttp_cases.clear();
        self.ttp_timers.clear();
        self.pending_updates.clear();
        self.tickets.clear();
        self.linger_timers.clear();
        self.holdoff_timers.clear();
        self.transient_retry.clear();
        self.run_started.clear();
        self.sig_cache.borrow_mut().clear();
        // The episode dies with the crash; the span allocator survives so
        // post-recovery spans never collide with pre-crash ones.
        self.episode = None;
    }

    fn on_recover(&mut self, ctx: &mut NodeCtx) {
        self.recover_from_storage(ctx);
        self.flush_evidence();
    }
}
