//! Per-object replica state held by a coordinator.
//!
//! Figure 2 of the paper: the logical shared object is realised as
//! regulated coordination of replicas held at each organisation. A
//! [`Replica`] is one such replica plus the protocol bookkeeping the
//! engine needs: the member list in join order (which determines sponsor
//! selection), the group identifier, the agreed state tuple, replay
//! detection sets, and at most one active protocol run.

use crate::ids::{GroupId, ObjectId, RunId, StateId};
use crate::messages::{
    ConnectProposeMsg, ConnectRequestMsg, DecideMsg, DisconnectProposeMsg, DisconnectRequestMsg,
    MemberDecideMsg, MemberRespondMsg, ProposeMsg, RespondMsg, WireMsg,
};
use crate::object::B2BObject;
use b2b_crypto::{Digest32, PartyId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// A state-coordination run at its proposer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProposerRun {
    /// Run label.
    pub run: RunId,
    /// The m1 we sent (kept for recovery re-sends).
    pub propose: ProposeMsg,
    /// The authenticator `r_P` (revealed in m3).
    pub authenticator: [u8; 32],
    /// The successor state the run installs on success.
    pub new_state: Vec<u8>,
    /// Responses collected so far, by responder.
    pub responses: BTreeMap<PartyId, RespondMsg>,
    /// The m3, once computed (kept for recovery re-sends).
    pub decided: Option<DecideMsg>,
}

/// A state-coordination run at a recipient.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecipientRun {
    /// Run label.
    pub run: RunId,
    /// The m1 we received.
    pub propose: ProposeMsg,
    /// The m2 we sent (re-sent on recovery or duplicate m1).
    pub my_response: RespondMsg,
    /// For accepted proposals: the successor state to install on a
    /// positive decide (body for overwrites, computed state for updates).
    pub pending_state: Option<Vec<u8>>,
}

/// What a membership run is changing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum MembershipChange {
    /// Admitting `subject`.
    Connect {
        /// The joining party.
        subject: PartyId,
        /// The subject's original signed request.
        request: ConnectRequestMsg,
        /// The sponsor's relay (kept for recovery re-sends).
        propose: ConnectProposeMsg,
    },
    /// Removing `subjects` (voluntarily or by eviction).
    Disconnect {
        /// The leaving parties.
        subjects: Vec<PartyId>,
        /// `true` for eviction.
        eviction: bool,
        /// The original signed request.
        request: DisconnectRequestMsg,
        /// The sponsor's relay.
        propose: DisconnectProposeMsg,
    },
}

/// A membership run at its sponsor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SponsorRun {
    /// Run label.
    pub run: RunId,
    /// What is being changed.
    pub change: MembershipChange,
    /// The authenticator revealed in the decide.
    pub authenticator: [u8; 32],
    /// The member list that results if agreed (join order).
    pub new_members: Vec<PartyId>,
    /// The group identifier that results if agreed.
    pub new_group: GroupId,
    /// The members polled (recipients of the proposal).
    pub polled: Vec<PartyId>,
    /// Responses collected so far.
    pub responses: BTreeMap<PartyId, MemberRespondMsg>,
    /// The decide, once computed.
    pub decided: Option<MemberDecideMsg>,
}

/// A membership run at a polled member.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemberRun {
    /// Run label.
    pub run: RunId,
    /// What is being changed.
    pub change: MembershipChange,
    /// The response we sent to the sponsor.
    pub my_response: MemberRespondMsg,
}

/// A voluntary disconnection at its subject, awaiting the sponsor's ack.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LeavingRun {
    /// The request we sent.
    pub request: DisconnectRequestMsg,
    /// The sponsor we sent it to.
    pub sponsor: PartyId,
}

/// The at-most-one protocol run currently active at this replica.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ActiveRun {
    /// We proposed a state change.
    Proposer(ProposerRun),
    /// We are validating another party's state change.
    Recipient(RecipientRun),
    /// We sponsor a membership change.
    Sponsor(SponsorRun),
    /// We are polled about a membership change.
    Member(MemberRun),
    /// We asked to leave and await the ack.
    Leaving(LeavingRun),
}

impl ActiveRun {
    /// The run label, where one exists (a [`LeavingRun`] has none until the
    /// sponsor assigns it).
    pub fn run_id(&self) -> Option<RunId> {
        match self {
            ActiveRun::Proposer(r) => Some(r.run),
            ActiveRun::Recipient(r) => Some(r.run),
            ActiveRun::Sponsor(r) => Some(r.run),
            ActiveRun::Member(r) => Some(r.run),
            ActiveRun::Leaving(_) => None,
        }
    }
}

/// A queued membership request, deferred while another run is active
/// (§4.5.1: the sponsor blocks new coordination requests pending decision
/// on any active request).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum QueuedRequest {
    /// A connection request from a prospective member.
    Connect(ConnectRequestMsg),
    /// A disconnection/eviction request.
    Disconnect(DisconnectRequestMsg),
}

/// One party's replica of a shared object plus protocol bookkeeping.
pub struct Replica {
    /// The object alias.
    pub object_id: ObjectId,
    /// The application object (validation upcalls, state install).
    pub object: Box<dyn B2BObject>,
    /// Member list in join order: `members.last()` is the most recently
    /// joined member — the connection sponsor (§4.5.1).
    pub members: Vec<PartyId>,
    /// Current group identifier.
    pub group: GroupId,
    /// The agreed state tuple `t_agreed`.
    pub agreed: StateId,
    /// Bytes of the agreed state (checkpointed for recovery/rollback).
    pub agreed_state: Vec<u8>,
    /// Run labels seen, keyed by the agreed sequence number current when
    /// each was first seen (replay detection across runs). Pruned by the
    /// replay window alongside `seen_tuples`, so the set — and the
    /// snapshot written after every installation — stays bounded no
    /// matter how many rounds a replica lives through.
    pub seen_runs: HashMap<RunId, u64>,
    /// Proposal tuples ever seen: invariant 4 of §4.2.
    pub seen_tuples: HashSet<(u64, Digest32)>,
    /// At most one active run.
    pub active: Option<ActiveRun>,
    /// Membership requests deferred behind the active run.
    pub queued: Vec<QueuedRequest>,
    /// Responses we produced for already-completed runs, so a duplicate or
    /// post-recovery retransmission of m1/m3 gets a consistent re-reply.
    /// Stored pre-encoded (see [`StoredReply`]) so the per-install snapshot
    /// never re-serialises the window. Bounded: insert through
    /// [`Replica::remember_reply`].
    pub completed_replies: HashMap<RunId, StoredReply>,
    /// Insertion order of `completed_replies`, oldest first — the
    /// deterministic eviction order when the retention cap is exceeded.
    pub completed_order: VecDeque<RunId>,
    /// Runs remembered since the last checkpoint, i.e. re-replies whose
    /// slot the persistence layer has not written yet.
    pub dirty_replies: Vec<RunId>,
    /// Monotonic counter of remembered replies; assigns storage slots.
    pub reply_slots: u64,
    /// Set when this party has left (or been evicted from) the group; the
    /// replica is kept for inspection but no longer coordinates.
    pub detached: bool,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("object_id", &self.object_id)
            .field("members", &self.members)
            .field("group", &self.group)
            .field("agreed", &self.agreed)
            .field("active", &self.active.is_some())
            .field("detached", &self.detached)
            .finish()
    }
}

impl Replica {
    /// The current connection sponsor: the most recently joined member.
    pub fn sponsor(&self) -> &PartyId {
        self.members.last().expect("group is never empty")
    }

    /// The sponsor for a disconnection of `subjects`: the most recently
    /// joined member that is not itself leaving (§4.5.1).
    pub fn sponsor_for_disconnect(&self, subjects: &[PartyId]) -> Option<&PartyId> {
        self.members.iter().rev().find(|m| !subjects.contains(m))
    }

    /// Returns `true` if `party` is currently a member.
    pub fn is_member(&self, party: &PartyId) -> bool {
        self.members.contains(party)
    }

    /// The recipients of a proposal by `proposer`: all members but them.
    pub fn recipients(&self, proposer: &PartyId) -> Vec<PartyId> {
        self.members
            .iter()
            .filter(|m| *m != proposer)
            .cloned()
            .collect()
    }

    /// Records the re-reply for a completed run, evicting the oldest
    /// retained reply once more than `cap` are held. A peer retransmitting
    /// a run older than the cap gets silence and recovers through the
    /// normal state-transfer path; `cap == 0` retains nothing.
    ///
    /// The message is encoded to wire bytes **here, once**. The window used
    /// to hold `WireMsg` values and be re-serialised wholesale into every
    /// per-install snapshot, which made checkpointing O(window) — at the
    /// default cap of 64 that was the single largest cost of a coordination
    /// round, and it fell hardest on whoever proposes most (a pipelining
    /// proposer retains full decides; recipients only their response).
    /// Pre-encoded bytes keep every later touch — checkpoint, re-reply
    /// send — a plain byte copy.
    pub fn remember_reply(&mut self, run: RunId, reply: WireMsg, cap: usize) {
        if cap == 0 {
            return;
        }
        let slot = self.reply_slots % cap as u64;
        self.reply_slots += 1;
        let stored = StoredReply {
            slot,
            wire: reply.to_bytes(),
        };
        if self.completed_replies.insert(run, stored).is_none() {
            self.completed_order.push_back(run);
        }
        self.dirty_replies.push(run);
        while self.completed_replies.len() > cap {
            let Some(oldest) = self.completed_order.pop_front() else {
                break;
            };
            self.completed_replies.remove(&oldest);
        }
    }

    /// Decodes the retained re-reply for `run`, if the window still holds
    /// it. Only duplicate/post-recovery retransmissions and TTP evidence
    /// requests take this path, so decode-on-demand is the right trade.
    pub fn completed_reply(&self, run: &RunId) -> Option<WireMsg> {
        self.completed_replies
            .get(run)
            .and_then(|r| WireMsg::from_bytes(&r.wire))
    }

    /// Prunes replay-detection tuples that have fallen out of the window:
    /// after an installation, tuples at sequence numbers more than `window`
    /// behind the agreed state can no longer pass the exact-increment
    /// sequence check, so dropping them only degrades the misbehaviour
    /// label (generic sequence complaint instead of `ReplayedProposal`)
    /// while bounding the set — and the snapshot — across runs.
    pub fn prune_seen(&mut self, window: u64) {
        let floor = self.agreed.seq.saturating_sub(window);
        self.seen_tuples.retain(|(seq, _)| *seq >= floor);
        self.seen_runs.retain(|_, seen_at| *seen_at >= floor);
    }
}

/// A completed run's re-reply: the wire message pre-encoded at
/// [`Replica::remember_reply`] time, plus the snapshot-store slot it is
/// checkpointed under.
///
/// Slots are assigned round-robin over the retention cap, so the store
/// holds at most `cap` reply blobs per object no matter how many rounds
/// the replica lives through, and the main snapshot document only lists
/// `(run, slot)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredReply {
    /// Storage slot (`reply_slots % cap` at insert time).
    pub slot: u64,
    /// The encoded wire message ([`WireMsg::to_bytes`]).
    pub wire: Vec<u8>,
}

/// The durable image of a replica, written to the snapshot store after
/// every installation and membership change and reloaded on recovery.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// Member list in join order.
    pub members: Vec<PartyId>,
    /// Group identifier.
    pub group: GroupId,
    /// Agreed state tuple.
    pub agreed: StateId,
    /// Agreed state bytes, hex-encoded. A byte vector would serialise as
    /// a JSON integer array — one boxed value per byte — which makes the
    /// per-install snapshot write O(state) with a constant large enough
    /// to dominate whole coordination rounds; hex keeps it one string.
    pub agreed_state: String,
    /// Replay-detection: runs seen, with the agreed seq each was seen at.
    pub seen_runs: Vec<(RunId, u64)>,
    /// Replay-detection: proposal tuples seen.
    pub seen_tuples: Vec<(u64, Digest32)>,
    /// The active run, if one was in progress.
    pub active: Option<ActiveRun>,
    /// Deferred membership requests.
    pub queued: Vec<QueuedRequest>,
    /// Re-replies for completed runs (so retransmitted traffic after a
    /// crash still receives the decide it is waiting for), as `(run,
    /// slot)` pairs, oldest first. The reply bytes themselves live in
    /// per-slot store entries written once when each run completes — the
    /// per-install snapshot used to re-serialise the whole window (~64
    /// full wire messages) on every write, which dominated round cost.
    pub completed_replies: Vec<(RunId, u64)>,
    /// Continuation point for slot assignment after recovery.
    pub reply_slots: u64,
    /// Whether the party had left the group.
    pub detached: bool,
}

impl ReplicaSnapshot {
    /// Captures the durable image of `replica`.
    pub fn capture(replica: &Replica) -> ReplicaSnapshot {
        ReplicaSnapshot {
            members: replica.members.clone(),
            group: replica.group,
            agreed: replica.agreed,
            agreed_state: hex::encode(&replica.agreed_state),
            seen_runs: replica.seen_runs.iter().map(|(r, s)| (*r, *s)).collect(),
            seen_tuples: replica.seen_tuples.iter().copied().collect(),
            active: replica.active.clone(),
            queued: replica.queued.clone(),
            // Serialized oldest-first so restore preserves eviction order.
            completed_replies: replica
                .completed_order
                .iter()
                .filter_map(|k| replica.completed_replies.get(k).map(|v| (*k, v.slot)))
                .collect(),
            reply_slots: replica.reply_slots,
            detached: replica.detached,
        }
    }

    /// Rebuilds a replica around a freshly constructed application object
    /// (the object's state is re-installed from the checkpoint).
    ///
    /// `fetch_reply` resolves a re-reply storage slot back to the bytes
    /// written for it (see [`Replica::remember_reply`]). Each blob carries
    /// the 32-byte run id it was written for as a prefix; an entry whose
    /// blob is missing or names a different run — a crash landed between a
    /// slot overwrite and the core snapshot that would have retired the
    /// old entry — is dropped, which merely re-runs the eviction the
    /// interrupted write was performing.
    pub fn restore(
        self,
        object_id: ObjectId,
        mut object: Box<dyn B2BObject>,
        mut fetch_reply: impl FnMut(u64) -> Option<Vec<u8>>,
    ) -> Replica {
        let agreed_state = hex::decode(&self.agreed_state).expect("snapshot state is hex");
        object.apply_state(&agreed_state);
        let mut completed_replies = HashMap::new();
        let mut completed_order = VecDeque::new();
        for (run, slot) in &self.completed_replies {
            let Some(blob) = fetch_reply(*slot) else {
                continue;
            };
            if blob.len() < 32 || blob[..32] != run.0 .0 {
                continue;
            }
            completed_replies.insert(
                *run,
                StoredReply {
                    slot: *slot,
                    wire: blob[32..].to_vec(),
                },
            );
            completed_order.push_back(*run);
        }
        Replica {
            object_id,
            object,
            members: self.members,
            group: self.group,
            agreed: self.agreed,
            agreed_state,
            seen_runs: self.seen_runs.into_iter().collect(),
            seen_tuples: self.seen_tuples.into_iter().collect(),
            active: self.active,
            queued: self.queued,
            completed_replies,
            completed_order,
            dirty_replies: Vec::new(),
            reply_slots: self.reply_slots,
            detached: self.detached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Decision;
    use crate::object::SharedCell;
    use b2b_crypto::sha256;

    fn replica(members: &[&str]) -> Replica {
        let object = Box::new(SharedCell::new(0u64));
        let members: Vec<PartyId> = members.iter().map(|m| PartyId::new(*m)).collect();
        let state = serde_json::to_vec(&0u64).unwrap();
        Replica {
            object_id: ObjectId::new("obj"),
            object,
            group: GroupId::genesis(sha256(b"g"), &members),
            agreed: StateId::genesis(sha256(b"r"), &state),
            agreed_state: state,
            members,
            seen_runs: HashMap::new(),
            seen_tuples: HashSet::new(),
            active: None,
            queued: Vec::new(),
            completed_replies: HashMap::new(),
            completed_order: VecDeque::new(),
            dirty_replies: Vec::new(),
            reply_slots: 0,
            detached: false,
        }
    }

    #[test]
    fn sponsor_is_most_recently_joined() {
        let r = replica(&["a", "b", "c"]);
        assert_eq!(r.sponsor(), &PartyId::new("c"));
    }

    #[test]
    fn disconnect_sponsor_skips_subjects() {
        let r = replica(&["a", "b", "c"]);
        assert_eq!(
            r.sponsor_for_disconnect(&[PartyId::new("c")]),
            Some(&PartyId::new("b"))
        );
        assert_eq!(
            r.sponsor_for_disconnect(&[PartyId::new("b")]),
            Some(&PartyId::new("c"))
        );
        assert_eq!(
            r.sponsor_for_disconnect(&[PartyId::new("a"), PartyId::new("b"), PartyId::new("c")]),
            None
        );
    }

    #[test]
    fn recipients_exclude_proposer() {
        let r = replica(&["a", "b", "c"]);
        assert_eq!(
            r.recipients(&PartyId::new("b")),
            vec![PartyId::new("a"), PartyId::new("c")]
        );
    }

    #[test]
    fn remember_reply_evicts_oldest_beyond_cap() {
        let mut r = replica(&["a", "b"]);
        let mk = |i: u8| {
            WireMsg::Decide(DecideMsg {
                object: ObjectId::new("obj"),
                run: RunId(sha256(&[i])),
                authenticator: [0; 32],
                responses: Vec::new(),
            })
        };
        for i in 0..5u8 {
            r.remember_reply(RunId(sha256(&[i])), mk(i), 3);
        }
        assert_eq!(r.completed_replies.len(), 3);
        assert_eq!(r.completed_order.len(), 3);
        assert!(!r.completed_replies.contains_key(&RunId(sha256(&[0u8]))));
        assert!(!r.completed_replies.contains_key(&RunId(sha256(&[1u8]))));
        assert!(r.completed_replies.contains_key(&RunId(sha256(&[4u8]))));
        // The retained replies decode back to the remembered messages,
        // and their slots stay within the cap.
        assert_eq!(r.completed_reply(&RunId(sha256(&[4u8]))), Some(mk(4)));
        assert!(r.completed_replies.values().all(|sr| sr.slot < 3));
        // Zero cap retains nothing.
        let mut empty = replica(&["a", "b"]);
        empty.remember_reply(RunId(sha256(b"z")), mk(9), 0);
        assert!(empty.completed_replies.is_empty());
    }

    #[test]
    fn prune_seen_drops_tuples_outside_window() {
        let mut r = replica(&["a"]);
        for seq in 0..10u64 {
            r.seen_tuples.insert((seq, sha256(&[seq as u8])));
        }
        r.agreed.seq = 9;
        r.prune_seen(3);
        assert_eq!(r.seen_tuples.len(), 4); // seqs 6..=9
        assert!(r.seen_tuples.iter().all(|(s, _)| *s >= 6));
    }

    #[test]
    fn snapshot_roundtrip_preserves_protocol_state() {
        let mut r = replica(&["a", "b"]);
        r.seen_tuples.insert((3, sha256(b"t")));
        r.seen_runs.insert(RunId(sha256(b"run")), 0);
        let run = RunId(sha256(b"done"));
        let reply = WireMsg::Decide(DecideMsg {
            object: ObjectId::new("obj"),
            run,
            authenticator: [0; 32],
            responses: Vec::new(),
        });
        r.remember_reply(run, reply.clone(), 4);
        // Model the per-slot store: blob = run id || wire bytes.
        let slots: HashMap<u64, Vec<u8>> = r
            .completed_replies
            .iter()
            .map(|(k, sr)| {
                let mut blob = k.0 .0.to_vec();
                blob.extend_from_slice(&sr.wire);
                (sr.slot, blob)
            })
            .collect();
        let snap = ReplicaSnapshot::capture(&r);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ReplicaSnapshot = serde_json::from_str(&json).unwrap();
        let restored = back.restore(
            ObjectId::new("obj"),
            Box::new(SharedCell::new(99u64)),
            |s| slots.get(&s).cloned(),
        );
        assert_eq!(restored.members, r.members);
        assert_eq!(restored.group, r.group);
        assert_eq!(restored.agreed, r.agreed);
        assert_eq!(restored.agreed_state, r.agreed_state);
        assert!(restored.seen_tuples.contains(&(3, sha256(b"t"))));
        // The fresh object had state 99 but restore installs the checkpoint.
        assert_eq!(restored.object.get_state(), r.agreed_state);
        // The re-reply window survives through the per-slot store.
        assert_eq!(restored.completed_reply(&run), Some(reply));
        assert_eq!(restored.reply_slots, r.reply_slots);
    }

    #[test]
    fn restore_drops_replies_whose_slot_was_reused() {
        let mut r = replica(&["a", "b"]);
        let run = RunId(sha256(b"stale"));
        r.remember_reply(
            run,
            WireMsg::Decide(DecideMsg {
                object: ObjectId::new("obj"),
                run,
                authenticator: [0; 32],
                responses: Vec::new(),
            }),
            4,
        );
        let snap = ReplicaSnapshot::capture(&r);
        // The slot now holds a blob written for a *different* run: the
        // crash landed between the slot overwrite and the core snapshot.
        let mut blob = sha256(b"other-run").0.to_vec();
        blob.extend_from_slice(b"{}");
        let restored = snap.restore(
            ObjectId::new("obj"),
            Box::new(SharedCell::new(0u64)),
            |_slot| Some(blob.clone()),
        );
        assert!(restored.completed_replies.is_empty());
        assert!(restored.completed_order.is_empty());
    }

    #[test]
    fn shared_cell_validator_is_irrelevant_here_but_object_installs() {
        // Guard: restore must call apply_state even for accept-all cells.
        let snap = ReplicaSnapshot::capture(&replica(&["a"]));
        let restored = snap.restore(
            ObjectId::new("obj"),
            Box::new(SharedCell::new(5u64).with_validator(|_w, _o, _n| Decision::accept())),
            |_slot| None,
        );
        assert_eq!(
            restored.object.get_state(),
            serde_json::to_vec(&0u64).unwrap()
        );
    }
}
