//! The connection and disconnection protocols (§4.5): sponsor-coordinated
//! membership changes with non-repudiable agreement on both the membership
//! of the group and the agreed object state.
//!
//! Roles: the **subject** (joining or leaving party) and the **sponsor** —
//! the most recently joined member, who relays the request to the current
//! membership, aggregates their signed decisions, and blocks new
//! coordination requests while one is pending (§4.5.1).

use crate::coordinator::{ConnectStatus, ObjectFactory, PendingConnect};
use crate::decision::{CoordEventKind, Decision, Outcome};
use crate::detect::Misbehaviour;
use crate::error::CoordError;
use crate::ids::{GroupId, ObjectId, RunId};
use crate::messages::{
    ConnectProposal, ConnectProposeMsg, ConnectReject, ConnectRejectMsg, ConnectRequest,
    ConnectRequestMsg, DisconnectAck, DisconnectAckMsg, DisconnectProposal, DisconnectProposeMsg,
    DisconnectReject, DisconnectRejectMsg, DisconnectRequest, DisconnectRequestMsg,
    MemberDecideMsg, MemberRespondMsg, MemberResponse, Welcome, WelcomeMsg, WireMsg,
};
use crate::replica::{
    ActiveRun, LeavingRun, MemberRun, MembershipChange, QueuedRequest, Replica, SponsorRun,
};
use crate::Coordinator;
use b2b_crypto::{sha256, CanonicalEncode, PartyId};
use b2b_evidence::EvidenceKind;
use b2b_net::NodeCtx;
use b2b_telemetry::names;

impl Coordinator {
    // =================================================================
    // Subject side: joining
    // =================================================================

    /// Requests admission to `object`'s sharing group via `sponsor` (the
    /// most recently joined member — any member can name it, see
    /// [`Coordinator::sponsor_of`]).
    ///
    /// `factory` builds this party's replica object; its state is replaced
    /// by the group's agreed state carried in the sponsor's welcome.
    /// Outcome is observable through [`Coordinator::connect_status`].
    ///
    /// # Errors
    ///
    /// [`CoordError::DuplicateObject`] if already registered or a request
    /// is already pending.
    pub fn request_connect(
        &mut self,
        object: ObjectId,
        factory: ObjectFactory,
        sponsor: PartyId,
        ctx: &mut NodeCtx,
    ) -> Result<(), CoordError> {
        if self.replicas.contains_key(&object) || self.pending_connects.contains_key(&object) {
            return Err(CoordError::DuplicateObject(object));
        }
        let request = ConnectRequest {
            object: object.clone(),
            subject: self.me.clone(),
            nonce_hash: sha256(&self.rng.nonce()),
        };
        let sig = self.signer.sign(&request.canonical_bytes());
        let msg = ConnectRequestMsg { request, sig };
        // Content-addressed root: the request digest is the same on every
        // fabric, so sim and TCP reconstruct the same membership trace.
        self.begin_root(u64::from_be_bytes(
            msg.request.canonical_digest().as_bytes()[..8]
                .try_into()
                .expect("8 bytes"),
        ));
        self.factories.insert(object.clone(), factory);
        self.pending_connects.insert(
            object.clone(),
            PendingConnect {
                request: msg.clone(),
                sponsor: sponsor.clone(),
            },
        );
        self.connect_status
            .insert(object.clone(), ConnectStatus::Pending);
        self.log_evidence(
            EvidenceKind::ConnectRequest,
            &object,
            &msg.request.canonical_digest().to_string(),
            self.me.clone(),
            msg.request.canonical_bytes(),
            Some(msg.sig.clone()),
            ctx.now(),
        );
        self.trace(ctx.now(), "membership", "connect_request", || {
            format!("object={object} sponsor={sponsor}")
        });
        self.send_wire(&sponsor, &WireMsg::ConnectRequest(msg), ctx);
        self.persist_index();
        self.end_episode();
        self.flush_evidence();
        Ok(())
    }

    pub(crate) fn on_welcome(&mut self, from: &PartyId, msg: WelcomeMsg, ctx: &mut NodeCtx) {
        let now = ctx.now();
        let oid = msg.welcome.object.clone();
        let run = msg.welcome.run;
        let Some(contacted_sponsor) = self.pending_connects.get(&oid).map(|p| p.sponsor.clone())
        else {
            return; // duplicate welcome after installation, or stray
        };
        // The admitting sponsor is the most recently joined member before
        // us (requests may have been forwarded, so it need not be the
        // member we originally contacted). The welcome must come from it
        // and carry its signature.
        let sponsor = match msg.welcome.members.len().checked_sub(2) {
            Some(i) => msg.welcome.members[i].clone(),
            None => {
                return;
            }
        };
        if from != &sponsor
            || self
                .verify_for(&sponsor, &msg.welcome.canonical_bytes(), &msg.sig)
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::BadSignature {
                    claimed: sponsor,
                    message: "welcome".into(),
                },
                now,
            );
            return;
        }
        // Structural checks: we are the newest member; the group id
        // identifies the member list; the state matches the agreed tuple;
        // and the member we actually contacted is in the admitted group —
        // otherwise any key-holding outsider could fabricate a "group"
        // consisting only of itself and us.
        let me = self.me.clone();
        let ok = msg.welcome.members.last() == Some(&me)
            && msg.welcome.group.identifies(&msg.welcome.members)
            && msg.welcome.agreed.identifies(&msg.state)
            && msg.welcome.members.contains(&contacted_sponsor);
        // Every *prior* member's signed response must be present (exactly
        // the member list minus the admitting sponsor and ourselves — a
        // vacuous or partial set would let a sponsor unilaterally admit),
        // must verify, accept, and assert the same agreed state tuple —
        // this is how the subject validates the membership and the state
        // it is handed (§4.5.3).
        let expected: std::collections::BTreeSet<&b2b_crypto::PartyId> = msg
            .welcome
            .members
            .iter()
            .filter(|m| **m != sponsor && **m != me)
            .collect();
        let mut seen_responders: std::collections::BTreeSet<&b2b_crypto::PartyId> =
            Default::default();
        let responses_ok = msg.decide.responses.iter().all(|r| {
            r.response.agreed == msg.welcome.agreed
                && r.response.decision.is_accept()
                && r.response.run == msg.welcome.run
                && expected.contains(&r.response.responder)
                && seen_responders.insert(&r.response.responder)
                && self
                    .verify_for(&r.response.responder, &r.response.canonical_bytes(), &r.sig)
                    .is_ok()
        }) && seen_responders.len() == expected.len();
        if !ok || !responses_ok {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::InconsistentDecide {
                    run,
                    detail: "welcome fails verification".into(),
                },
                now,
            );
            return;
        }

        let Some(factory) = self.factories.get(&oid) else {
            return;
        };
        let mut object = factory();
        object.apply_state(&msg.state);
        let replica = Replica {
            object_id: oid.clone(),
            object,
            members: msg.welcome.members.clone(),
            group: msg.welcome.group,
            agreed: msg.welcome.agreed,
            agreed_state: msg.state.clone(),
            seen_runs: std::iter::once((run, msg.welcome.agreed.seq)).collect(),
            seen_tuples: Default::default(),
            active: None,
            queued: Vec::new(),
            completed_replies: Default::default(),
            completed_order: Default::default(),
            dirty_replies: Vec::new(),
            reply_slots: 0,
            detached: false,
        };
        self.replicas.insert(oid.clone(), replica);
        self.pending_connects.remove(&oid);
        self.connect_status
            .insert(oid.clone(), ConnectStatus::Member);
        self.telemetry.inc(names::MEMBERSHIP_CHANGES);
        self.trace(now, "membership", "install", || {
            format!(
                "object={oid} run={} joined_as_member members={}",
                run.to_hex(),
                msg.welcome.members.len()
            )
        });
        self.log_evidence(
            EvidenceKind::ConnectWelcome,
            &oid,
            &run.to_hex(),
            from.clone(),
            msg.welcome.canonical_bytes(),
            Some(msg.sig.clone()),
            now,
        );
        self.persist(&oid);
        self.persist_index();
        self.outcomes.insert(
            run,
            Outcome::Installed {
                state: msg.welcome.agreed,
            },
        );
        self.emit(
            &oid,
            run,
            CoordEventKind::MembershipChanged {
                members: msg.welcome.members,
            },
            now,
        );
        let _ = ctx;
    }

    pub(crate) fn on_connect_reject(
        &mut self,
        from: &PartyId,
        msg: ConnectRejectMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.reject.object.clone();
        let Some(pending) = self.pending_connects.get(&oid) else {
            return;
        };
        let expected_digest = pending.request.request.canonical_digest();
        // Only the member we chose to contact may reject us. Requests may
        // be forwarded between sponsors, so a legitimate rejection from
        // the *actual* sponsor can be lost here — the subject then stays
        // pending and retries — but accepting self-named rejecters would
        // let any key-holding outsider cancel admissions it observed.
        if from != &pending.sponsor
            || from != &msg.reject.sponsor
            || msg.reject.request_digest != expected_digest
            || self
                .verify_for(&msg.reject.sponsor, &msg.reject.canonical_bytes(), &msg.sig)
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &expected_digest.to_string(),
                Misbehaviour::BadSignature {
                    claimed: msg.reject.sponsor.clone(),
                    message: "connect-reject".into(),
                },
                now,
            );
            return;
        }
        self.pending_connects.remove(&oid);
        self.connect_status
            .insert(oid.clone(), ConnectStatus::Rejected);
        self.log_evidence(
            EvidenceKind::ConnectReject,
            &oid,
            &expected_digest.to_string(),
            from.clone(),
            msg.reject.canonical_bytes(),
            Some(msg.sig),
            now,
        );
        self.persist_index();
    }

    // =================================================================
    // Sponsor side: connection
    // =================================================================

    pub(crate) fn on_connect_request(
        &mut self,
        from: &PartyId,
        msg: ConnectRequestMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.request.object.clone();
        // Verify before anything else. The sender need not be the subject:
        // members forward stale-addressed requests to the current sponsor,
        // and the subject's own signature is what authenticates the
        // request either way.
        if self
            .verify_for(
                &msg.request.subject,
                &msg.request.canonical_bytes(),
                &msg.sig,
            )
            .is_err()
        {
            self.log_misbehaviour(
                &oid,
                "",
                Misbehaviour::BadSignature {
                    claimed: msg.request.subject.clone(),
                    message: "connect-request".into(),
                },
                now,
            );
            return;
        }
        let Some(rep) = self.replicas.get_mut(&oid) else {
            return;
        };
        if rep.active.is_some() {
            // §4.5.1: block (defer) new coordination requests.
            rep.queued.push(QueuedRequest::Connect(msg));
            self.persist(&oid);
            return;
        }
        self.sponsor_connect(from, msg, ctx);
    }

    /// Starts (or immediately answers) a connection request. Returns
    /// `true` if a polling run was started.
    pub(crate) fn sponsor_connect(
        &mut self,
        _from: &PartyId,
        msg: ConnectRequestMsg,
        ctx: &mut NodeCtx,
    ) -> bool {
        let now = ctx.now();
        let oid = msg.request.object.clone();
        let subject = msg.request.subject.clone();
        let me = self.me.clone();
        let request_digest = msg.request.canonical_digest();

        let Some(rep) = self.replicas.get(&oid) else {
            return false;
        };
        if rep.detached {
            return false;
        }
        // Only the legitimate sponsor may coordinate admissions. A member
        // that is not (or no longer) the sponsor — e.g. because an earlier
        // queued admission rotated sponsorship — forwards the request to
        // the current sponsor rather than dropping it.
        if rep.sponsor() != &me {
            let sponsor = rep.sponsor().clone();
            self.send_wire(&sponsor, &WireMsg::ConnectRequest(msg), ctx);
            return false;
        }
        // Immediate rejection: already a member, or local policy says no.
        let local = if rep.is_member(&subject) {
            Decision::reject("already a member")
        } else {
            rep.object.validate_connect(&subject)
        };
        self.log_evidence(
            EvidenceKind::ConnectRequest,
            &oid,
            &request_digest.to_string(),
            subject.clone(),
            msg.request.canonical_bytes(),
            Some(msg.sig.clone()),
            now,
        );
        if !local.is_accept() {
            self.send_connect_reject(&oid, &subject, request_digest, ctx);
            return false;
        }

        let rep = self.replicas.get_mut(&oid).expect("checked above");
        let mut new_members = rep.members.clone();
        new_members.push(subject.clone());
        let new_group = GroupId {
            seq: rep.group.seq + 1,
            rand_hash: sha256(&self.rng.nonce()),
            members_hash: crate::ids::members_digest(&new_members),
        };
        let authenticator = self.rng.nonce();
        let proposal = ConnectProposal {
            object: oid.clone(),
            sponsor: me.clone(),
            request_digest,
            subject: subject.clone(),
            group: rep.group,
            new_group,
            agreed: rep.agreed,
            auth_commit: sha256(&authenticator),
        };
        let run = proposal.run_id();
        let sig = self.signer.sign(&proposal.canonical_bytes());
        let propose = ConnectProposeMsg {
            proposal,
            request: msg.clone(),
            sig,
        };
        let polled: Vec<PartyId> = rep.members.iter().filter(|m| **m != me).cloned().collect();
        rep.seen_runs.insert(run, rep.agreed.seq);

        if polled.is_empty() {
            // Singleton group: the sponsor's acceptance is the group's.
            let decide = MemberDecideMsg {
                object: oid.clone(),
                run,
                authenticator,
                responses: Vec::new(),
                connecting: true,
            };
            self.install_membership(&oid, run, new_members, new_group, &[], ctx);
            self.send_welcome(&oid, run, &subject, decide, ctx);
            return false;
        }

        let subject_label = subject.clone();
        rep.active = Some(ActiveRun::Sponsor(SponsorRun {
            run,
            change: MembershipChange::Connect {
                subject,
                request: msg,
                propose: propose.clone(),
            },
            authenticator,
            new_members,
            new_group,
            polled: polled.clone(),
            responses: Default::default(),
            decided: None,
        }));
        self.log_evidence(
            EvidenceKind::ConnectPropose,
            &oid,
            &run.to_hex(),
            me,
            propose.proposal.canonical_bytes(),
            Some(propose.sig.clone()),
            now,
        );
        self.trace(now, "membership", "propose", || {
            format!(
                "object={oid} run={} change=connect subject={subject_label} polled={}",
                run.to_hex(),
                polled.len()
            )
        });
        let wire = WireMsg::ConnectPropose(propose);
        self.send_wire_all(&polled, &wire, ctx);
        self.persist(&oid);
        true
    }

    fn send_connect_reject(
        &mut self,
        oid: &ObjectId,
        subject: &PartyId,
        request_digest: b2b_crypto::Digest32,
        ctx: &mut NodeCtx,
    ) {
        let reject = ConnectReject {
            object: oid.clone(),
            sponsor: self.me.clone(),
            request_digest,
        };
        let sig = self.signer.sign(&reject.canonical_bytes());
        self.log_evidence(
            EvidenceKind::ConnectReject,
            oid,
            &request_digest.to_string(),
            self.me.clone(),
            reject.canonical_bytes(),
            Some(sig.clone()),
            ctx.now(),
        );
        self.send_wire(
            &subject.clone(),
            &WireMsg::ConnectReject(ConnectRejectMsg { reject, sig }),
            ctx,
        );
    }

    fn send_welcome(
        &mut self,
        oid: &ObjectId,
        run: RunId,
        subject: &PartyId,
        decide: MemberDecideMsg,
        ctx: &mut NodeCtx,
    ) {
        let Some(rep) = self.replicas.get(oid) else {
            return;
        };
        let welcome = Welcome {
            object: oid.clone(),
            run,
            group: rep.group,
            members: rep.members.clone(),
            agreed: rep.agreed,
        };
        let state = rep.agreed_state.clone();
        let sig = self.signer.sign(&welcome.canonical_bytes());
        self.log_evidence(
            EvidenceKind::ConnectWelcome,
            oid,
            &run.to_hex(),
            self.me.clone(),
            welcome.canonical_bytes(),
            Some(sig.clone()),
            ctx.now(),
        );
        let msg = WireMsg::Welcome(WelcomeMsg {
            welcome,
            state,
            decide,
            sig,
        });
        self.send_wire(&subject.clone(), &msg, ctx);
    }

    /// Installs an agreed membership change and emits the event.
    fn install_membership(
        &mut self,
        oid: &ObjectId,
        run: RunId,
        new_members: Vec<PartyId>,
        new_group: GroupId,
        leavers: &[PartyId],
        ctx: &mut NodeCtx,
    ) {
        let me = self.me.clone();
        let now = ctx.now();
        if let Some(rep) = self.replicas.get_mut(oid) {
            rep.members = new_members.clone();
            rep.group = new_group;
            rep.active = None;
            if leavers.contains(&me) {
                rep.detached = true;
            }
        }
        self.persist(oid);
        self.telemetry.inc(names::MEMBERSHIP_CHANGES);
        self.trace(now, "membership", "install", || {
            format!(
                "object={oid} run={} members={} leavers={}",
                run.to_hex(),
                new_members.len(),
                leavers.len()
            )
        });
        self.outcomes.insert(
            run,
            Outcome::Installed {
                state: self
                    .replicas
                    .get(oid)
                    .map(|r| r.agreed)
                    .expect("replica exists"),
            },
        );
        self.emit(
            oid,
            run,
            CoordEventKind::MembershipChanged {
                members: new_members,
            },
            now,
        );
    }

    // =================================================================
    // Member side: polled about a membership change
    // =================================================================

    pub(crate) fn on_connect_propose(
        &mut self,
        from: &PartyId,
        msg: ConnectProposeMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.proposal.object.clone();
        let run = msg.proposal.run_id();

        if from != &msg.proposal.sponsor
            || self
                .verify_for(
                    &msg.proposal.sponsor,
                    &msg.proposal.canonical_bytes(),
                    &msg.sig,
                )
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::BadSignature {
                    claimed: msg.proposal.sponsor.clone(),
                    message: "connect-propose".into(),
                },
                now,
            );
            return;
        }
        if self.replay_completed_reply(&oid, &run, from, ctx) {
            return;
        }
        let Some(rep) = self.replicas.get(&oid) else {
            return;
        };
        if let Some(ActiveRun::Member(mr)) = &rep.active {
            if mr.run == run {
                let reply = WireMsg::MemberRespond(mr.my_response.clone());
                self.send_wire(from, &reply, ctx);
                return;
            }
        }

        // ---- consistency checks ----
        let mut decision = Decision::accept();
        let mut misbehaviours = Vec::new();
        let mut track = true;
        if rep.sponsor() != &msg.proposal.sponsor {
            misbehaviours.push(Misbehaviour::IllegitimateSponsor {
                claimed: msg.proposal.sponsor.clone(),
                expected: rep.sponsor().clone(),
            });
            decision = Decision::reject("illegitimate sponsor");
        }
        if rep.seen_runs.contains_key(&run) {
            misbehaviours.push(Misbehaviour::ReplayedProposal { run });
            decision = Decision::reject("replayed membership proposal");
            track = false;
        }
        if msg.proposal.group != rep.group {
            misbehaviours.push(Misbehaviour::GroupIdMismatch {
                theirs: msg.proposal.group,
                ours: rep.group,
            });
            if decision.is_accept() {
                decision = Decision::reject("inconsistent group identifier");
            }
        }
        if msg.proposal.agreed != rep.agreed {
            misbehaviours.push(Misbehaviour::PredecessorMismatch {
                theirs: msg.proposal.agreed,
                ours: rep.agreed,
            });
            if decision.is_accept() {
                decision = Decision::reject("inconsistent agreed state");
            }
        }
        // The proposed new group must be exactly our members + subject.
        let mut expected_members = rep.members.clone();
        expected_members.push(msg.proposal.subject.clone());
        if !msg.proposal.new_group.identifies(&expected_members)
            || msg.proposal.new_group.seq != rep.group.seq + 1
        {
            misbehaviours.push(Misbehaviour::InconsistentDecide {
                run,
                detail: "proposed group does not match members + subject".into(),
            });
            if decision.is_accept() {
                decision = Decision::reject("inconsistent new group identifier");
            }
        }
        // The subject's own signed request must be attached and verify.
        let req_ok = msg.request.request.subject == msg.proposal.subject
            && msg.request.request.canonical_digest() == msg.proposal.request_digest
            && self
                .verify_for(
                    &msg.request.request.subject,
                    &msg.request.request.canonical_bytes(),
                    &msg.request.sig,
                )
                .is_ok();
        if !req_ok {
            misbehaviours.push(Misbehaviour::BadSignature {
                claimed: msg.proposal.subject.clone(),
                message: "attached connect-request".into(),
            });
            if decision.is_accept() {
                decision = Decision::reject("subject request does not verify");
            }
        }
        if rep.active.is_some() {
            if decision.is_accept() {
                decision = Decision::reject("concurrent coordination run active");
            }
            track = false;
        }
        if decision.is_accept() {
            let app = rep.object.validate_connect(&msg.proposal.subject);
            if !app.is_accept() {
                decision = app;
            }
        }

        self.respond_membership(
            &oid,
            run,
            msg.proposal.sponsor.clone(),
            decision,
            track,
            MembershipChange::Connect {
                subject: msg.proposal.subject.clone(),
                request: msg.request.clone(),
                propose: msg.clone(),
            },
            misbehaviours,
            EvidenceKind::ConnectPropose,
            msg.proposal.canonical_bytes(),
            Some(msg.sig.clone()),
            ctx,
        );
    }

    /// Shared respond path for connect/disconnect proposals at a member.
    #[allow(clippy::too_many_arguments)]
    fn respond_membership(
        &mut self,
        oid: &ObjectId,
        run: RunId,
        sponsor: PartyId,
        decision: Decision,
        track: bool,
        change: MembershipChange,
        misbehaviours: Vec<Misbehaviour>,
        propose_kind: EvidenceKind,
        propose_payload: Vec<u8>,
        propose_sig: Option<b2b_crypto::Signature>,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let me = self.me.clone();
        let Some(rep) = self.replicas.get_mut(oid) else {
            return;
        };
        let response = MemberResponse {
            object: oid.clone(),
            responder: me.clone(),
            run,
            group: rep.group,
            agreed: rep.agreed,
            decision,
        };
        let sig = self.signer.sign(&response.canonical_bytes());
        let m = MemberRespondMsg { response, sig };
        rep.seen_runs.insert(run, rep.agreed.seq);
        if track {
            rep.active = Some(ActiveRun::Member(MemberRun {
                run,
                change,
                my_response: m.clone(),
            }));
        }
        self.log_evidence(
            propose_kind,
            oid,
            &run.to_hex(),
            sponsor.clone(),
            propose_payload,
            propose_sig,
            now,
        );
        let respond_kind = match propose_kind {
            EvidenceKind::ConnectPropose => EvidenceKind::ConnectRespond,
            _ => EvidenceKind::DisconnectRespond,
        };
        self.log_evidence(
            respond_kind,
            oid,
            &run.to_hex(),
            me,
            m.response.canonical_bytes(),
            Some(m.sig.clone()),
            now,
        );
        for mis in misbehaviours {
            self.log_misbehaviour(oid, &run.to_hex(), mis, now);
        }
        self.trace(now, "membership", "respond", || {
            format!(
                "object={oid} run={} decision={}",
                run.to_hex(),
                if m.response.decision.is_accept() {
                    "accept"
                } else {
                    "reject"
                }
            )
        });
        self.send_wire(&sponsor, &WireMsg::MemberRespond(m), ctx);
        self.persist(oid);
    }

    pub(crate) fn on_member_respond(
        &mut self,
        from: &PartyId,
        msg: MemberRespondMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.response.object.clone();
        let run = msg.response.run;
        if from != &msg.response.responder
            || self
                .verify_for(
                    &msg.response.responder,
                    &msg.response.canonical_bytes(),
                    &msg.sig,
                )
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::BadSignature {
                    claimed: msg.response.responder.clone(),
                    message: "member-respond".into(),
                },
                now,
            );
            return;
        }
        if self.replay_completed_reply(&oid, &run, from, ctx) {
            return;
        }
        let Some(rep) = self.replicas.get_mut(&oid) else {
            return;
        };
        let mut finalize = false;
        match &mut rep.active {
            Some(ActiveRun::Sponsor(sr)) if sr.run == run => {
                if !sr.polled.contains(from) {
                    let detail = format!("membership response from unpolled {from}");
                    self.log_misbehaviour(
                        &oid,
                        &run.to_hex(),
                        Misbehaviour::UnexpectedMessage { detail },
                        now,
                    );
                } else {
                    match sr.responses.get(from) {
                        Some(existing) if existing == &msg => {}
                        Some(_) => {
                            self.log_misbehaviour(
                                &oid,
                                &run.to_hex(),
                                Misbehaviour::InconsistentDecide {
                                    run,
                                    detail: format!("conflicting membership responses from {from}"),
                                },
                                now,
                            );
                        }
                        None => {
                            sr.responses.insert(from.clone(), msg.clone());
                            let kind = match sr.change {
                                MembershipChange::Connect { .. } => EvidenceKind::ConnectRespond,
                                MembershipChange::Disconnect { .. } => {
                                    EvidenceKind::DisconnectRespond
                                }
                            };
                            if sr.responses.len() == sr.polled.len() {
                                finalize = true;
                            }
                            self.log_evidence(
                                kind,
                                &oid,
                                &run.to_hex(),
                                from.clone(),
                                msg.response.canonical_bytes(),
                                Some(msg.sig.clone()),
                                now,
                            );
                        }
                    }
                }
            }
            _ => {
                self.log_misbehaviour(
                    &oid,
                    &run.to_hex(),
                    Misbehaviour::UnexpectedMessage {
                        detail: format!("membership response for unknown run from {from}"),
                    },
                    now,
                );
            }
        }
        if finalize {
            self.finalize_member_run(&oid, run, ctx);
        } else {
            self.persist(&oid);
        }
    }

    fn finalize_member_run(&mut self, oid: &ObjectId, run: RunId, ctx: &mut NodeCtx) {
        let now = ctx.now();
        let me = self.me.clone();
        let replies_cap = self.config.completed_replies_cap;
        let Some(rep) = self.replicas.get_mut(oid) else {
            return;
        };
        let Some(ActiveRun::Sponsor(sr)) = rep.active.take() else {
            return;
        };
        let responses: Vec<MemberRespondMsg> = sr.responses.values().cloned().collect();
        // Membership changes always require unanimity among polled members
        // (voluntary disconnection cannot be vetoed, which the member side
        // enforces by always accepting).
        let vetoers: Vec<(PartyId, String)> = responses
            .iter()
            .filter(|r| !r.response.decision.is_accept())
            .map(|r| {
                (
                    r.response.responder.clone(),
                    r.response
                        .decision
                        .reason
                        .clone()
                        .unwrap_or_else(|| "rejected".into()),
                )
            })
            .collect();
        let accepted = vetoers.is_empty();
        let connecting = matches!(sr.change, MembershipChange::Connect { .. });
        let decide = MemberDecideMsg {
            object: oid.clone(),
            run,
            authenticator: sr.authenticator,
            responses,
            connecting,
        };
        rep.remember_reply(run, WireMsg::MemberDecide(decide.clone()), replies_cap);

        let decide_kind = if connecting {
            EvidenceKind::ConnectDecide
        } else {
            EvidenceKind::DisconnectDecide
        };
        let wire = WireMsg::MemberDecide(decide.clone());
        self.send_wire_all(&sr.polled, &wire, ctx);
        self.trace(now, "membership", "decide", || {
            format!(
                "object={oid} run={} connecting={connecting} accepted={accepted}",
                run.to_hex()
            )
        });
        self.log_evidence(
            decide_kind,
            oid,
            &run.to_hex(),
            me.clone(),
            serde_json::to_vec(&decide).expect("decide serialises"),
            None,
            now,
        );

        match (&sr.change, accepted) {
            (MembershipChange::Connect { subject, .. }, true) => {
                let subject = subject.clone();
                self.install_membership(oid, run, sr.new_members, sr.new_group, &[], ctx);
                self.send_welcome(oid, run, &subject, decide, ctx);
            }
            (
                MembershipChange::Connect {
                    subject, request, ..
                },
                false,
            ) => {
                let subject = subject.clone();
                let digest = request.request.canonical_digest();
                self.outcomes.insert(run, Outcome::Invalidated { vetoers });
                self.send_connect_reject(oid, &subject, digest, ctx);
                self.persist(oid);
            }
            (
                MembershipChange::Disconnect {
                    subjects, eviction, ..
                },
                true,
            ) => {
                let subjects = subjects.clone();
                let eviction = *eviction;
                self.install_membership(oid, run, sr.new_members, sr.new_group, &subjects, ctx);
                if !eviction {
                    self.send_disconnect_ack(oid, run, &subjects[0], decide, ctx);
                }
            }
            (
                MembershipChange::Disconnect {
                    subjects,
                    eviction,
                    request,
                    ..
                },
                false,
            ) => {
                let subjects = subjects.clone();
                let eviction = *eviction;
                let digest = request.request.canonical_digest();
                self.outcomes.insert(run, Outcome::Invalidated { vetoers });
                // A voluntary leave cannot be vetoed, but the run can still
                // fail a consistency check at a polled member. Tell the
                // leaver, so its replica returns from `Leaving` to ordinary
                // membership instead of hanging until the application
                // intervenes. Evictees are not consulted and get nothing.
                if !eviction {
                    self.send_disconnect_reject(oid, &subjects[0], digest, ctx);
                }
                self.persist(oid);
            }
        }
        self.pump_queue(oid, ctx);
    }

    pub(crate) fn on_member_decide(
        &mut self,
        from: &PartyId,
        msg: MemberDecideMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.object.clone();
        let run = msg.run;
        if self.outcomes.contains_key(&run) {
            return;
        }
        let Some(rep) = self.replicas.get(&oid) else {
            return;
        };
        let Some(ActiveRun::Member(mr)) = rep.active.clone() else {
            return;
        };
        if mr.run != run {
            return;
        }
        let (sponsor, auth_commit, expected_polled, new_members, new_group, leavers) =
            match &mr.change {
                MembershipChange::Connect {
                    subject, propose, ..
                } => {
                    let mut nm = rep.members.clone();
                    nm.push(subject.clone());
                    (
                        propose.proposal.sponsor.clone(),
                        propose.proposal.auth_commit,
                        rep.recipients(&propose.proposal.sponsor),
                        nm,
                        propose.proposal.new_group,
                        Vec::new(),
                    )
                }
                MembershipChange::Disconnect {
                    subjects, propose, ..
                } => {
                    let nm: Vec<PartyId> = rep
                        .members
                        .iter()
                        .filter(|m| !subjects.contains(m))
                        .cloned()
                        .collect();
                    let polled: Vec<PartyId> = rep
                        .members
                        .iter()
                        .filter(|m| **m != propose.proposal.sponsor && !subjects.contains(m))
                        .cloned()
                        .collect();
                    (
                        propose.proposal.sponsor.clone(),
                        propose.proposal.auth_commit,
                        polled,
                        nm,
                        propose.proposal.new_group,
                        subjects.clone(),
                    )
                }
            };
        if from != &sponsor {
            return;
        }
        if sha256(&msg.authenticator) != auth_commit {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::AuthenticatorMismatch { run },
                now,
            );
            return;
        }
        // Verify the aggregated responses.
        let expected: std::collections::BTreeSet<&PartyId> = expected_polled.iter().collect();
        let mut seen: std::collections::BTreeSet<&PartyId> = Default::default();
        let mut fault = None;
        for r in &msg.responses {
            if r.response.run != run {
                fault = Some(Misbehaviour::InconsistentDecide {
                    run,
                    detail: "response for another run".into(),
                });
                break;
            }
            if self
                .verify_for(&r.response.responder, &r.response.canonical_bytes(), &r.sig)
                .is_err()
            {
                fault = Some(Misbehaviour::BadSignature {
                    claimed: r.response.responder.clone(),
                    message: "aggregated membership response".into(),
                });
                break;
            }
            if !expected.contains(&r.response.responder) || !seen.insert(&r.response.responder) {
                fault = Some(Misbehaviour::InconsistentDecide {
                    run,
                    detail: format!("unexpected or duplicate responder {}", r.response.responder),
                });
                break;
            }
        }
        if fault.is_none() && seen.len() != expected.len() {
            fault = Some(Misbehaviour::InconsistentDecide {
                run,
                detail: "membership response set incomplete".into(),
            });
        }
        if fault.is_none()
            && !msg
                .responses
                .iter()
                .any(|r| r.response.responder == self.me && r == &mr.my_response)
        {
            fault = Some(Misbehaviour::ResponseMisrepresented { run });
        }
        if let Some(f) = fault {
            self.log_misbehaviour(&oid, &run.to_hex(), f, now);
            return;
        }

        let vetoers: Vec<(PartyId, String)> = msg
            .responses
            .iter()
            .filter(|r| !r.response.decision.is_accept())
            .map(|r| {
                (
                    r.response.responder.clone(),
                    r.response
                        .decision
                        .reason
                        .clone()
                        .unwrap_or_else(|| "rejected".into()),
                )
            })
            .collect();
        let decide_kind = if msg.connecting {
            EvidenceKind::ConnectDecide
        } else {
            EvidenceKind::DisconnectDecide
        };
        self.log_evidence(
            decide_kind,
            &oid,
            &run.to_hex(),
            sponsor,
            serde_json::to_vec(&msg).expect("decide serialises"),
            None,
            now,
        );
        if vetoers.is_empty() {
            self.install_membership(&oid, run, new_members, new_group, &leavers, ctx);
        } else {
            if let Some(rep) = self.replicas.get_mut(&oid) {
                rep.active = None;
            }
            self.outcomes.insert(run, Outcome::Invalidated { vetoers });
            self.persist(&oid);
        }
        self.pump_queue(&oid, ctx);
    }

    // =================================================================
    // Disconnection (§4.5.4)
    // =================================================================

    /// Voluntarily leaves `object`'s sharing group. Completion is
    /// observable via [`Coordinator::is_member`] turning false once the
    /// sponsor's acknowledgement arrives.
    ///
    /// # Errors
    ///
    /// [`CoordError::UnknownObject`], [`CoordError::NotMember`] or
    /// [`CoordError::Busy`].
    pub fn request_disconnect(
        &mut self,
        object: &ObjectId,
        ctx: &mut NodeCtx,
    ) -> Result<(), CoordError> {
        let me = self.me.clone();
        let rep = self
            .replicas
            .get_mut(object)
            .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
        if rep.detached || !rep.members.contains(&me) {
            return Err(CoordError::NotMember {
                party: me,
                object: object.clone(),
            });
        }
        if rep.active.is_some() {
            return Err(CoordError::Busy {
                object: object.clone(),
            });
        }
        let Some(sponsor) = rep
            .sponsor_for_disconnect(std::slice::from_ref(&me))
            .cloned()
        else {
            // Sole member: leaving is local.
            rep.detached = true;
            self.persist(object);
            return Ok(());
        };
        let request = DisconnectRequest {
            object: object.clone(),
            proposer: me.clone(),
            subjects: vec![me.clone()],
            eviction: false,
            nonce_hash: sha256(&self.rng.nonce()),
        };
        let sig = self.signer.sign(&request.canonical_bytes());
        let msg = DisconnectRequestMsg { request, sig };
        // If the run is invalidated at the sponsor by a consistency
        // failure (voluntary leaves cannot be vetoed, but e.g. a group-id
        // mismatch or a concurrent run can fail it), the sponsor sends a
        // signed rejection and `on_disconnect_reject` returns this replica
        // to ordinary membership; the application may then retry. A leaver
        // may also simply cease cooperation (§4.5.4).
        rep.active = Some(ActiveRun::Leaving(LeavingRun {
            request: msg.clone(),
            sponsor: sponsor.clone(),
        }));
        self.begin_root(u64::from_be_bytes(
            msg.request.canonical_digest().as_bytes()[..8]
                .try_into()
                .expect("8 bytes"),
        ));
        self.log_evidence(
            EvidenceKind::DisconnectRequest,
            object,
            &msg.request.canonical_digest().to_string(),
            me,
            msg.request.canonical_bytes(),
            Some(msg.sig.clone()),
            ctx.now(),
        );
        self.trace(ctx.now(), "membership", "disconnect_request", || {
            format!("object={object} sponsor={sponsor}")
        });
        self.send_wire(&sponsor, &WireMsg::DisconnectRequest(msg), ctx);
        self.persist(object);
        self.end_episode();
        self.flush_evidence();
        Ok(())
    }

    /// Proposes evicting `subjects` from `object`'s group (§4.5.4,
    /// including subset eviction). The evictees are not consulted; the
    /// remaining members decide.
    ///
    /// # Errors
    ///
    /// [`CoordError::UnknownObject`], [`CoordError::NotMember`] (for this
    /// party or any subject), or [`CoordError::Busy`].
    pub fn request_evict(
        &mut self,
        object: &ObjectId,
        subjects: Vec<PartyId>,
        ctx: &mut NodeCtx,
    ) -> Result<(), CoordError> {
        let me = self.me.clone();
        {
            let rep = self
                .replicas
                .get(object)
                .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
            if rep.detached || !rep.members.contains(&me) {
                return Err(CoordError::NotMember {
                    party: me.clone(),
                    object: object.clone(),
                });
            }
            if subjects.is_empty() || subjects.contains(&me) {
                return Err(CoordError::NotMember {
                    party: me.clone(),
                    object: object.clone(),
                });
            }
            for s in &subjects {
                if !rep.members.contains(s) {
                    return Err(CoordError::NotMember {
                        party: s.clone(),
                        object: object.clone(),
                    });
                }
            }
            if rep.active.is_some() {
                return Err(CoordError::Busy {
                    object: object.clone(),
                });
            }
        }
        let request = DisconnectRequest {
            object: object.clone(),
            proposer: me.clone(),
            subjects: subjects.clone(),
            eviction: true,
            nonce_hash: sha256(&self.rng.nonce()),
        };
        let sig = self.signer.sign(&request.canonical_bytes());
        let msg = DisconnectRequestMsg { request, sig };
        self.begin_root(u64::from_be_bytes(
            msg.request.canonical_digest().as_bytes()[..8]
                .try_into()
                .expect("8 bytes"),
        ));
        self.log_evidence(
            EvidenceKind::DisconnectRequest,
            object,
            &msg.request.canonical_digest().to_string(),
            me.clone(),
            msg.request.canonical_bytes(),
            Some(msg.sig.clone()),
            ctx.now(),
        );
        let rep = self.replicas.get(object).expect("checked above");
        let sponsor = rep
            .sponsor_for_disconnect(&subjects)
            .expect("proposer remains")
            .clone();
        self.trace(ctx.now(), "membership", "evict_request", || {
            format!(
                "object={object} sponsor={sponsor} subjects={}",
                subjects.len()
            )
        });
        if sponsor == me {
            // §4.5.4: when the sponsor proposes the eviction, the request
            // step is omitted.
            self.sponsor_disconnect(&me.clone(), msg, ctx);
        } else {
            self.send_wire(&sponsor, &WireMsg::DisconnectRequest(msg), ctx);
        }
        self.end_episode();
        self.flush_evidence();
        Ok(())
    }

    pub(crate) fn on_disconnect_request(
        &mut self,
        from: &PartyId,
        msg: DisconnectRequestMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.request.object.clone();
        // As with connection requests, the proposer's signature (not the
        // sender identity) authenticates a possibly-forwarded request.
        if self
            .verify_for(
                &msg.request.proposer,
                &msg.request.canonical_bytes(),
                &msg.sig,
            )
            .is_err()
        {
            self.log_misbehaviour(
                &oid,
                "",
                Misbehaviour::BadSignature {
                    claimed: msg.request.proposer.clone(),
                    message: "disconnect-request".into(),
                },
                now,
            );
            return;
        }
        // Voluntary requests must come from their subject.
        if !msg.request.eviction
            && (msg.request.subjects.len() != 1 || msg.request.subjects[0] != msg.request.proposer)
        {
            self.log_misbehaviour(
                &oid,
                "",
                Misbehaviour::UnexpectedMessage {
                    detail: "voluntary disconnect not initiated by subject".into(),
                },
                now,
            );
            return;
        }
        let Some(rep) = self.replicas.get_mut(&oid) else {
            return;
        };
        if rep.active.is_some() {
            rep.queued.push(QueuedRequest::Disconnect(msg));
            self.persist(&oid);
            return;
        }
        self.sponsor_disconnect(from, msg, ctx);
    }

    /// Starts (or immediately resolves) a disconnection run at the
    /// sponsor. Returns `true` if a polling run was started.
    pub(crate) fn sponsor_disconnect(
        &mut self,
        _from: &PartyId,
        msg: DisconnectRequestMsg,
        ctx: &mut NodeCtx,
    ) -> bool {
        let now = ctx.now();
        let oid = msg.request.object.clone();
        let me = self.me.clone();
        let subjects = msg.request.subjects.clone();
        let eviction = msg.request.eviction;
        let request_digest = msg.request.canonical_digest();

        let Some(rep) = self.replicas.get(&oid) else {
            return false;
        };
        if rep.detached {
            return false;
        }
        // Legitimacy: the most recently joined member not itself leaving.
        // Stale addressing (sponsorship rotated while the request was
        // queued or in flight) forwards to the current sponsor.
        if rep.sponsor_for_disconnect(&subjects) != Some(&me) {
            if let Some(sponsor) = rep.sponsor_for_disconnect(&subjects).cloned() {
                self.send_wire(&sponsor, &WireMsg::DisconnectRequest(msg), ctx);
            }
            return false;
        }
        if subjects.iter().any(|s| !rep.members.contains(s)) {
            self.log_misbehaviour(
                &oid,
                &request_digest.to_string(),
                Misbehaviour::UnexpectedMessage {
                    detail: "disconnect of non-member".into(),
                },
                now,
            );
            return false;
        }
        // Sponsor's own policy check on evictions (a sponsor veto means the
        // eviction never goes to a vote).
        if eviction {
            let mut local = Decision::accept();
            for s in &subjects {
                let d = rep.object.validate_disconnect(s, true);
                if !d.is_accept() {
                    local = d;
                    break;
                }
            }
            if !local.is_accept() {
                self.log_evidence(
                    EvidenceKind::DisconnectRequest,
                    &oid,
                    &request_digest.to_string(),
                    msg.request.proposer.clone(),
                    msg.request.canonical_bytes(),
                    Some(msg.sig.clone()),
                    now,
                );
                return false;
            }
        }

        let rep = self.replicas.get_mut(&oid).expect("checked above");
        let new_members: Vec<PartyId> = rep
            .members
            .iter()
            .filter(|m| !subjects.contains(m))
            .cloned()
            .collect();
        let new_group = GroupId {
            seq: rep.group.seq + 1,
            rand_hash: sha256(&self.rng.nonce()),
            members_hash: crate::ids::members_digest(&new_members),
        };
        let authenticator = self.rng.nonce();
        let proposal = DisconnectProposal {
            object: oid.clone(),
            sponsor: me.clone(),
            request_digest,
            subjects: subjects.clone(),
            eviction,
            group: rep.group,
            new_group,
            agreed: rep.agreed,
            auth_commit: sha256(&authenticator),
        };
        let run = proposal.run_id();
        let sig = self.signer.sign(&proposal.canonical_bytes());
        let propose = DisconnectProposeMsg {
            proposal,
            request: msg.clone(),
            sig,
        };
        let polled: Vec<PartyId> = rep
            .members
            .iter()
            .filter(|m| **m != me && !subjects.contains(m))
            .cloned()
            .collect();
        rep.seen_runs.insert(run, rep.agreed.seq);

        if polled.is_empty() {
            let decide = MemberDecideMsg {
                object: oid.clone(),
                run,
                authenticator,
                responses: Vec::new(),
                connecting: false,
            };
            self.install_membership(&oid, run, new_members, new_group, &subjects, ctx);
            if !eviction {
                self.send_disconnect_ack(&oid, run, &subjects[0], decide, ctx);
            }
            return false;
        }

        rep.active = Some(ActiveRun::Sponsor(SponsorRun {
            run,
            change: MembershipChange::Disconnect {
                subjects,
                eviction,
                request: msg,
                propose: propose.clone(),
            },
            authenticator,
            new_members,
            new_group,
            polled: polled.clone(),
            responses: Default::default(),
            decided: None,
        }));
        self.log_evidence(
            EvidenceKind::DisconnectPropose,
            &oid,
            &run.to_hex(),
            me,
            propose.proposal.canonical_bytes(),
            Some(propose.sig.clone()),
            now,
        );
        self.trace(now, "membership", "propose", || {
            format!(
                "object={oid} run={} change=disconnect eviction={eviction} polled={}",
                run.to_hex(),
                polled.len()
            )
        });
        let wire = WireMsg::DisconnectPropose(propose);
        self.send_wire_all(&polled, &wire, ctx);
        self.persist(&oid);
        true
    }

    pub(crate) fn on_disconnect_propose(
        &mut self,
        from: &PartyId,
        msg: DisconnectProposeMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.proposal.object.clone();
        let run = msg.proposal.run_id();

        if from != &msg.proposal.sponsor
            || self
                .verify_for(
                    &msg.proposal.sponsor,
                    &msg.proposal.canonical_bytes(),
                    &msg.sig,
                )
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::BadSignature {
                    claimed: msg.proposal.sponsor.clone(),
                    message: "disconnect-propose".into(),
                },
                now,
            );
            return;
        }
        if self.replay_completed_reply(&oid, &run, from, ctx) {
            return;
        }
        let Some(rep) = self.replicas.get(&oid) else {
            return;
        };
        if let Some(ActiveRun::Member(mr)) = &rep.active {
            if mr.run == run {
                let reply = WireMsg::MemberRespond(mr.my_response.clone());
                self.send_wire(from, &reply, ctx);
                return;
            }
        }

        let mut decision = Decision::accept();
        let mut misbehaviours = Vec::new();
        let mut track = true;
        let subjects = msg.proposal.subjects.clone();
        let eviction = msg.proposal.eviction;

        if rep.sponsor_for_disconnect(&subjects) != Some(&msg.proposal.sponsor) {
            misbehaviours.push(Misbehaviour::IllegitimateSponsor {
                claimed: msg.proposal.sponsor.clone(),
                expected: rep
                    .sponsor_for_disconnect(&subjects)
                    .cloned()
                    .unwrap_or_else(|| PartyId::new("?")),
            });
            decision = Decision::reject("illegitimate sponsor");
        }
        if rep.seen_runs.contains_key(&run) {
            misbehaviours.push(Misbehaviour::ReplayedProposal { run });
            decision = Decision::reject("replayed membership proposal");
            track = false;
        }
        if msg.proposal.group != rep.group {
            misbehaviours.push(Misbehaviour::GroupIdMismatch {
                theirs: msg.proposal.group,
                ours: rep.group,
            });
            if decision.is_accept() {
                decision = Decision::reject("inconsistent group identifier");
            }
        }
        if msg.proposal.agreed != rep.agreed {
            misbehaviours.push(Misbehaviour::PredecessorMismatch {
                theirs: msg.proposal.agreed,
                ours: rep.agreed,
            });
            if decision.is_accept() {
                decision = Decision::reject("inconsistent agreed state");
            }
        }
        let expected_members: Vec<PartyId> = rep
            .members
            .iter()
            .filter(|m| !subjects.contains(m))
            .cloned()
            .collect();
        if !msg.proposal.new_group.identifies(&expected_members)
            || msg.proposal.new_group.seq != rep.group.seq + 1
        {
            misbehaviours.push(Misbehaviour::InconsistentDecide {
                run,
                detail: "proposed group does not match members - subjects".into(),
            });
            if decision.is_accept() {
                decision = Decision::reject("inconsistent new group identifier");
            }
        }
        // Attached request: for voluntary disconnects, the subject's own
        // signature proves the subject initiated it (§4.5.4).
        let req = &msg.request.request;
        let req_ok = req.canonical_digest() == msg.proposal.request_digest
            && req.subjects == subjects
            && req.eviction == eviction
            && (eviction || (req.subjects.len() == 1 && req.proposer == req.subjects[0]))
            && self
                .verify_for(&req.proposer, &req.canonical_bytes(), &msg.request.sig)
                .is_ok();
        if !req_ok {
            misbehaviours.push(Misbehaviour::BadSignature {
                claimed: req.proposer.clone(),
                message: "attached disconnect-request".into(),
            });
            if decision.is_accept() {
                decision = Decision::reject("attached request does not verify");
            }
        }
        if rep.active.is_some() {
            if decision.is_accept() {
                decision = Decision::reject("concurrent coordination run active");
            }
            track = false;
        }
        // Application policy: only evictions are vetoable; "voluntary
        // disconnection cannot be vetoed" (§4.5.4) so the upcall result is
        // advisory there.
        if decision.is_accept() && eviction {
            for s in &subjects {
                let d = rep.object.validate_disconnect(s, true);
                if !d.is_accept() {
                    decision = d;
                    break;
                }
            }
        }

        self.respond_membership(
            &oid,
            run,
            msg.proposal.sponsor.clone(),
            decision,
            track,
            MembershipChange::Disconnect {
                subjects,
                eviction,
                request: msg.request.clone(),
                propose: msg.clone(),
            },
            misbehaviours,
            EvidenceKind::DisconnectPropose,
            msg.proposal.canonical_bytes(),
            Some(msg.sig.clone()),
            ctx,
        );
    }

    fn send_disconnect_ack(
        &mut self,
        oid: &ObjectId,
        run: RunId,
        subject: &PartyId,
        decide: MemberDecideMsg,
        ctx: &mut NodeCtx,
    ) {
        let Some(rep) = self.replicas.get(oid) else {
            return;
        };
        let ack = DisconnectAck {
            object: oid.clone(),
            run,
            sponsor: self.me.clone(),
            subject: subject.clone(),
            group: rep.group,
            agreed: rep.agreed,
        };
        let sig = self.signer.sign(&ack.canonical_bytes());
        self.log_evidence(
            EvidenceKind::DisconnectAck,
            oid,
            &run.to_hex(),
            self.me.clone(),
            ack.canonical_bytes(),
            Some(sig.clone()),
            ctx.now(),
        );
        let msg = WireMsg::DisconnectAck(DisconnectAckMsg { ack, decide, sig });
        self.send_wire(&subject.clone(), &msg, ctx);
    }

    pub(crate) fn on_disconnect_ack(
        &mut self,
        from: &PartyId,
        msg: DisconnectAckMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.ack.object.clone();
        let run = msg.ack.run;
        let Some(rep) = self.replicas.get(&oid) else {
            return;
        };
        let Some(ActiveRun::Leaving(lr)) = rep.active.clone() else {
            return;
        };
        if from != &lr.sponsor
            || msg.ack.subject != self.me
            || self
                .verify_for(&lr.sponsor, &msg.ack.canonical_bytes(), &msg.sig)
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::BadSignature {
                    claimed: lr.sponsor,
                    message: "disconnect-ack".into(),
                },
                now,
            );
            return;
        }
        let members_after: Vec<PartyId>;
        if let Some(rep) = self.replicas.get_mut(&oid) {
            rep.active = None;
            rep.detached = true;
            let me = self.me.clone();
            rep.members.retain(|m| m != &me);
            rep.group = msg.ack.group;
            members_after = rep.members.clone();
        } else {
            members_after = Vec::new();
        }
        self.log_evidence(
            EvidenceKind::DisconnectAck,
            &oid,
            &run.to_hex(),
            from.clone(),
            msg.ack.canonical_bytes(),
            Some(msg.sig.clone()),
            now,
        );
        self.persist(&oid);
        self.telemetry.inc(names::MEMBERSHIP_CHANGES);
        self.trace(now, "membership", "install", || {
            format!("object={oid} run={} detached", run.to_hex())
        });
        self.outcomes.insert(
            run,
            Outcome::Installed {
                state: msg.ack.agreed,
            },
        );
        self.emit(
            &oid,
            run,
            CoordEventKind::MembershipChanged {
                members: members_after,
            },
            now,
        );
    }

    fn send_disconnect_reject(
        &mut self,
        oid: &ObjectId,
        subject: &PartyId,
        request_digest: b2b_crypto::Digest32,
        ctx: &mut NodeCtx,
    ) {
        let reject = DisconnectReject {
            object: oid.clone(),
            sponsor: self.me.clone(),
            request_digest,
        };
        let sig = self.signer.sign(&reject.canonical_bytes());
        self.log_evidence(
            EvidenceKind::DisconnectReject,
            oid,
            &request_digest.to_string(),
            self.me.clone(),
            reject.canonical_bytes(),
            Some(sig.clone()),
            ctx.now(),
        );
        self.trace(ctx.now(), "membership", "disconnect_reject", || {
            format!("object={oid} subject={subject}")
        });
        self.send_wire(
            &subject.clone(),
            &WireMsg::DisconnectReject(DisconnectRejectMsg { reject, sig }),
            ctx,
        );
    }

    pub(crate) fn on_disconnect_reject(
        &mut self,
        from: &PartyId,
        msg: DisconnectRejectMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.reject.object.clone();
        let Some(rep) = self.replicas.get(&oid) else {
            return;
        };
        let Some(ActiveRun::Leaving(lr)) = rep.active.clone() else {
            return; // duplicate after un-sticking, or stray
        };
        let expected_digest = lr.request.request.canonical_digest();
        // Only the sponsor we asked may reject our leave, and only for the
        // exact request we signed — anything else would let an outsider
        // (or a stale rejection) cancel a departure it observed.
        if from != &lr.sponsor
            || from != &msg.reject.sponsor
            || msg.reject.request_digest != expected_digest
            || self
                .verify_for(&msg.reject.sponsor, &msg.reject.canonical_bytes(), &msg.sig)
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &expected_digest.to_string(),
                Misbehaviour::BadSignature {
                    claimed: msg.reject.sponsor.clone(),
                    message: "disconnect-reject".into(),
                },
                now,
            );
            return;
        }
        if let Some(rep) = self.replicas.get_mut(&oid) {
            // Back to ordinary membership: the group never agreed to the
            // departure, so we are still a member and may retry.
            rep.active = None;
        }
        self.log_evidence(
            EvidenceKind::DisconnectReject,
            &oid,
            &expected_digest.to_string(),
            from.clone(),
            msg.reject.canonical_bytes(),
            Some(msg.sig),
            now,
        );
        self.trace(now, "membership", "disconnect_rejected", || {
            format!("object={oid} sponsor={from} back-to-member")
        });
        self.persist(&oid);
    }

    /// Re-sends the outstanding proposal of a recovered sponsor run.
    pub(crate) fn resume_sponsor_run(
        &mut self,
        object: &ObjectId,
        run: SponsorRun,
        ctx: &mut NodeCtx,
    ) {
        let wire = match &run.change {
            MembershipChange::Connect { propose, .. } => WireMsg::ConnectPropose(propose.clone()),
            MembershipChange::Disconnect { propose, .. } => {
                WireMsg::DisconnectPropose(propose.clone())
            }
        };
        let pending: Vec<PartyId> = run
            .polled
            .iter()
            .filter(|p| !run.responses.contains_key(*p))
            .cloned()
            .collect();
        self.send_wire_all(&pending, &wire, ctx);
        let _ = object;
    }
}
