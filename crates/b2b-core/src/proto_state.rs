//! The non-repudiable state coordination protocol (§4.3).
//!
//! Three steps — `m1` propose, `m2` respond, `m3` decide — giving
//! "non-repudiable two-phase commit" with richer semantics: the proposer is
//! committed at initiation, a transition is rejected only by veto, and the
//! final message is the group's non-repudiable decision, authenticated by
//! the reveal of `r_P` whose hash was committed in the proposal.

use crate::decision::{CoordEventKind, Decision, Outcome, Verdict};
use crate::detect::Misbehaviour;
use crate::error::CoordError;
use crate::ids::{ObjectId, RunId, StateId};
use crate::messages::{
    DecideMsg, Proposal, ProposalKind, ProposeMsg, RespondMsg, Response, WireMsg,
};
use crate::replica::{ActiveRun, ProposerRun, RecipientRun, Replica};
use crate::Coordinator;
use b2b_crypto::{sha256, CachedCanonical, PartyId};
use b2b_evidence::EvidenceKind;
use b2b_net::NodeCtx;
use b2b_telemetry::names;

impl Coordinator {
    // -----------------------------------------------------------------
    // Client operations (proposer side)
    // -----------------------------------------------------------------

    /// Proposes overwriting `object`'s state with `new_state` (§4.3).
    ///
    /// Returns the run label; in the simulator the caller then drives the
    /// network and polls [`Coordinator::outcome_of`], while the controller
    /// layers blocking/deferred/async semantics on top.
    ///
    /// Note that the proposal is *not* validated locally first: "the
    /// proposer is committed to acceptance of the new state at initiation
    /// of a protocol run" (§4.3) and validation is the recipients' job —
    /// which is exactly what lets a cheating party attempt an invalid
    /// change and be vetoed (Figure 5).
    ///
    /// # Errors
    ///
    /// [`CoordError::UnknownObject`], [`CoordError::NotMember`] or
    /// [`CoordError::Busy`].
    pub fn propose_overwrite(
        &mut self,
        object: &ObjectId,
        new_state: Vec<u8>,
        ctx: &mut NodeCtx,
    ) -> Result<RunId, CoordError> {
        self.start_state_run(
            object,
            ProposalKind::Overwrite,
            new_state.clone(),
            new_state,
            ctx,
        )
    }

    /// Proposes applying `update` to `object`'s state (§4.3.1): the update
    /// travels on the wire, while the signed proposal binds both `H(u_P)`
    /// and the hash of the successor state so recipients can check that a
    /// consistent new state will result.
    ///
    /// # Errors
    ///
    /// As [`Coordinator::propose_overwrite`], plus
    /// [`CoordError::UpdateFailed`] when the local object cannot apply the
    /// update.
    pub fn propose_update(
        &mut self,
        object: &ObjectId,
        update: Vec<u8>,
        ctx: &mut NodeCtx,
    ) -> Result<RunId, CoordError> {
        let rep = self
            .replicas
            .get(object)
            .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
        let new_state = rep
            .object
            .apply_update(&rep.agreed_state, &update)
            .map_err(CoordError::UpdateFailed)?;
        let kind = ProposalKind::Update {
            update_hash: sha256(&update),
        };
        let run = self.start_state_run(object, kind, update, new_state, ctx)?;
        self.telemetry.observe_ms(names::BATCH_OCCUPANCY, 1);
        Ok(run)
    }

    /// Proposes applying an ordered batch of updates to `object` in **one**
    /// signed state-coordination round: one canonical digest, one
    /// signature, one multicast, one evidence record covering the batch.
    ///
    /// The batch is a single state transition (`seq` advances by one), but
    /// the signed proposal carries a [`crate::messages::BatchLink`] per
    /// update — `H(u_i)` plus the hash of the state after applying updates
    /// `0..=i` — so recipients re-run every §4.2 check per update and a
    /// forged or stale update anywhere in the batch is detected and
    /// attributed to this proposer at its exact index. A batch of one
    /// degenerates to [`Coordinator::propose_update`] byte-for-byte.
    ///
    /// # Errors
    ///
    /// As [`Coordinator::propose_update`]; an empty batch is
    /// [`CoordError::UpdateFailed`].
    pub fn propose_update_batch(
        &mut self,
        object: &ObjectId,
        updates: Vec<Vec<u8>>,
        ctx: &mut NodeCtx,
    ) -> Result<RunId, CoordError> {
        if updates.is_empty() {
            return Err(CoordError::UpdateFailed("empty update batch".into()));
        }
        if updates.len() == 1 {
            return self.propose_update(object, updates.into_iter().next().expect("len 1"), ctx);
        }
        let rep = self
            .replicas
            .get(object)
            .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
        let mut links = Vec::with_capacity(updates.len());
        let mut state = rep.agreed_state.clone();
        for u in &updates {
            let next = rep
                .object
                .apply_update(&state, u)
                .map_err(CoordError::UpdateFailed)?;
            links.push(crate::messages::BatchLink {
                update_hash: sha256(u),
                state_hash: sha256(&next),
            });
            state = next;
        }
        let k = updates.len();
        let body = crate::messages::encode_batch_body(&updates);
        let run = self.start_state_run(object, ProposalKind::Batch { links }, body, state, ctx)?;
        self.telemetry.observe_ms(names::BATCH_OCCUPANCY, k as u64);
        self.telemetry.add(names::ROUNDS_COALESCED, (k - 1) as u64);
        Ok(run)
    }

    fn start_state_run(
        &mut self,
        object: &ObjectId,
        kind: ProposalKind,
        body: Vec<u8>,
        new_state: Vec<u8>,
        ctx: &mut NodeCtx,
    ) -> Result<RunId, CoordError> {
        let now = ctx.now();
        let me = self.me.clone();
        let mut rep = self
            .replicas
            .remove(object)
            .ok_or_else(|| CoordError::UnknownObject(object.clone()))?;
        let result = (|| {
            if rep.detached || !rep.is_member(&me) {
                return Err(CoordError::NotMember {
                    party: me.clone(),
                    object: object.clone(),
                });
            }
            if rep.active.is_some() {
                return Err(CoordError::Busy {
                    object: object.clone(),
                });
            }

            // Sequence number: exactly one past the agreed state. The
            // paper asks for "greater than any coordination request seen",
            // but deriving the next number from *seen* proposals lets a
            // malicious member poison it (one vetoed proposal carrying
            // seq u64::MAX would brick this party); the random-hash half
            // of the tuple already provides the disambiguation the paper
            // wants, so a fixed increment is both safe and sufficient —
            // and recipients enforce the same exact increment.
            let seq = rep.agreed.seq + 1;
            let rand = self.rng.nonce();
            let proposed = StateId {
                seq,
                rand_hash: sha256(&rand),
                state_hash: sha256(&new_state),
            };
            let authenticator = self.rng.nonce();
            let proposal = Proposal {
                object: object.clone(),
                proposer: me.clone(),
                group: rep.group,
                prev: rep.agreed,
                proposed,
                auth_commit: sha256(&authenticator),
                kind,
            };
            // Encode the signed part exactly once: the memo feeds the run
            // label, the signature, evidence logging and the wire fan-out.
            let memo = CachedCanonical::new();
            let (canonical, digest) = memo.get_or_encode(&proposal);
            let run = RunId(digest);
            let sig = self.sign_and_cache(&canonical, digest);
            let m1 = ProposeMsg {
                proposal,
                body,
                sig,
                memo,
            };
            rep.seen_runs.insert(run, rep.agreed.seq);
            rep.seen_tuples.insert((seq, proposed.rand_hash));

            let recipients = rep.recipients(&me);
            if recipients.is_empty() {
                // Singleton group: trivially unanimous.
                install_state(&mut rep, proposed, new_state, self.config.replay_window);
                return Ok((run, m1, None));
            }
            rep.active = Some(ActiveRun::Proposer(ProposerRun {
                run,
                propose: m1.clone(),
                authenticator,
                new_state,
                responses: Default::default(),
                decided: None,
            }));
            Ok((run, m1, Some(recipients)))
        })();

        let (run, m1, recipients) = match result {
            Ok(parts) => parts,
            Err(e) => {
                self.replicas.insert(object.clone(), rep);
                return Err(e);
            }
        };
        self.replicas.insert(object.clone(), rep);
        // The run id is a digest of the signed proposal, so the first
        // eight bytes make a content-addressed root trace id: identical on
        // every fabric, never drawn from the rng.
        self.begin_root(Coordinator::run_root(&run));
        self.telemetry.inc(names::ROUNDS_STARTED);
        self.note_run_started(run, now);
        self.trace(now, "state_run", "propose", || {
            format!(
                "object={object} run={} seq={} peers={}",
                run.to_hex(),
                m1.proposal.proposed.seq,
                recipients.as_ref().map(Vec::len).unwrap_or(0)
            )
        });
        self.log_evidence(
            EvidenceKind::StatePropose,
            object,
            &run.to_hex(),
            self.me.clone(),
            self.proposal_bytes_of(&m1).to_vec(),
            Some(m1.sig.clone()),
            now,
        );
        match recipients {
            None => {
                // Installed immediately (singleton group).
                self.checkpoint_evidence(object, run, now);
                self.persist(object);
                self.telemetry.inc(names::ROUNDS_COMMITTED);
                self.observe_run_latency(&run, now);
                self.trace(now, "state_run", "install", || {
                    format!("object={object} run={} singleton", run.to_hex())
                });
                self.outcomes.insert(
                    run,
                    Outcome::Installed {
                        state: m1.proposal.proposed,
                    },
                );
                self.emit(
                    object,
                    run,
                    CoordEventKind::Completed {
                        outcome: Outcome::Installed {
                            state: m1.proposal.proposed,
                        },
                    },
                    now,
                );
            }
            Some(recipients) => {
                let msg = WireMsg::Propose(m1);
                self.send_wire_all(&recipients, &msg, ctx);
                self.arm_deadline(object, run, ctx);
                self.persist(object);
                self.emit(object, run, CoordEventKind::Proposed, now);
            }
        }
        self.end_episode();
        self.flush_evidence();
        Ok(run)
    }

    // -----------------------------------------------------------------
    // Recipient side
    // -----------------------------------------------------------------

    pub(crate) fn on_propose(&mut self, from: &PartyId, m1: ProposeMsg, ctx: &mut NodeCtx) {
        let now = ctx.now();
        let oid = m1.proposal.object.clone();
        let run = m1.run_id();
        let run_hex = run.to_hex();
        let me = self.me.clone();

        // Unverifiable content earns no response — only a misbehaviour
        // record. (A forged message must not be able to extract evidence.)
        // The memo encodes exactly the bytes serde decoded, so any tampered
        // wire byte is what gets verified — and rejected — here.
        let canonical = m1.proposal_bytes();
        if from != &m1.proposal.proposer
            || self
                .verify_cached(
                    &m1.proposal.proposer,
                    &canonical,
                    m1.proposal_digest(),
                    &m1.sig,
                )
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &run_hex,
                Misbehaviour::BadSignature {
                    claimed: m1.proposal.proposer.clone(),
                    message: "propose".into(),
                },
                now,
            );
            return;
        }

        // Duplicate of a completed run: replay the stored reply.
        if self.replay_completed_reply(&oid, &run, from, ctx) {
            return;
        }

        let Some(mut rep) = self.replicas.remove(&oid) else {
            self.log_misbehaviour(
                &oid,
                &run_hex,
                Misbehaviour::UnexpectedMessage {
                    detail: format!("propose from {from} for unknown object"),
                },
                now,
            );
            return;
        };

        // Duplicate of the active run: re-send our response.
        if let Some(ActiveRun::Recipient(rr)) = &rep.active {
            if rr.run == run {
                let reply = WireMsg::Respond(rr.my_response.clone());
                self.replicas.insert(oid.clone(), rep);
                self.send_wire(from, &reply, ctx);
                return;
            }
        }

        if rep.detached || !rep.is_member(&me) || !rep.is_member(&m1.proposal.proposer) {
            self.replicas.insert(oid.clone(), rep);
            self.log_misbehaviour(
                &oid,
                &run_hex,
                Misbehaviour::UnexpectedMessage {
                    detail: format!("propose from non-member or to non-member ({from})"),
                },
                now,
            );
            return;
        }

        // ---- systematic consistency checks (§4.2 invariants, §4.4) ----
        let mut misbehaviours: Vec<Misbehaviour> = Vec::new();
        let mut decision = Decision::accept();
        let mut track_run = true;
        let reject = |d: &mut Decision, reason: String| {
            if d.is_accept() {
                *d = Decision::reject(reason);
            }
        };

        // `mutation` ablates individual checks below so the b2b-check
        // explorer can demonstrate each one is load-bearing; all flags are
        // false outside mutation-testing builds.
        let mutation = self.config.mutation;
        if !mutation.skip_replay && rep.seen_runs.contains_key(&run) {
            // Not the active run and not completed here ⇒ replay.
            misbehaviours.push(Misbehaviour::ReplayedProposal { run });
            reject(&mut decision, "replayed proposal".into());
            track_run = false;
        }
        if !mutation.skip_replay
            && rep
                .seen_tuples
                .contains(&(m1.proposal.proposed.seq, m1.proposal.proposed.rand_hash))
            && !rep.seen_runs.contains_key(&run)
        {
            misbehaviours.push(Misbehaviour::ReplayedProposal { run });
            reject(&mut decision, "proposal tuple reused".into());
            track_run = false;
        }
        if m1.proposal.group != rep.group {
            misbehaviours.push(Misbehaviour::GroupIdMismatch {
                theirs: m1.proposal.group,
                ours: rep.group,
            });
            reject(&mut decision, "inconsistent group identifier".into());
            track_run = false;
        }
        if !mutation.skip_predecessor && m1.proposal.prev != rep.agreed {
            misbehaviours.push(Misbehaviour::PredecessorMismatch {
                theirs: m1.proposal.prev,
                ours: rep.agreed,
            });
            reject(&mut decision, "predecessor is not the agreed state".into());
            track_run = false;
        }
        if !mutation.skip_sequence && m1.proposal.proposed.seq != rep.agreed.seq + 1 {
            // Exact increment: strictly stronger than the paper's
            // "greater than", and what honest proposers produce; anything
            // else is a replayed/poisoned sequence number.
            misbehaviours.push(Misbehaviour::SequenceNotGreater {
                proposed: m1.proposal.proposed.seq,
                agreed: rep.agreed.seq,
            });
            reject(&mut decision, "sequence number is not agreed + 1".into());
            track_run = false;
        }
        if rep.active.is_some() {
            // Concurrency control: one run at a time per object. Not
            // misbehaviour — the proposer simply retries after the active
            // run completes.
            reject(&mut decision, "concurrent coordination run active".into());
            track_run = false;
        }

        // ---- unsigned-body integrity (Dolev-Yao tampering, §4.4) ----
        let mut body_ok = true;
        let mut pending_state: Option<Vec<u8>> = None;
        let mut batch_updates: Option<Vec<Vec<u8>>> = None;
        match &m1.proposal.kind {
            ProposalKind::Overwrite => {
                if sha256(&m1.body) == m1.proposal.proposed.state_hash {
                    pending_state = Some(m1.body.clone());
                } else {
                    body_ok = false;
                }
            }
            ProposalKind::Update { update_hash } => {
                if sha256(&m1.body) != *update_hash {
                    body_ok = false;
                } else {
                    match rep.object.apply_update(&rep.agreed_state, &m1.body) {
                        Ok(next) if sha256(&next) == m1.proposal.proposed.state_hash => {
                            pending_state = Some(next);
                        }
                        Ok(_) => body_ok = false,
                        Err(reason) => {
                            reject(&mut decision, format!("update not applicable: {reason}"));
                        }
                    }
                }
            }
            ProposalKind::Batch { links } => {
                // §4.2 held per update inside the batch: replay the chain,
                // checking each update's bytes against its signed
                // `update_hash` and each intermediate state against its
                // signed `state_hash`. The links sit in the verified signed
                // part, so any mismatch is attributable to the proposer at
                // the exact batch index (`BatchedUpdateMismatch`).
                // `skip_batch_chain` ablates the chain checks only — the
                // batch still replays, so the mutation lets a forged batch
                // through to installation where the b2b-check state-hash
                // oracle catches it.
                let decoded = crate::messages::decode_batch_body(&m1.body);
                match decoded {
                    Some(updates) if !updates.is_empty() && updates.len() == links.len() => {
                        let mut state = rep.agreed_state.clone();
                        let mut failed = false;
                        for (i, (u, link)) in updates.iter().zip(links.iter()).enumerate() {
                            if !mutation.skip_batch_chain && sha256(u) != link.update_hash {
                                misbehaviours
                                    .push(Misbehaviour::BatchedUpdateMismatch { run, index: i });
                                reject(
                                    &mut decision,
                                    format!("batch[{i}]: update does not match signed hash"),
                                );
                                body_ok = false;
                                failed = true;
                                break;
                            }
                            match rep.object.apply_update(&state, u) {
                                Ok(next) => {
                                    if !mutation.skip_batch_chain
                                        && sha256(&next) != link.state_hash
                                    {
                                        misbehaviours.push(Misbehaviour::BatchedUpdateMismatch {
                                            run,
                                            index: i,
                                        });
                                        reject(
                                            &mut decision,
                                            format!("batch[{i}]: state hash chain mismatch"),
                                        );
                                        body_ok = false;
                                        failed = true;
                                        break;
                                    }
                                    state = next;
                                }
                                Err(reason) => {
                                    // Application-level inapplicability: a
                                    // veto, not tampering — mirrors the
                                    // single-update arm.
                                    if decision.is_accept() {
                                        decision = Decision::reject_update(
                                            i,
                                            format!("update not applicable: {reason}"),
                                        );
                                    }
                                    failed = true;
                                    break;
                                }
                            }
                        }
                        if !failed {
                            if !mutation.skip_batch_chain
                                && sha256(&state) != m1.proposal.proposed.state_hash
                            {
                                // Signed links consistent with the body but
                                // the chain's end disagrees with the signed
                                // proposed tuple: the proposer signed an
                                // incoherent batch.
                                misbehaviours.push(Misbehaviour::BatchedUpdateMismatch {
                                    run,
                                    index: links.len() - 1,
                                });
                                reject(
                                    &mut decision,
                                    "batch chain does not end at the proposed state".into(),
                                );
                                body_ok = false;
                            } else {
                                pending_state = Some(state);
                                batch_updates = Some(updates);
                            }
                        }
                    }
                    // Malformed framing or a link-count mismatch is
                    // tampering with the unsigned body.
                    _ => body_ok = false,
                }
            }
        }
        if !body_ok {
            misbehaviours.push(Misbehaviour::BodyHashMismatch { run });
            reject(&mut decision, "body does not match signed hashes".into());
            // An incoherent proposal (like the invariant failures above)
            // is rejected without holding the object: tracking it would
            // let a single bogus signed m1 lock the replica until a
            // decide that may never come. Genuine runs that fail only
            // application validation still track and await m3.
            track_run = false;
        }

        // ---- null transition (§4.4) ----
        if self.config.reject_null_transitions
            && m1.proposal.proposed.state_hash == rep.agreed.state_hash
        {
            misbehaviours.push(Misbehaviour::NullTransition { run });
            reject(&mut decision, "null state transition".into());
        }

        // ---- application validation upcall ----
        if decision.is_accept() {
            let app = match (&m1.proposal.kind, &pending_state) {
                (ProposalKind::Overwrite, _) => {
                    rep.object
                        .validate_state(&m1.proposal.proposer, &rep.agreed_state, &m1.body)
                }
                (ProposalKind::Update { .. }, _) => {
                    rep.object
                        .validate_update(&m1.proposal.proposer, &rep.agreed_state, &m1.body)
                }
                (ProposalKind::Batch { .. }, _) => {
                    // Validate each update against the state it would
                    // actually apply to, so the upcall sees exactly the
                    // sequence a commit would install. The first veto names
                    // its batch index (§4.4 attribution inside the batch).
                    let mut app = Decision::accept();
                    if let Some(updates) = &batch_updates {
                        let mut state = rep.agreed_state.clone();
                        for (i, u) in updates.iter().enumerate() {
                            let v = rep.object.validate_update(&m1.proposal.proposer, &state, u);
                            if !v.is_accept() {
                                app = Decision::reject_update(
                                    i,
                                    v.reason.unwrap_or_else(|| "rejected".into()),
                                );
                                break;
                            }
                            match rep.object.apply_update(&state, u) {
                                Ok(next) => state = next,
                                Err(reason) => {
                                    app = Decision::reject_update(i, reason);
                                    break;
                                }
                            }
                        }
                    }
                    app
                }
            };
            if !app.is_accept() {
                decision = app;
            }
        }

        // `pending_state` survives a local veto: it records the successor
        // state *if the body is intact*, so that under the §7 majority
        // extension an outvoted recipient can still follow the group
        // decision. Under the unanimous rule a veto precludes installation
        // anyway, so keeping it is harmless there.
        if decision.is_accept() {
            debug_assert!(pending_state.is_some());
        }

        // ---- respond ----
        let response = Response {
            object: oid.clone(),
            responder: me.clone(),
            group: rep.group,
            run,
            prev: rep.agreed,
            proposed: m1.proposal.proposed,
            body_ok,
            decision: decision.clone(),
        };
        // Seeding the verification cache with our own signature means that
        // when this response comes back aggregated inside the m3, checking
        // it is a cache hit rather than a self re-verification.
        let memo = CachedCanonical::new();
        let (resp_canonical, resp_digest) = memo.get_or_encode(&response);
        let sig = self.sign_and_cache(&resp_canonical, resp_digest);
        let m2 = RespondMsg {
            response,
            sig,
            memo,
        };

        rep.seen_runs.insert(run, rep.agreed.seq);
        rep.seen_tuples
            .insert((m1.proposal.proposed.seq, m1.proposal.proposed.rand_hash));
        let armed_recipient_deadline = track_run && self.config.ttp.is_some();
        if track_run {
            rep.active = Some(ActiveRun::Recipient(RecipientRun {
                run,
                propose: m1.clone(),
                my_response: m2.clone(),
                pending_state,
            }));
        }
        self.replicas.insert(oid.clone(), rep);
        if armed_recipient_deadline {
            self.arm_deadline(&oid, run, ctx);
        }

        self.log_evidence(
            EvidenceKind::StatePropose,
            &oid,
            &run_hex,
            m1.proposal.proposer.clone(),
            self.proposal_bytes_of(&m1).to_vec(),
            Some(m1.sig.clone()),
            now,
        );
        self.log_evidence(
            EvidenceKind::StateRespond,
            &oid,
            &run_hex,
            me,
            self.response_bytes_of(&m2).to_vec(),
            Some(m2.sig.clone()),
            now,
        );
        for m in misbehaviours {
            self.log_misbehaviour(&oid, &run_hex, m, now);
        }
        if track_run {
            // A recipient's round begins when it starts tracking the
            // proposal, so fleet-wide `rounds_started` bounds
            // `rounds_committed + rounds_aborted`.
            self.telemetry.inc(names::ROUNDS_STARTED);
            self.note_run_started(run, now);
        }
        self.trace(now, "state_run", "respond", || {
            format!(
                "object={oid} run={run_hex} decision={}",
                if decision.is_accept() {
                    "accept"
                } else {
                    "reject"
                }
            )
        });
        let proposer = m1.proposal.proposer.clone();
        self.send_wire(&proposer, &WireMsg::Respond(m2), ctx);
        self.persist(&oid);
    }

    // -----------------------------------------------------------------
    // Proposer side: collecting responses
    // -----------------------------------------------------------------

    pub(crate) fn on_respond(&mut self, from: &PartyId, m2: RespondMsg, ctx: &mut NodeCtx) {
        let now = ctx.now();
        let oid = m2.response.object.clone();
        let run = m2.response.run;
        let run_hex = run.to_hex();

        let canonical = m2.response_bytes();
        if from != &m2.response.responder
            || self
                .verify_cached(
                    &m2.response.responder,
                    &canonical,
                    m2.response_digest(),
                    &m2.sig,
                )
                .is_err()
        {
            self.telemetry.inc(names::VOTES_INVALID);
            self.trace(now, "state_run", "vote_collect", || {
                format!("object={oid} run={run_hex} from={from} vote=invalid_sig")
            });
            self.log_misbehaviour(
                &oid,
                &run_hex,
                Misbehaviour::BadSignature {
                    claimed: m2.response.responder.clone(),
                    message: "respond".into(),
                },
                now,
            );
            return;
        }

        // Late response for a completed run: re-send the decide.
        if self.replay_completed_reply(&oid, &run, from, ctx) {
            return;
        }

        let Some(mut rep) = self.replicas.remove(&oid) else {
            return;
        };
        let mut finalize = false;
        match &mut rep.active {
            Some(ActiveRun::Proposer(pr)) if pr.run == run => {
                // The signed response must echo the actual proposal: a
                // response that names another object or tuple under this
                // run id is internally inconsistent and would weaken what
                // the aggregated evidence proves (§4.4). It is recorded as
                // misbehaviour and not counted; the run blocks until the
                // deadline/TTP path resolves it.
                if m2.response.object != oid || m2.response.proposed != pr.propose.proposal.proposed
                {
                    self.log_misbehaviour(
                        &oid,
                        &run_hex,
                        Misbehaviour::InconsistentDecide {
                            run,
                            detail: format!("response from {from} echoes a different object/tuple"),
                        },
                        now,
                    );
                } else if !rep.members.contains(from) {
                    self.log_misbehaviour(
                        &oid,
                        &run_hex,
                        Misbehaviour::UnexpectedMessage {
                            detail: format!("response from non-member {from}"),
                        },
                        now,
                    );
                } else {
                    match pr.responses.get(from) {
                        Some(existing) if existing == &m2 => {} // duplicate
                        Some(_) => {
                            // Two different signed responses to one run:
                            // irrefutable evidence of misbehaviour.
                            self.log_misbehaviour(
                                &oid,
                                &run_hex,
                                Misbehaviour::InconsistentDecide {
                                    run,
                                    detail: format!("conflicting signed responses from {from}"),
                                },
                                now,
                            );
                        }
                        None => {
                            pr.responses.insert(from.clone(), m2.clone());
                            self.telemetry.inc(names::VOTES_VALID);
                            let (got, want) = (pr.responses.len(), rep.members.len() - 1);
                            self.trace(now, "state_run", "vote_collect", || {
                                format!(
                                    "object={oid} run={run_hex} from={from} verdict={:?} \
                                     {got}/{want}",
                                    m2.response.decision.verdict
                                )
                            });
                            self.log_evidence(
                                EvidenceKind::StateRespond,
                                &oid,
                                &run_hex,
                                from.clone(),
                                self.response_bytes_of(&m2).to_vec(),
                                Some(m2.sig.clone()),
                                now,
                            );
                            self.events.push(crate::decision::CoordEvent {
                                object: oid.clone(),
                                run,
                                event: CoordEventKind::ResponseReceived {
                                    from: from.clone(),
                                    verdict: m2.response.decision.verdict,
                                },
                                at: now,
                            });
                            let expected = rep.members.len() - 1;
                            if pr.responses.len() == expected {
                                finalize = true;
                            }
                        }
                    }
                }
            }
            _ => {
                self.log_misbehaviour(
                    &oid,
                    &run_hex,
                    Misbehaviour::UnexpectedMessage {
                        detail: format!("response for unknown run from {from}"),
                    },
                    now,
                );
            }
        }
        self.replicas.insert(oid.clone(), rep);
        if finalize {
            self.finalize_state_run(&oid, run, ctx);
        } else {
            self.persist(&oid);
        }
    }

    /// Computes the group decision, sends `m3`, installs or rolls back.
    fn finalize_state_run(&mut self, oid: &ObjectId, run: RunId, ctx: &mut NodeCtx) {
        let now = ctx.now();
        let run_hex = run.to_hex();
        let me = self.me.clone();
        let Some(mut rep) = self.replicas.remove(oid) else {
            return;
        };
        let Some(ActiveRun::Proposer(pr)) = rep.active.take() else {
            self.replicas.insert(oid.clone(), rep);
            return;
        };

        let responses: Vec<RespondMsg> = pr.responses.values().cloned().collect();
        let (accepted, vetoers) =
            group_decision(self.config.decision_rule, rep.members.len(), &responses);
        let decide = DecideMsg {
            object: oid.clone(),
            run,
            authenticator: pr.authenticator,
            responses,
        };
        let outcome = if accepted {
            install_state(
                &mut rep,
                pr.propose.proposal.proposed,
                pr.new_state.clone(),
                self.config.replay_window,
            );
            Outcome::Installed {
                state: pr.propose.proposal.proposed,
            }
        } else {
            // The proposer's working state rolls back to the agreed state;
            // the engine never installed the proposed state, so rollback is
            // re-asserting the agreed checkpoint.
            let agreed = rep.agreed_state.clone();
            rep.object.apply_state(&agreed);
            Outcome::Invalidated { vetoers }
        };

        // §3.3 "the proposer simply retries": a round rejected purely by
        // the group's concurrency control — every veto reason systematic
        // (a peer was mid-round, or an install won the race for this
        // sequence number), none an application judgement — requeues its
        // updates at the head of the pending queue. The next flush
        // re-derives them against the new agreed state (the object's
        // `apply_update`), after a jittered holdoff so the colliding
        // proposers desynchronise. Overwrites are excluded: an overwrite
        // asserts an exact predecessor, so replaying it against a
        // different one would change its meaning.
        let mut requeue: Vec<(crate::coordinator::TicketId, Vec<u8>)> = Vec::new();
        if let Outcome::Invalidated { vetoers } = &outcome {
            if !vetoers.is_empty()
                && vetoers
                    .iter()
                    .all(|(_, r)| crate::coordinator::is_transient_reject(r))
            {
                let updates: Vec<Vec<u8>> = match &pr.propose.proposal.kind {
                    ProposalKind::Update { .. } => vec![pr.propose.body.clone()],
                    ProposalKind::Batch { .. } => {
                        crate::messages::decode_batch_body(&pr.propose.body).unwrap_or_default()
                    }
                    ProposalKind::Overwrite => Vec::new(),
                };
                if !updates.is_empty() {
                    // This run's tickets, in submission (= batch) order.
                    let mut tids: Vec<crate::coordinator::TicketId> = self
                        .tickets
                        .iter()
                        .filter(|(_, s)| {
                            matches!(s, crate::coordinator::TicketState::Run(r) if *r == run)
                        })
                        .map(|(t, _)| *t)
                        .collect();
                    tids.sort();
                    if tids.len() == updates.len() {
                        let reason = vetoers
                            .first()
                            .map(|(_, r)| r.clone())
                            .unwrap_or_default();
                        for (tid, u) in tids.into_iter().zip(updates) {
                            let n = self.transient_retry.entry(tid).or_insert(0);
                            *n += 1;
                            if *n > crate::coordinator::MAX_TRANSIENT_RETRIES {
                                self.transient_retry.remove(&tid);
                                self.tickets.insert(
                                    tid,
                                    crate::coordinator::TicketState::Failed(format!(
                                        "contention retries exhausted: {reason}"
                                    )),
                                );
                            } else {
                                self.tickets
                                    .insert(tid, crate::coordinator::TicketState::Queued);
                                requeue.push((tid, u));
                            }
                        }
                    }
                }
            }
        }
        if outcome.is_installed() && !self.transient_retry.is_empty() {
            // The contended updates made it in: drop their retry counters.
            let tickets = &self.tickets;
            self.transient_retry.retain(|tid, _| {
                !matches!(tickets.get(tid),
                          Some(crate::coordinator::TicketState::Run(r)) if *r == run)
            });
        }

        let recipients = rep.recipients(&me);
        rep.remember_reply(
            run,
            WireMsg::Decide(decide.clone()),
            self.config.completed_replies_cap,
        );
        self.replicas.insert(oid.clone(), rep);

        let msg = WireMsg::Decide(decide.clone());
        self.send_wire_all(&recipients, &msg, ctx);
        self.trace(now, "state_run", "decide", || {
            format!(
                "object={oid} run={run_hex} accepted={accepted} responses={}",
                decide.responses.len()
            )
        });
        self.log_evidence(
            EvidenceKind::StateDecide,
            oid,
            &run_hex,
            me,
            serde_json::to_vec(&decide).expect("decide serialises"),
            None,
            now,
        );
        if outcome.is_installed() {
            self.checkpoint_evidence(oid, run, now);
            self.telemetry.inc(names::ROUNDS_COMMITTED);
            self.trace(now, "state_run", "install", || {
                format!("object={oid} run={run_hex}")
            });
        } else {
            self.telemetry.inc(names::ROUNDS_ABORTED);
            self.trace(now, "state_run", "rollback", || {
                format!("object={oid} run={run_hex}")
            });
        }
        self.observe_run_latency(&run, now);
        self.persist(oid);
        self.outcomes.insert(run, outcome.clone());
        self.emit(oid, run, CoordEventKind::Completed { outcome }, now);
        if !requeue.is_empty() {
            self.telemetry.inc(names::ROUNDS_RETRIED);
            let p = self.pending_updates.entry(oid.clone()).or_default();
            let mut rest = std::mem::take(&mut p.queue);
            p.queue = requeue;
            p.queue.append(&mut rest);
            self.arm_retry_holdoff(oid, ctx);
        }
        self.pump_queue(oid, ctx);
    }

    // -----------------------------------------------------------------
    // Recipient side: the decide
    // -----------------------------------------------------------------

    pub(crate) fn on_decide(&mut self, from: &PartyId, m3: DecideMsg, ctx: &mut NodeCtx) {
        let now = ctx.now();
        let oid = m3.object.clone();
        let run = m3.run;
        let run_hex = run.to_hex();
        let me = self.me.clone();

        if self.outcomes.contains_key(&run) {
            return; // duplicate decide
        }
        let Some(mut rep) = self.replicas.remove(&oid) else {
            return;
        };
        let Some(ActiveRun::Recipient(rr)) = rep.active.clone() else {
            // A decide for a run we rejected while busy (we kept no run
            // state) or never saw: ignore — installing anything on the
            // basis of an unexpected decide would be unsafe.
            self.replicas.insert(oid, rep);
            return;
        };
        if rr.run != run {
            self.replicas.insert(oid, rep);
            return;
        }

        // ---- authenticator: only the proposer can reveal r_P ----
        if sha256(&m3.authenticator) != rr.propose.proposal.auth_commit {
            self.replicas.insert(oid.clone(), rep);
            self.log_misbehaviour(
                &oid,
                &run_hex,
                Misbehaviour::AuthenticatorMismatch { run },
                now,
            );
            return; // keep the run active: the genuine decide may follow
        }

        // ---- verify the aggregated responses ----
        let proposer = rr.propose.proposal.proposer.clone();
        let mut fault: Option<Misbehaviour> = None;
        let expected: std::collections::BTreeSet<&PartyId> =
            rep.members.iter().filter(|m| **m != proposer).collect();
        let mut seen: std::collections::BTreeSet<&PartyId> = Default::default();
        for r in &m3.responses {
            if r.response.run != run
                || r.response.object != oid
                || r.response.proposed != rr.propose.proposal.proposed
            {
                fault = Some(Misbehaviour::InconsistentDecide {
                    run,
                    detail: "response for another run, object or tuple".into(),
                });
                break;
            }
            if !expected.contains(&r.response.responder) || !seen.insert(&r.response.responder) {
                fault = Some(Misbehaviour::InconsistentDecide {
                    run,
                    detail: format!("unexpected or duplicate responder {}", r.response.responder),
                });
                break;
            }
        }
        // The structurally sound aggregation's signatures are checked as
        // one batch: cache hits are excluded up front, the misses verify in
        // a single batched call (spread across the verify pool when one is
        // attached), and only a failed batch falls back to per-item
        // verification so the offender is still attributed (§4.4).
        if fault.is_none() {
            let items: Vec<_> = m3
                .responses
                .iter()
                .map(|r| {
                    (
                        r.response.responder.clone(),
                        self.response_bytes_of(r),
                        r.response_digest(),
                        r.sig.clone(),
                    )
                })
                .collect();
            if let Err(claimed) = self.verify_batch_cached(&items) {
                fault = Some(Misbehaviour::BadSignature {
                    claimed,
                    message: "aggregated response".into(),
                });
            }
        }
        // Under the base (unanimous) rule the response set must be
        // complete; the §7 majority extension legitimately resolves runs
        // from a partial set after the deadline.
        let majority = self.config.decision_rule == crate::config::DecisionRule::Majority;
        if fault.is_none() && seen.len() != expected.len() && !majority {
            fault = Some(Misbehaviour::InconsistentDecide {
                run,
                detail: "response set incomplete".into(),
            });
        }
        // Our own response, when included, must be byte-identical; under
        // the unanimous rule it must also be present.
        if fault.is_none() {
            let mine = m3.responses.iter().find(|r| r.response.responder == me);
            match mine {
                Some(r) if r == &rr.my_response => {}
                Some(_) => fault = Some(Misbehaviour::ResponseMisrepresented { run }),
                None if !majority => fault = Some(Misbehaviour::ResponseMisrepresented { run }),
                None => {}
            }
        }

        if let Some(m) = fault {
            // Fail-safe abort: evidence is logged; the replica keeps its
            // agreed state. The run stays active awaiting a consistent
            // decide (or extra-protocol resolution).
            self.replicas.insert(oid.clone(), rep);
            self.log_misbehaviour(&oid, &run_hex, m, now);
            return;
        }

        // ---- compute the group decision ----
        let (accepted, vetoers) =
            group_decision(self.config.decision_rule, rep.members.len(), &m3.responses);
        // Under the majority extension a *partial* response set may only
        // resolve the run by demonstrating the installing majority. A
        // partial veto-only set proves nothing (the missing responses
        // could be accepts) and, since the decide is unsigned and the
        // authenticator is public after the first m3, could be a
        // re-aggregation by the network adversary — keep waiting instead
        // of diverging from peers that saw the full set.
        if majority && !accepted && seen.len() != expected.len() {
            self.replicas.insert(oid, rep);
            return;
        }
        let outcome = if accepted {
            match rr.pending_state.clone() {
                Some(next) => {
                    install_state(
                        &mut rep,
                        rr.propose.proposal.proposed,
                        next,
                        self.config.replay_window,
                    );
                    Outcome::Installed {
                        state: rr.propose.proposal.proposed,
                    }
                }
                None => {
                    // Only reachable under the majority extension when we
                    // ourselves vetoed for body reasons: without a valid
                    // body we cannot install, so we abort locally.
                    Outcome::Aborted {
                        reason: "group accepted but no valid local body".into(),
                    }
                }
            }
        } else {
            Outcome::Invalidated { vetoers }
        };
        rep.active = None;
        // Keep our signed response on file: if the proposer crashed and
        // re-sends m1 on recovery, we answer with the *same* response
        // instead of minting a conflicting signed rejection (which would
        // manufacture false evidence of equivocation against us, and
        // false replay evidence against the honest proposer).
        rep.remember_reply(
            run,
            WireMsg::Respond(rr.my_response.clone()),
            self.config.completed_replies_cap,
        );
        self.replicas.insert(oid.clone(), rep);

        self.log_evidence(
            EvidenceKind::StateDecide,
            &oid,
            &run_hex,
            proposer,
            serde_json::to_vec(&m3).expect("decide serialises"),
            None,
            now,
        );
        if outcome.is_installed() {
            self.checkpoint_evidence(&oid, run, now);
            self.telemetry.inc(names::ROUNDS_COMMITTED);
            self.trace(now, "state_run", "install", || {
                format!("object={oid} run={run_hex}")
            });
        } else {
            self.telemetry.inc(names::ROUNDS_ABORTED);
            self.trace(now, "state_run", "rollback", || {
                format!("object={oid} run={run_hex}")
            });
        }
        self.observe_run_latency(&run, now);
        self.persist(&oid);
        self.outcomes.insert(run, outcome.clone());
        self.emit(&oid, run, CoordEventKind::Completed { outcome }, now);
        self.pump_queue(&oid, ctx);
        let _ = from;
    }

    // -----------------------------------------------------------------
    // Deadlines (§7 termination extension, proposer side)
    // -----------------------------------------------------------------

    pub(crate) fn on_run_deadline(&mut self, oid: &ObjectId, run: RunId, ctx: &mut NodeCtx) {
        let now = ctx.now();
        // A blocked *recipient* (responded, decide never came) can appeal
        // to the TTP too; without a TTP it stays blocked per the base
        // protocol.
        if matches!(
            self.replicas.get(oid).and_then(|r| r.active.as_ref()),
            Some(ActiveRun::Recipient(rr)) if rr.run == run
        ) {
            if let Some(ttp) = self.config.ttp.clone() {
                self.appeal_to_ttp(oid, run, ttp, ctx);
            }
            return;
        }
        let is_pending = matches!(
            self.replicas.get(oid).and_then(|r| r.active.as_ref()),
            Some(ActiveRun::Proposer(pr)) if pr.run == run && pr.decided.is_none()
        );
        if !is_pending {
            return;
        }
        match self.config.decision_rule {
            crate::config::DecisionRule::Majority => {
                // Resolve with the responses in hand: silence counts
                // neither for nor against; the majority threshold is over
                // the whole group.
                self.finalize_state_run(oid, run, ctx);
            }
            crate::config::DecisionRule::Unanimous => {
                // §7: with an appointed TTP, appeal for a certified
                // resolution that reaches every member; without one, abort
                // locally and leave the evidence for extra-protocol
                // resolution.
                if let Some(ttp) = self.config.ttp.clone() {
                    self.appeal_to_ttp(oid, run, ttp, ctx);
                    return;
                }
                if let Some(rep) = self.replicas.get_mut(oid) {
                    if let Some(ActiveRun::Proposer(_)) = rep.active.take() {
                        let agreed = rep.agreed_state.clone();
                        rep.object.apply_state(&agreed);
                    }
                }
                let outcome = Outcome::Aborted {
                    reason: "response deadline expired".into(),
                };
                self.telemetry.inc(names::ROUNDS_ABORTED);
                self.observe_run_latency(&run, now);
                self.trace(now, "state_run", "abort", || {
                    format!("object={oid} run={} reason=deadline", run.to_hex())
                });
                self.persist(oid);
                self.outcomes.insert(run, outcome.clone());
                self.emit(oid, run, CoordEventKind::Completed { outcome }, now);
                self.pump_queue(oid, ctx);
            }
        }
    }

    pub(crate) fn checkpoint_evidence(
        &mut self,
        oid: &ObjectId,
        run: RunId,
        now: b2b_crypto::TimeMs,
    ) {
        let payload = self
            .replicas
            .get(oid)
            .map(|r| serde_json::to_vec(&r.agreed).expect("state id serialises"))
            .unwrap_or_default();
        self.log_evidence(
            EvidenceKind::Checkpoint,
            oid,
            &run.to_hex(),
            self.me.clone(),
            payload,
            None,
            now,
        );
    }
}

/// Installs a newly validated state into a replica, then prunes
/// replay-detection tuples that fell out of the configured window (§4.2
/// invariant 4 stays enforced by the exact-increment sequence check).
fn install_state(rep: &mut Replica, id: StateId, state: Vec<u8>, replay_window: u64) {
    rep.object.apply_state(&state);
    rep.agreed = id;
    rep.agreed_state = state;
    rep.prune_seen(replay_window);
}

/// Computes the group decision over a response set.
///
/// Under [`crate::DecisionRule::Unanimous`] (the paper): valid iff every
/// response accepts with an intact body. Under majority: valid iff
/// `accepts + 1` (the proposer, by definition accepting) form a strict
/// majority of the whole group.
pub(crate) fn group_decision(
    rule: crate::config::DecisionRule,
    group_size: usize,
    responses: &[RespondMsg],
) -> (bool, Vec<(PartyId, String)>) {
    let vetoers: Vec<(PartyId, String)> = responses
        .iter()
        .filter(|r| r.response.decision.verdict == Verdict::Reject || !r.response.body_ok)
        .map(|r| {
            (
                r.response.responder.clone(),
                r.response
                    .decision
                    .reason
                    .clone()
                    .unwrap_or_else(|| "rejected".into()),
            )
        })
        .collect();
    let accepts = responses
        .iter()
        .filter(|r| r.response.decision.verdict == Verdict::Accept && r.response.body_ok)
        .count();
    let accepted = match rule {
        crate::config::DecisionRule::Unanimous => {
            vetoers.is_empty() && accepts == group_size.saturating_sub(1)
        }
        crate::config::DecisionRule::Majority => (accepts + 1) * 2 > group_size,
    };
    (accepted, vetoers)
}
