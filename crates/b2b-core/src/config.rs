//! Coordinator configuration.

use b2b_crypto::TimeMs;
use serde::{Deserialize, Serialize};

/// How the group decision over responses is computed.
///
/// The base protocol requires unanimity (§4.1); majority decision is the
/// §7 termination extension ("automatic resolution or abort by resorting to
/// majority decision on state changes").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionRule {
    /// "A new state is valid if the collective decision is unanimous
    /// agreement to the change" (§3).
    Unanimous,
    /// Extension: a strict majority of *all group members* (proposer
    /// included, who by definition accepts) validates the change even if a
    /// minority rejects or stays silent past the deadline.
    Majority,
}

/// Mutation-testing switches that disable individual §4.2 acceptance
/// checks in `on_propose`.
///
/// These exist **only** so the `b2b-check` schedule explorer can prove its
/// oracles have teeth: with one invariant check ablated, the explorer must
/// find and shrink a schedule on which the protocol installs divergent or
/// ill-founded state; with all flags `false` (the default, and the only
/// supported production setting) the same schedules must pass clean.
/// Nothing in the middleware ever sets these outside checker builds.
/// Serializable so a `b2b-check` counterexample artifact records exactly
/// which ablation it was found under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationFlags {
    /// Skip the replay checks: a proposal reusing an already-seen run
    /// label or `(seq, rand_hash)` tuple is accepted instead of being
    /// flagged as `ReplayedProposal`/`ReusedTuple` misbehaviour.
    pub skip_replay: bool,
    /// Skip invariant 1 (§4.2): a proposal whose `prev` does not equal the
    /// recipient's agreed state is no longer rejected with
    /// `PredecessorMismatch`.
    pub skip_predecessor: bool,
    /// Skip invariant 3 (§4.2): a proposal whose new sequence number is
    /// not exactly `agreed.seq + 1` is no longer rejected with
    /// `SequenceNotGreater`.
    pub skip_sequence: bool,
    /// Skip the per-update hash-chain checks inside a batched proposal: a
    /// batch whose link digests do not match the replayed updates (or whose
    /// final link disagrees with the proposed tuple) is no longer rejected
    /// with `BatchedUpdateMismatch`.
    pub skip_batch_chain: bool,
}

impl MutationFlags {
    /// `true` when any check is ablated.
    pub fn any(&self) -> bool {
        self.skip_replay || self.skip_predecessor || self.skip_sequence || self.skip_batch_chain
    }
}

/// Tunables of a [`crate::Coordinator`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Base retransmission interval of the reliable-delivery layer: the
    /// delay before a frame's *first* retransmission.
    pub retransmit_after: TimeMs,
    /// Ceiling of the reliable layer's exponential retransmission backoff.
    /// The delay doubles from `retransmit_after` on every further
    /// unacknowledged retransmission of the same frame until it reaches
    /// this cap, so a long partition produces a bounded probe trickle
    /// rather than a constant-rate storm. `None` keeps the layer's default
    /// cap of 32 × `retransmit_after`.
    pub retransmit_max: Option<TimeMs>,
    /// Reject proposals whose new state equals the current agreed state
    /// (§4.4: recipients "can reject a null state transition").
    pub reject_null_transitions: bool,
    /// Unanimity (paper) or majority (§7 extension).
    pub decision_rule: DecisionRule,
    /// §7 extension: a trusted third party to appeal to when a run passes
    /// its deadline under the unanimous rule. The TTP certifies an abort —
    /// or a decision, when the proposer can present a complete response
    /// set — and distributes it to every member, so "all honest parties
    /// terminate with the same view of agreed state". `None` (with a
    /// deadline) aborts locally at the proposer only.
    pub ttp: Option<b2b_crypto::PartyId>,
    /// Optional deadline after which a proposer with an incomplete response
    /// set invokes the §7 termination extension (TTP-certified abort, or a
    /// majority decision under [`DecisionRule::Majority`]). `None` keeps
    /// the paper's base behaviour: a blocked run stays blocked and is
    /// surfaced to the application.
    pub run_deadline: Option<TimeMs>,
    /// Capacity of the signature-verification cache: how many distinct
    /// `(party, digest, signature)` triples whose verification already
    /// succeeded are remembered, so a signature checked at m2 receipt is
    /// not re-verified at m3 aggregation. `0` disables the cache (every
    /// verification does the full public-key operation). The cache never
    /// changes what is *accepted* — a tampered byte yields a different
    /// digest and always misses — and it is cleared whenever the key ring
    /// changes (see [`crate::Coordinator::update_ring`]).
    pub sig_cache_capacity: usize,
    /// Replay-detection window: how many proposal tuples / run labels at or
    /// below the agreed sequence number are retained after an installation.
    /// Tuples older than the window are pruned — they are still rejected
    /// (the sequence check requires `seq == agreed.seq + 1`), only the
    /// misbehaviour label degrades from `ReplayedProposal` to the generic
    /// sequence complaint. Bounds the per-replica snapshot size, which
    /// otherwise grows without bound across runs.
    pub replay_window: u64,
    /// How many completed-run re-replies are retained for duplicate and
    /// post-recovery retransmissions. Oldest entries are dropped first; a
    /// peer that retransmits a run older than this simply gets silence and
    /// recovers through the normal state-transfer path.
    pub completed_replies_cap: usize,
    /// Maximum number of pending application updates coalesced into one
    /// signed state-coordination round (`k`). While a round is in flight,
    /// further `submit_update` calls queue; when the round completes, up to
    /// `batch_max` queued updates are coordinated as one batch — one
    /// canonical digest, one signature, one multicast, one evidence record.
    /// `1` disables batching (every update pays its own round).
    pub batch_max: usize,
    /// How long (virtual ms) an idle coordinator lingers after the first
    /// queued update before dispatching a partial batch, hoping more
    /// updates arrive to fill it. `TimeMs(0)` dispatches immediately —
    /// batches then form only from genuine concurrency (updates queued
    /// while a round is in flight), which adds no latency at low load.
    pub batch_linger: TimeMs,
    /// Bound on the pending-update queue (backpressure for
    /// `DeferredSynchronous`/`Asynchronous` callers): `submit_update`
    /// beyond this many queued-but-not-yet-proposed updates fails with
    /// `CoordError::Busy` instead of growing memory without bound.
    pub pending_updates_max: usize,
    /// Mutation-testing ablations of the §4.2 acceptance checks. All
    /// `false` in any real deployment; see [`MutationFlags`].
    pub mutation: MutationFlags,
}

impl CoordinatorConfig {
    /// The paper's base configuration.
    pub fn new() -> CoordinatorConfig {
        CoordinatorConfig {
            retransmit_after: TimeMs(200),
            retransmit_max: None,
            reject_null_transitions: true,
            decision_rule: DecisionRule::Unanimous,
            ttp: None,
            run_deadline: None,
            sig_cache_capacity: 1024,
            replay_window: 64,
            completed_replies_cap: 64,
            batch_max: 16,
            batch_linger: TimeMs(0),
            pending_updates_max: 1024,
            mutation: MutationFlags::default(),
        }
    }

    /// Sets the base retransmission interval (first-retry delay).
    pub fn retransmit_after(mut self, interval: TimeMs) -> CoordinatorConfig {
        self.retransmit_after = interval;
        self
    }

    /// Sets the retransmission-backoff ceiling.
    pub fn retransmit_max(mut self, max: TimeMs) -> CoordinatorConfig {
        self.retransmit_max = Some(max);
        self
    }

    /// Enables or disables null-transition rejection.
    pub fn reject_null_transitions(mut self, reject: bool) -> CoordinatorConfig {
        self.reject_null_transitions = reject;
        self
    }

    /// Selects the group decision rule.
    pub fn decision_rule(mut self, rule: DecisionRule) -> CoordinatorConfig {
        self.decision_rule = rule;
        self
    }

    /// Sets a proposer-side deadline for the termination extension.
    pub fn run_deadline(mut self, deadline: TimeMs) -> CoordinatorConfig {
        self.run_deadline = Some(deadline);
        self
    }

    /// Appoints the trusted third party used for certified termination.
    pub fn ttp(mut self, ttp: b2b_crypto::PartyId) -> CoordinatorConfig {
        self.ttp = Some(ttp);
        self
    }

    /// Sets the signature-verification cache capacity (`0` disables).
    pub fn sig_cache_capacity(mut self, capacity: usize) -> CoordinatorConfig {
        self.sig_cache_capacity = capacity;
        self
    }

    /// Sets the replay-detection window (tuples/runs kept past install).
    pub fn replay_window(mut self, window: u64) -> CoordinatorConfig {
        self.replay_window = window;
        self
    }

    /// Sets how many completed-run re-replies are retained.
    pub fn completed_replies_cap(mut self, cap: usize) -> CoordinatorConfig {
        self.completed_replies_cap = cap;
        self
    }

    /// Sets the maximum batch size `k` (clamped to at least 1).
    pub fn batch_max(mut self, k: usize) -> CoordinatorConfig {
        self.batch_max = k.max(1);
        self
    }

    /// Sets the idle linger budget before dispatching a partial batch.
    pub fn batch_linger(mut self, linger: TimeMs) -> CoordinatorConfig {
        self.batch_linger = linger;
        self
    }

    /// Sets the pending-update queue bound (backpressure threshold).
    pub fn pending_updates_max(mut self, max: usize) -> CoordinatorConfig {
        self.pending_updates_max = max;
        self
    }

    /// Ablates §4.2 acceptance checks for mutation testing. Never set in
    /// production; see [`MutationFlags`].
    pub fn mutation(mut self, flags: MutationFlags) -> CoordinatorConfig {
        self.mutation = flags;
        self
    }
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_base() {
        let c = CoordinatorConfig::default();
        assert_eq!(c.decision_rule, DecisionRule::Unanimous);
        assert!(c.reject_null_transitions);
        assert_eq!(c.run_deadline, None);
        assert_eq!(c.ttp, None);
        assert_eq!(c.sig_cache_capacity, 1024);
        assert_eq!(c.replay_window, 64);
        assert_eq!(c.completed_replies_cap, 64);
        assert_eq!(c.retransmit_max, None);
        assert_eq!(c.batch_max, 16);
        assert_eq!(c.batch_linger, TimeMs(0));
        assert_eq!(c.pending_updates_max, 1024);
        assert!(!c.mutation.any(), "no check is ablated by default");
    }

    #[test]
    fn mutation_flags_default_off_and_report_any() {
        let flags = MutationFlags::default();
        assert!(!flags.any());
        assert!(MutationFlags {
            skip_predecessor: true,
            ..MutationFlags::default()
        }
        .any());
    }

    #[test]
    fn builder_chains() {
        let c = CoordinatorConfig::new()
            .retransmit_after(TimeMs(50))
            .retransmit_max(TimeMs(800))
            .reject_null_transitions(false)
            .decision_rule(DecisionRule::Majority)
            .run_deadline(TimeMs(5_000))
            .ttp(b2b_crypto::PartyId::new("notary"))
            .sig_cache_capacity(0)
            .replay_window(8)
            .completed_replies_cap(4)
            .batch_max(0)
            .batch_linger(TimeMs(25))
            .pending_updates_max(2);
        assert_eq!(c.ttp, Some(b2b_crypto::PartyId::new("notary")));
        assert_eq!(c.sig_cache_capacity, 0);
        assert_eq!(c.replay_window, 8);
        assert_eq!(c.completed_replies_cap, 4);
        assert_eq!(c.batch_max, 1, "batch_max clamps to at least 1");
        assert_eq!(c.batch_linger, TimeMs(25));
        assert_eq!(c.pending_updates_max, 2);
        assert_eq!(c.retransmit_after, TimeMs(50));
        assert_eq!(c.retransmit_max, Some(TimeMs(800)));
        assert!(!c.reject_null_transitions);
        assert_eq!(c.decision_rule, DecisionRule::Majority);
        assert_eq!(c.run_deadline, Some(TimeMs(5_000)));
    }
}
