//! Misbehaviour detection taxonomy.
//!
//! §4.4 enumerates the subversion attempts the protocol must detect:
//! inconsistent message content, replays from prior runs, omitted and
//! selectively sent messages, null transitions, and tampering with unsigned
//! parts. Every detection is recorded in the non-repudiation log as a
//! `Misbehaviour` evidence record whose payload is the JSON encoding of a
//! [`Misbehaviour`] value.

use crate::ids::{GroupId, RunId, StateId};
use b2b_crypto::PartyId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A detected deviation from the protocol, attributable to `culprit` when
/// signatures make attribution possible.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Misbehaviour {
    /// A message's signature failed verification: either forged traffic or
    /// tampering with signed content in transit.
    BadSignature {
        /// The claimed signer.
        claimed: PartyId,
        /// What kind of message carried the bad signature.
        message: String,
    },
    /// The unsigned body (state or update bytes) does not hash to the value
    /// bound inside the signed proposal — Dolev-Yao tampering with the
    /// unsigned part, detected per §4.4.
    BodyHashMismatch {
        /// The run concerned.
        run: RunId,
    },
    /// The proposer's view of the group differs from ours.
    GroupIdMismatch {
        /// The identifier carried in the message.
        theirs: GroupId,
        /// Our current identifier.
        ours: GroupId,
    },
    /// The proposal's predecessor tuple is not our current agreed state
    /// (invariant 1/3 of §4.2).
    PredecessorMismatch {
        /// The predecessor the proposer claimed.
        theirs: StateId,
        /// Our agreed state.
        ours: StateId,
    },
    /// The proposed sequence number is not greater than the agreed one
    /// (invariant 3 of §4.2).
    SequenceNotGreater {
        /// Proposed sequence number.
        proposed: u64,
        /// Our agreed sequence number.
        agreed: u64,
    },
    /// A proposal tuple already seen was proposed again — a replay from a
    /// prior run (invariant 4 of §4.2).
    ReplayedProposal {
        /// The replayed run label.
        run: RunId,
    },
    /// A proposal to transition to the state we are already in (§4.4:
    /// "any member can detect that the states are equal and can reject a
    /// null state transition").
    NullTransition {
        /// The run concerned.
        run: RunId,
    },
    /// One update inside a batched proposal fails its hash-chain check:
    /// the update's bytes do not hash to the signed link's `update_hash`,
    /// the replayed state after applying it does not hash to the link's
    /// `state_hash`, or the final link disagrees with the proposed tuple.
    /// Because the links sit in the signed part, the forged or stale update
    /// is attributed to the proposal's signer at its exact batch position
    /// (§4.2/§4.4 held per update inside the batch).
    BatchedUpdateMismatch {
        /// The run concerned.
        run: RunId,
        /// Zero-based index of the offending update inside the batch.
        index: usize,
    },
    /// The revealed authenticator in the decide message does not match the
    /// commitment `H(r_P)` from the proposal.
    AuthenticatorMismatch {
        /// The run concerned.
        run: RunId,
    },
    /// Our own response is missing from, or altered in, the aggregated
    /// decide message — evidence of selective sending or tampering.
    ResponseMisrepresented {
        /// The run concerned.
        run: RunId,
    },
    /// The decide message's response set is internally inconsistent
    /// (wrong run, wrong responders, duplicate responders).
    InconsistentDecide {
        /// The run concerned.
        run: RunId,
        /// Description of the inconsistency.
        detail: String,
    },
    /// A membership message came from a party that is not the legitimate
    /// sponsor for the request (§4.5.1).
    IllegitimateSponsor {
        /// Who sent it.
        claimed: PartyId,
        /// Who the sponsor should be.
        expected: PartyId,
    },
    /// A message arrived that no protocol state expects (unknown run,
    /// wrong role, wrong phase).
    UnexpectedMessage {
        /// Description of the message and why it was unexpected.
        detail: String,
    },
}

impl Misbehaviour {
    /// A short stable tag for reports and experiment output.
    pub fn tag(&self) -> &'static str {
        match self {
            Misbehaviour::BadSignature { .. } => "bad-signature",
            Misbehaviour::BodyHashMismatch { .. } => "body-hash-mismatch",
            Misbehaviour::GroupIdMismatch { .. } => "group-id-mismatch",
            Misbehaviour::PredecessorMismatch { .. } => "predecessor-mismatch",
            Misbehaviour::SequenceNotGreater { .. } => "sequence-not-greater",
            Misbehaviour::ReplayedProposal { .. } => "replayed-proposal",
            Misbehaviour::NullTransition { .. } => "null-transition",
            Misbehaviour::BatchedUpdateMismatch { .. } => "batched-update-mismatch",
            Misbehaviour::AuthenticatorMismatch { .. } => "authenticator-mismatch",
            Misbehaviour::ResponseMisrepresented { .. } => "response-misrepresented",
            Misbehaviour::InconsistentDecide { .. } => "inconsistent-decide",
            Misbehaviour::IllegitimateSponsor { .. } => "illegitimate-sponsor",
            Misbehaviour::UnexpectedMessage { .. } => "unexpected-message",
        }
    }
}

impl fmt::Display for Misbehaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_crypto::sha256;

    #[test]
    fn tags_are_unique() {
        let run = RunId(sha256(b"r"));
        let st = StateId {
            seq: 0,
            rand_hash: sha256(b"a"),
            state_hash: sha256(b"b"),
        };
        let gid = GroupId {
            seq: 0,
            rand_hash: sha256(b"a"),
            members_hash: sha256(b"b"),
        };
        let all = vec![
            Misbehaviour::BadSignature {
                claimed: PartyId::new("p"),
                message: "m1".into(),
            },
            Misbehaviour::BodyHashMismatch { run },
            Misbehaviour::GroupIdMismatch {
                theirs: gid,
                ours: gid,
            },
            Misbehaviour::PredecessorMismatch {
                theirs: st,
                ours: st,
            },
            Misbehaviour::SequenceNotGreater {
                proposed: 1,
                agreed: 1,
            },
            Misbehaviour::ReplayedProposal { run },
            Misbehaviour::NullTransition { run },
            Misbehaviour::BatchedUpdateMismatch { run, index: 0 },
            Misbehaviour::AuthenticatorMismatch { run },
            Misbehaviour::ResponseMisrepresented { run },
            Misbehaviour::InconsistentDecide {
                run,
                detail: String::new(),
            },
            Misbehaviour::IllegitimateSponsor {
                claimed: PartyId::new("a"),
                expected: PartyId::new("b"),
            },
            Misbehaviour::UnexpectedMessage {
                detail: String::new(),
            },
        ];
        let mut tags: Vec<_> = all.iter().map(|m| m.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), all.len());
    }

    #[test]
    fn serde_roundtrip() {
        let m = Misbehaviour::ReplayedProposal {
            run: RunId(sha256(b"x")),
        };
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<Misbehaviour>(&json).unwrap(), m);
    }
}
