//! The `B2BObjectController` — the application programmer's interface to
//! configuration, initiation and control of information sharing (§5).
//!
//! The controller wraps a [`Coordinator`] (local or behind a thread) and
//! provides:
//!
//! * **state-change scoping**: [`Controller::enter`] /
//!   [`Controller::leave`] demarcate access to object state, with
//!   [`Controller::examine`], [`Controller::overwrite`] and
//!   [`Controller::update`] indicating the access type. Scopes nest,
//!   "rolling up" a series of changes into a single coordination event;
//!   coordination is initiated at the outermost `leave`.
//! * **communication modes** (§5): in [`Mode::Synchronous`] the calls block
//!   until coordination completes (an error is returned if validation
//!   fails); in [`Mode::DeferredSynchronous`] they return a
//!   [`CoordTicket`] and [`Controller::coord_commit`] waits; in
//!   [`Mode::Asynchronous`] completion is signalled through the
//!   coordinator's event stream (`coordCallback`).
//! * **connection management**: [`Controller::connect`] /
//!   [`Controller::disconnect`] initiate the §4.5 membership protocols.
//!
//! The same controller runs against both network drivers through the
//! [`CoordAccess`] abstraction: [`b2b_net::NodeHandle`] for the threaded
//! transport and [`SimAccess`] for the deterministic simulator.

use crate::coordinator::{ConnectStatus, Coordinator, ObjectFactory, TicketId, TicketState};
use crate::decision::Outcome;
use crate::error::CoordError;
use crate::ids::{ObjectId, RunId, StateId};
use b2b_crypto::PartyId;
use b2b_net::{GroupHandle, NodeCtx, NodeHandle, SimNet};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Uniform access to a [`Coordinator`] regardless of network driver.
pub trait CoordAccess {
    /// Runs a local operation against the coordinator, dispatching any
    /// messages/timers it produces.
    fn with<R>(&self, f: impl FnOnce(&mut Coordinator, &mut NodeCtx) -> R) -> R;

    /// Drives the system until `pred` holds or `timeout` elapses; returns
    /// whether the predicate was satisfied.
    fn wait(&self, timeout: Duration, pred: impl FnMut(&Coordinator) -> bool) -> bool;
}

impl CoordAccess for NodeHandle<Coordinator> {
    fn with<R>(&self, f: impl FnOnce(&mut Coordinator, &mut NodeCtx) -> R) -> R {
        self.invoke(f)
    }

    fn wait(&self, timeout: Duration, mut pred: impl FnMut(&Coordinator) -> bool) -> bool {
        self.wait_until(timeout, |c| pred(c))
    }
}

/// [`CoordAccess`] over one group of the sharded multi-group runtime:
/// the same controller API drives any of the thousands of coordination
/// groups multiplexed onto a fixed worker pool (the `b2b-server` order
/// service runs one controller per HTTP scope session this way).
impl CoordAccess for GroupHandle<Coordinator> {
    fn with<R>(&self, f: impl FnOnce(&mut Coordinator, &mut NodeCtx) -> R) -> R {
        self.invoke(f)
    }

    fn wait(&self, timeout: Duration, mut pred: impl FnMut(&Coordinator) -> bool) -> bool {
        self.wait_until(timeout, |c| pred(c))
    }
}

/// [`CoordAccess`] over the deterministic simulator: waiting *is* running
/// the simulation, so scenarios stay single-threaded and reproducible.
#[derive(Clone)]
pub struct SimAccess {
    net: Rc<RefCell<SimNet<Coordinator>>>,
    id: PartyId,
}

impl SimAccess {
    /// Wraps one simulated node. Create the shared handle once with
    /// [`SimAccess::shared`] and clone per party.
    pub fn new(net: Rc<RefCell<SimNet<Coordinator>>>, id: PartyId) -> SimAccess {
        SimAccess { net, id }
    }

    /// Convenience: moves a simulator into a shareable handle.
    pub fn shared(net: SimNet<Coordinator>) -> Rc<RefCell<SimNet<Coordinator>>> {
        Rc::new(RefCell::new(net))
    }
}

impl CoordAccess for SimAccess {
    fn with<R>(&self, f: impl FnOnce(&mut Coordinator, &mut NodeCtx) -> R) -> R {
        self.net.borrow_mut().invoke(&self.id, f)
    }

    /// Waiting *is* running the simulation. The timeout is interpreted as
    /// a **virtual-time** budget (1 ms wall = 1 ms virtual): without it, a
    /// blocked run whose retransmission timers keep the event queue alive
    /// (e.g. across a partition) would spin this loop forever.
    fn wait(&self, timeout: Duration, mut pred: impl FnMut(&Coordinator) -> bool) -> bool {
        let deadline = {
            let net = self.net.borrow();
            net.now() + b2b_crypto::TimeMs(timeout.as_millis() as u64)
        };
        loop {
            {
                let net = self.net.borrow();
                if pred(net.node(&self.id)) {
                    return true;
                }
                if net.now() >= deadline {
                    return false;
                }
            }
            let stepped = self.net.borrow_mut().step();
            if !stepped {
                let net = self.net.borrow();
                return pred(net.node(&self.id));
            }
        }
    }
}

/// The communication mode of a controller (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Operations block until the relevant coordination completes; an
    /// error is raised if validation fails.
    Synchronous,
    /// Operations return immediately with a ticket;
    /// [`Controller::coord_commit`] blocks until completion.
    DeferredSynchronous,
    /// Operations return immediately; completion is signalled through the
    /// coordinator's `coordCallback` event stream.
    Asynchronous,
}

/// A handle on an in-flight coordination, returned in deferred-synchronous
/// and asynchronous modes.
///
/// Since batched rounds, the handle names a coordinator *ticket* rather
/// than a protocol run: a deferred or asynchronous update may wait in the
/// pending queue and later coalesce with others into one signed round, so
/// the run it rides in is not known at submission time. Use
/// [`Controller::run_of`] to learn the run once dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordTicket {
    /// The coordinator ticket the handle waits on.
    pub ticket: TicketId,
}

/// The observable lifecycle of a ticket, as reported by
/// [`Controller::poll_status`].
///
/// Unlike draining the `coordCallback` event stream (which consumes each
/// completion exactly once), polling a status is **idempotent**: a
/// completed ticket keeps answering with the same terminal status — veto
/// reasons included — for as long as the coordinator retains the outcome.
/// This is what a poll endpoint (the order server's `/tickets/:id`) needs:
/// clients retry, proxies duplicate, and every read must see the same
/// answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TicketStatus {
    /// No such ticket was ever issued by this coordinator.
    Unknown,
    /// Still in flight: waiting in the pending queue (`run: None`) or
    /// riding in a dispatched round (`run: Some(..)`).
    Pending {
        /// The run carrying the update, once dispatched.
        run: Option<RunId>,
    },
    /// The update was validated and installed as the new agreed state.
    Installed {
        /// Identifier of the installed state.
        state: StateId,
    },
    /// The proposal was vetoed; each vetoer states its reason (§4.3).
    Invalidated {
        /// `(party, reason)` for every vetoing member.
        vetoers: Vec<(PartyId, String)>,
    },
    /// Never dispatched (e.g. the update stopped being applicable to the
    /// state the group agreed in the meantime) or aborted by recovery.
    Aborted {
        /// Why the update never took effect.
        reason: String,
    },
}

impl TicketStatus {
    /// Whether the ticket has reached a terminal state (installed,
    /// invalidated or aborted).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, TicketStatus::Pending { .. })
            && !matches!(self, TicketStatus::Unknown)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AccessKind {
    Examine,
    Overwrite,
    Update,
}

/// Deprecated name kept for API-surface compatibility with early drafts;
/// scoping lives directly on [`Controller`].
pub type Scope = ();

/// The per-object controller used by application code.
pub struct Controller<A: CoordAccess> {
    access: A,
    object: ObjectId,
    mode: Mode,
    timeout: Duration,
    depth: u32,
    kind: Option<AccessKind>,
    working: Option<Vec<u8>>,
    pending_update: Option<Vec<u8>>,
}

impl<A: CoordAccess> Controller<A> {
    /// Creates a synchronous-mode controller for `object`.
    pub fn new(access: A, object: ObjectId) -> Controller<A> {
        Controller {
            access,
            object,
            mode: Mode::Synchronous,
            timeout: Duration::from_secs(10),
            depth: 0,
            kind: None,
            working: None,
            pending_update: None,
        }
    }

    /// Selects the communication mode.
    pub fn mode(mut self, mode: Mode) -> Controller<A> {
        self.mode = mode;
        self
    }

    /// Sets the blocking timeout for synchronous operations.
    pub fn timeout(mut self, timeout: Duration) -> Controller<A> {
        self.timeout = timeout;
        self
    }

    /// The object this controller manages.
    pub fn object_id(&self) -> &ObjectId {
        &self.object
    }

    // ---------------------------------------------------------------
    // Connection management
    // ---------------------------------------------------------------

    /// Initiates connection to the object's sharing group via `sponsor`.
    /// In synchronous mode, blocks until admitted or rejected.
    ///
    /// # Errors
    ///
    /// [`CoordError::ConnectionRejected`] on rejection (immediate or by
    /// veto — indistinguishable, §4.5.3), [`CoordError::Timeout`] if no
    /// answer arrives in time, or a registration error.
    pub fn connect(&self, factory: ObjectFactory, sponsor: PartyId) -> Result<(), CoordError> {
        let object = self.object.clone();
        self.access
            .with(move |c, ctx| c.request_connect(object, factory, sponsor, ctx))?;
        if self.mode != Mode::Synchronous {
            return Ok(());
        }
        let object = self.object.clone();
        let done = self.access.wait(self.timeout, move |c| {
            !matches!(c.connect_status(&object), Some(ConnectStatus::Pending))
        });
        if !done {
            return Err(CoordError::Timeout(RunId(b2b_crypto::sha256(b"connect"))));
        }
        let object = self.object.clone();
        let status = self
            .access
            .with(move |c, _| c.connect_status(&object).cloned());
        match status {
            Some(ConnectStatus::Member) => Ok(()),
            _ => Err(CoordError::ConnectionRejected),
        }
    }

    /// Voluntarily leaves the sharing group. In synchronous mode, blocks
    /// until the sponsor's acknowledgement arrives.
    ///
    /// # Errors
    ///
    /// Propagates coordinator errors; [`CoordError::Timeout`] if the ack
    /// does not arrive in time.
    pub fn disconnect(&self) -> Result<(), CoordError> {
        let object = self.object.clone();
        self.access
            .with(move |c, ctx| c.request_disconnect(&object, ctx))?;
        if self.mode != Mode::Synchronous {
            return Ok(());
        }
        let object = self.object.clone();
        let done = self
            .access
            .wait(self.timeout, move |c| !c.is_member(&object));
        if done {
            Ok(())
        } else {
            Err(CoordError::Timeout(RunId(b2b_crypto::sha256(
                b"disconnect",
            ))))
        }
    }

    /// Proposes evicting `subjects`. In synchronous mode, blocks until the
    /// membership no longer contains them (or times out — eviction may be
    /// vetoed by other members).
    ///
    /// # Errors
    ///
    /// Propagates coordinator errors; [`CoordError::Timeout`] when the
    /// eviction has not taken effect in time.
    pub fn evict(&self, subjects: Vec<PartyId>) -> Result<(), CoordError> {
        let object = self.object.clone();
        let subjects2 = subjects.clone();
        self.access
            .with(move |c, ctx| c.request_evict(&object, subjects2, ctx))?;
        if self.mode != Mode::Synchronous {
            return Ok(());
        }
        let object = self.object.clone();
        let done = self.access.wait(self.timeout, move |c| {
            c.members(&object)
                .map(|m| subjects.iter().all(|s| !m.contains(s)))
                .unwrap_or(false)
        });
        if done {
            Ok(())
        } else {
            Err(CoordError::Timeout(RunId(b2b_crypto::sha256(b"evict"))))
        }
    }

    // ---------------------------------------------------------------
    // State access scoping (enter / examine / overwrite / update / leave)
    // ---------------------------------------------------------------

    /// Opens (or nests into) a state-access scope; the outermost `enter`
    /// snapshots the agreed state as the working copy.
    ///
    /// # Errors
    ///
    /// [`CoordError::UnknownObject`] if the object is not coordinated here.
    pub fn enter(&mut self) -> Result<(), CoordError> {
        if self.depth == 0 {
            let object = self.object.clone();
            let state = self
                .access
                .with(move |c, _| c.agreed_state(&object))
                .ok_or_else(|| CoordError::UnknownObject(self.object.clone()))?;
            self.working = Some(state);
            self.kind = None;
            self.pending_update = None;
        }
        self.depth += 1;
        Ok(())
    }

    /// Indicates read-only access in the current scope.
    ///
    /// # Errors
    ///
    /// [`CoordError::ScopeMisuse`] outside a scope.
    pub fn examine(&mut self) -> Result<(), CoordError> {
        self.require_scope()?;
        if self.kind.is_none() {
            self.kind = Some(AccessKind::Examine);
        }
        Ok(())
    }

    /// Indicates that object state is being overwritten in this scope.
    ///
    /// # Errors
    ///
    /// [`CoordError::ScopeMisuse`] outside a scope.
    pub fn overwrite(&mut self) -> Result<(), CoordError> {
        self.require_scope()?;
        self.kind = Some(AccessKind::Overwrite);
        Ok(())
    }

    /// Indicates an update-style change (§4.3.1) carrying `delta` as the
    /// update to propagate instead of the whole state.
    ///
    /// # Errors
    ///
    /// [`CoordError::ScopeMisuse`] outside a scope.
    pub fn update(&mut self, delta: Vec<u8>) -> Result<(), CoordError> {
        self.require_scope()?;
        self.kind = Some(AccessKind::Update);
        self.pending_update = Some(delta);
        Ok(())
    }

    /// The working copy of the object state within the current scope.
    ///
    /// # Errors
    ///
    /// [`CoordError::ScopeMisuse`] outside a scope.
    pub fn state(&self) -> Result<&[u8], CoordError> {
        self.working
            .as_deref()
            .ok_or(CoordError::ScopeMisuse("state() outside enter/leave"))
    }

    /// Replaces the working copy (the object mutation of the paper's
    /// wrapper methods).
    ///
    /// # Errors
    ///
    /// [`CoordError::ScopeMisuse`] outside a scope.
    pub fn set_state(&mut self, state: Vec<u8>) -> Result<(), CoordError> {
        self.require_scope()?;
        self.working = Some(state);
        Ok(())
    }

    /// Closes the scope. At the outermost `leave`, if `overwrite` or
    /// `update` was indicated, state coordination is initiated (implicitly
    /// invoking the §4.3 protocol); `examine`-only scopes coordinate
    /// nothing.
    ///
    /// Returns the ticket of the initiated run, or `None` when no
    /// coordination was needed.
    ///
    /// # Errors
    ///
    /// In synchronous mode, [`CoordError::Invalidated`] when the proposal
    /// was vetoed (the working copy rolls back to the agreed state) and
    /// [`CoordError::Timeout`] when no outcome arrived in time; in all
    /// modes, scope-misuse and coordinator errors.
    pub fn leave(&mut self) -> Result<Option<CoordTicket>, CoordError> {
        self.require_scope()?;
        self.depth -= 1;
        if self.depth > 0 {
            return Ok(None);
        }
        let kind = self.kind.take();
        let working = self.working.take();
        let delta = self.pending_update.take();
        match kind {
            None | Some(AccessKind::Examine) => Ok(None),
            Some(AccessKind::Overwrite) => {
                let state = working.ok_or(CoordError::ScopeMisuse("no working state"))?;
                let object = self.object.clone();
                let ticket = self.access.with(move |c, ctx| {
                    let run = c.propose_overwrite(&object, state, ctx)?;
                    Ok::<_, CoordError>(c.ticket_for_run(run))
                })?;
                self.finish_ticket(ticket)
            }
            Some(AccessKind::Update) => {
                let delta = delta.ok_or(CoordError::ScopeMisuse("no update delta"))?;
                let object = self.object.clone();
                let ticket = match self.mode {
                    // Synchronous callers block for this very round, so
                    // propose directly (unbatched — byte-identical to the
                    // pre-batching wire behaviour).
                    Mode::Synchronous => self.access.with(move |c, ctx| {
                        let run = c.propose_update(&object, delta, ctx)?;
                        Ok::<_, CoordError>(c.ticket_for_run(run))
                    })?,
                    // Deferred and asynchronous callers pipeline: the
                    // update queues and may coalesce with concurrent
                    // submissions into one signed batched round.
                    Mode::DeferredSynchronous | Mode::Asynchronous => self
                        .access
                        .with(move |c, ctx| c.submit_update(&object, delta, ctx))?,
                };
                self.finish_ticket(ticket)
            }
        }
    }

    /// `syncCoord`: coordinates the current object state in one call —
    /// equivalent to `enter(); overwrite(); set_state(state); leave()`.
    ///
    /// # Errors
    ///
    /// As [`Controller::leave`].
    pub fn sync_coord(&mut self, state: Vec<u8>) -> Result<Option<CoordTicket>, CoordError> {
        self.enter()?;
        self.overwrite()?;
        self.set_state(state)?;
        self.leave()
    }

    fn finish_ticket(&self, ticket: TicketId) -> Result<Option<CoordTicket>, CoordError> {
        let ticket = CoordTicket { ticket };
        match self.mode {
            Mode::Synchronous => {
                self.coord_commit(ticket)?;
                Ok(Some(ticket))
            }
            Mode::DeferredSynchronous | Mode::Asynchronous => Ok(Some(ticket)),
        }
    }

    /// Blocks until the ticketed coordination completes
    /// (deferred-synchronous commit; also used internally by synchronous
    /// mode).
    ///
    /// # Errors
    ///
    /// [`CoordError::Invalidated`] if the run was vetoed (or the update
    /// failed before dispatch), [`CoordError::Timeout`] if no outcome
    /// arrived in time.
    pub fn coord_commit(&self, ticket: CoordTicket) -> Result<(), CoordError> {
        let id = ticket.ticket;
        let done = self
            .access
            .wait(self.timeout, move |c| c.outcome_of_ticket(&id).is_some());
        if !done {
            let run = self
                .access
                .with(move |c, _| c.run_of_ticket(&id))
                .unwrap_or(RunId(b2b_crypto::sha256(b"undispatched")));
            return Err(CoordError::Timeout(run));
        }
        let outcome = self
            .access
            .with(move |c, _| c.outcome_of_ticket(&id))
            .expect("outcome present after wait");
        match outcome {
            Outcome::Installed { .. } => Ok(()),
            Outcome::Invalidated { vetoers } => Err(CoordError::Invalidated { vetoers }),
            Outcome::Aborted { reason } => Err(CoordError::Invalidated {
                vetoers: vec![(PartyId::new("<aborted>"), reason)],
            }),
        }
    }

    /// Non-blocking outcome poll for a ticket.
    pub fn poll(&self, ticket: CoordTicket) -> Option<Outcome> {
        let id = ticket.ticket;
        self.access.with(move |c, _| c.outcome_of_ticket(&id))
    }

    /// Non-blocking, **idempotent** status poll for a ticket.
    ///
    /// Where [`Controller::poll`] cannot distinguish "unknown ticket"
    /// from "still queued" from "dispatched but undecided" (all `None`),
    /// this reports the full lifecycle, and a terminal status keeps
    /// being returned on every subsequent poll — with the veto reasons
    /// that previously surfaced only in the evidence log or the
    /// once-only event stream.
    pub fn poll_status(&self, ticket: CoordTicket) -> TicketStatus {
        let id = ticket.ticket;
        self.access.with(move |c, _| match c.ticket_state(&id) {
            None => TicketStatus::Unknown,
            Some(TicketState::Queued) => TicketStatus::Pending { run: None },
            Some(TicketState::Failed(_)) | Some(TicketState::Run(_)) => {
                match c.outcome_of_ticket(&id) {
                    None => TicketStatus::Pending {
                        run: c.run_of_ticket(&id),
                    },
                    Some(Outcome::Installed { state }) => TicketStatus::Installed { state },
                    Some(Outcome::Invalidated { vetoers }) => {
                        TicketStatus::Invalidated { vetoers }
                    }
                    Some(Outcome::Aborted { reason }) => TicketStatus::Aborted { reason },
                }
            }
        })
    }

    /// Blocks until the ticket reaches a terminal status or `timeout`
    /// elapses, then reports it ([`Controller::poll_status`]
    /// semantics). The long-poll primitive: waiting rides the group's
    /// condvar instead of a busy re-poll loop, so a thousand pollers
    /// cost nothing while rounds are in flight. A ticket that is
    /// requeued by the contention-retry path stays non-terminal and
    /// keeps the caller waiting.
    pub fn wait_terminal(&self, ticket: CoordTicket, timeout: Duration) -> TicketStatus {
        let id = ticket.ticket;
        self.access.wait(timeout, move |c| match c.ticket_state(&id) {
            None => true,
            Some(TicketState::Queued) => false,
            Some(TicketState::Failed(_)) => true,
            Some(TicketState::Run(_)) => c.outcome_of_ticket(&id).is_some(),
        });
        self.poll_status(ticket)
    }

    /// The protocol run carrying the ticketed update, once dispatched
    /// (`None` while the update still waits in the pending queue).
    pub fn run_of(&self, ticket: CoordTicket) -> Option<RunId> {
        let id = ticket.ticket;
        self.access.with(move |c, _| c.run_of_ticket(&id))
    }

    /// Blocks until no coordination run is active on the object (or the
    /// timeout elapses). Useful in synchronous mode before starting a
    /// scope: a peer's sync call may return while this replica is still
    /// finishing the same run, and proposing in that window earns a
    /// [`CoordError::Busy`].
    pub fn wait_idle(&self) -> Result<(), CoordError> {
        let object = self.object.clone();
        let idle = self.access.wait(self.timeout, move |c| !c.is_busy(&object));
        if idle {
            Ok(())
        } else {
            Err(CoordError::Busy {
                object: self.object.clone(),
            })
        }
    }

    /// The current agreed state bytes of the object.
    ///
    /// # Errors
    ///
    /// [`CoordError::UnknownObject`] if the object is not coordinated here.
    pub fn current_state(&self) -> Result<Vec<u8>, CoordError> {
        let object = self.object.clone();
        self.access
            .with(move |c, _| c.agreed_state(&object))
            .ok_or_else(|| CoordError::UnknownObject(self.object.clone()))
    }

    /// Drains the coordination events (`coordCallback` stream) — the
    /// asynchronous mode's completion channel.
    pub fn take_events(&self) -> Vec<crate::decision::CoordEvent> {
        self.access.with(|c, _| c.take_events())
    }

    fn require_scope(&self) -> Result<(), CoordError> {
        if self.depth == 0 {
            Err(CoordError::ScopeMisuse("operation outside enter/leave"))
        } else {
            Ok(())
        }
    }
}
