//! Error types for the middleware core.

use crate::ids::{ObjectId, RunId};
use b2b_crypto::PartyId;
use thiserror::Error;

/// Errors returned by coordinator and controller operations.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// The named object is not coordinated at this party.
    #[error("object {0} is not registered at this party")]
    UnknownObject(ObjectId),
    /// An object with this alias is already registered.
    #[error("object {0} is already registered")]
    DuplicateObject(ObjectId),
    /// A coordination request was made while another run is in progress.
    ///
    /// The sponsor "is responsible for blocking new coordination requests
    /// pending decision on any active request" (§4.5.1); recipients apply
    /// the same rule to state runs for consistency.
    #[error("object {object} has an active coordination run")]
    Busy {
        /// The object concerned.
        object: ObjectId,
    },
    /// The proposed state transition was vetoed by one or more parties.
    #[error("state transition invalidated by {vetoers:?}")]
    Invalidated {
        /// The parties that rejected, with their diagnostic reasons.
        vetoers: Vec<(PartyId, String)>,
    },
    /// A connection request was rejected (immediately by the sponsor or by
    /// veto — indistinguishable to the subject, per §4.5.3).
    #[error("connection request rejected by sponsor")]
    ConnectionRejected,
    /// The operation requires group membership this party does not have.
    #[error("party {party} is not a member of the group for {object}")]
    NotMember {
        /// This party.
        party: PartyId,
        /// The object concerned.
        object: ObjectId,
    },
    /// The operation must be performed by the current sponsor.
    #[error("party {party} is not the sponsor (sponsor is {sponsor})")]
    NotSponsor {
        /// This party.
        party: PartyId,
        /// The legitimate sponsor.
        sponsor: PartyId,
    },
    /// The application's update function failed to apply an update.
    #[error("update could not be applied: {0}")]
    UpdateFailed(String),
    /// A controller scope operation was used outside `enter`/`leave`.
    #[error("controller scope misuse: {0}")]
    ScopeMisuse(&'static str),
    /// A synchronous operation timed out waiting for the protocol outcome.
    ///
    /// The paper gives no termination guarantee when parties misbehave
    /// (§4.1); a timeout surfaces the blocked run to the application for
    /// extra-protocol dispute resolution.
    #[error("timed out waiting for outcome of run {0}")]
    Timeout(RunId),
    /// Persistent storage failed.
    #[error("storage failure: {0}")]
    Storage(String),
}
