//! Wire messages of the coordination protocols.
//!
//! Every message separates a **signed part** (a struct with a canonical
//! byte encoding, carried with its signature) from **unsigned parts**
//! (bulk state/update bytes, aggregations of other parties' signed
//! messages). Unsigned bulk data is bound into the signed part by hash, so
//! Dolev-Yao tampering with unsigned bytes is always detectable (§4.4).
//!
//! State coordination (§4.3) is three steps:
//! `m1` [`ProposeMsg`] → `m2` [`RespondMsg`] → `m3` [`DecideMsg`], i.e.
//! `3(n−1)` messages for `n` parties. Connection/disconnection (§4.5) wrap
//! the same propose/respond/decide core with a subject↔sponsor exchange.

use crate::decision::Decision;
use crate::ids::{GroupId, ObjectId, RunId, StateId};
use b2b_crypto::{CachedCanonical, CanonicalEncode, Digest32, Encoder, PartyId, Signature};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// State coordination (§4.3)
// ---------------------------------------------------------------------------

/// One update's link in the hash chain of a batched proposal.
///
/// A batch of `k` updates is one state transition (`seq` advances by one),
/// but the §4.2 chaining obligation holds *per update*: link `i` binds the
/// bytes of update `i` (`update_hash`) and the hash of the state reached by
/// applying updates `0..=i` in order to the agreed state (`state_hash`).
/// Both digests sit in the signed part, so a recipient replaying the batch
/// detects a forged or stale update at its exact index and can attribute it
/// to the proposal's signer (§4.4).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchLink {
    /// `H(u_i)`: hash of the i-th update's bytes.
    pub update_hash: Digest32,
    /// Hash of the state after applying updates `0..=i` to the agreed
    /// state. The last link's `state_hash` must equal the proposed tuple's
    /// state hash.
    pub state_hash: Digest32,
}

impl CanonicalEncode for BatchLink {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(&self.update_hash);
        enc.put_digest(&self.state_hash);
    }
}

/// Whether a proposal overwrites the state, applies an update delta
/// (§4.3.1), or applies an ordered batch of update deltas in one signed
/// round.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProposalKind {
    /// The unsigned body is the complete new state.
    Overwrite,
    /// The unsigned body is an update `u_P`; the signed part carries
    /// `H(u_P)` and the proposed tuple still carries the hash of the state
    /// *after* application, so recipients "can determine that, if the
    /// update is agreed and applied, a consistent new state will result".
    Update {
        /// `H(u_P)`.
        update_hash: Digest32,
    },
    /// The unsigned body is an ordered sequence of updates
    /// (see [`encode_batch_body`]); the signed part carries one
    /// [`BatchLink`] per update so every §4.2 check still runs per update.
    /// The whole batch is one state transition: it installs atomically or
    /// not at all.
    Batch {
        /// Per-update hash chain, in application order.
        links: Vec<BatchLink>,
    },
}

impl CanonicalEncode for ProposalKind {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ProposalKind::Overwrite => enc.put_u8(0),
            ProposalKind::Update { update_hash } => {
                enc.put_u8(1);
                enc.put_digest(update_hash);
            }
            ProposalKind::Batch { links } => {
                enc.put_u8(2);
                enc.put_u64(links.len() as u64);
                for link in links {
                    link.encode(enc);
                }
            }
        }
    }
}

/// Serialises an ordered batch of update byte-strings into one unsigned
/// `m1` body. Length-prefixed (u32 big-endian per update), so update
/// boundaries survive the wire without relying on the updates' own framing.
pub fn encode_batch_body(updates: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = updates.iter().map(|u| 4 + u.len()).sum();
    let mut out = Vec::with_capacity(total);
    for u in updates {
        out.extend_from_slice(&(u.len() as u32).to_be_bytes());
        out.extend_from_slice(u);
    }
    out
}

/// Parses a batched `m1` body back into its ordered updates; `None` for
/// malformed framing (truncated length or trailing garbage).
pub fn decode_batch_body(body: &[u8]) -> Option<Vec<Vec<u8>>> {
    let mut updates = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        if rest.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return None;
        }
        updates.push(rest[..len].to_vec());
        rest = &rest[len..];
    }
    Some(updates)
}

/// The signed part of `m1`: identifies proposer and group, and "specifies
/// the proposed state transition from `t_agreed` to `t_prop`" with the
/// commitment `H(r_P)` to the run authenticator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proposal {
    /// The shared object.
    pub object: ObjectId,
    /// The proposing party `P_P`.
    pub proposer: PartyId,
    /// The proposer's view of the group, `gid_P`.
    pub group: GroupId,
    /// The agreed state this transition starts from (`t_agreed`).
    pub prev: StateId,
    /// The proposed new state tuple (`t_prop`).
    pub proposed: StateId,
    /// Commitment `H(r_P)` to the authenticator revealed in `m3`.
    pub auth_commit: Digest32,
    /// Overwrite or update.
    pub kind: ProposalKind,
}

impl CanonicalEncode for Proposal {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.proposer.encode(enc);
        self.group.encode(enc);
        self.prev.encode(enc);
        self.proposed.encode(enc);
        enc.put_digest(&self.auth_commit);
        self.kind.encode(enc);
    }
}

impl Proposal {
    /// The run label this proposal starts.
    pub fn run_id(&self) -> RunId {
        RunId::from_bytes(&self.canonical_bytes())
    }
}

/// `m1`: signed proposal + unsigned body (state or update bytes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProposeMsg {
    /// The signed part.
    pub proposal: Proposal,
    /// The unsigned body: full state for overwrites, `u_P` for updates.
    pub body: Vec<u8>,
    /// The proposer's signature over the proposal's canonical bytes.
    pub sig: Signature,
    /// Memo of the proposal's canonical encoding: computed on first use,
    /// kept across clones, serialized as `null` (a message decoded off the
    /// wire always re-encodes what was actually received).
    pub memo: CachedCanonical,
}

impl ProposeMsg {
    /// Canonical bytes of the signed proposal, encoded once per message
    /// lifetime.
    pub fn proposal_bytes(&self) -> Arc<[u8]> {
        self.memo.get_or_encode(&self.proposal).0
    }

    /// SHA-256 digest of the proposal's canonical bytes.
    pub fn proposal_digest(&self) -> Digest32 {
        self.memo.get_or_encode(&self.proposal).1
    }

    /// The run label this proposal starts (digest of the signed part),
    /// derived from the memo rather than a fresh encoding.
    pub fn run_id(&self) -> RunId {
        RunId(self.proposal_digest())
    }
}

/// The signed part of `m2`: "a receipt from `R_i` for the proposal and a
/// signed decision on its validity. Inclusion of `t_prop`, `t_agreed` and
/// `gid_i` permits systematic consistency checks."
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// The shared object.
    pub object: ObjectId,
    /// The responding party `R_i`.
    pub responder: PartyId,
    /// The responder's view of the group.
    pub group: GroupId,
    /// The run being responded to (digest of the signed proposal — the
    /// receipt linkage).
    pub run: RunId,
    /// The responder's current agreed state tuple.
    pub prev: StateId,
    /// Echo of the proposed tuple.
    pub proposed: StateId,
    /// The responder's assertion of the integrity (or otherwise) of the
    /// unsigned body with respect to the hash in the signed proposal.
    pub body_ok: bool,
    /// The responder's decision on the validity of the transition.
    pub decision: Decision,
}

impl CanonicalEncode for Response {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.responder.encode(enc);
        self.group.encode(enc);
        self.run.encode(enc);
        self.prev.encode(enc);
        self.proposed.encode(enc);
        enc.put_bool(self.body_ok);
        self.decision.encode(enc);
    }
}

/// `m2`: signed response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RespondMsg {
    /// The signed part.
    pub response: Response,
    /// The responder's signature over the response's canonical bytes.
    pub sig: Signature,
    /// Memo of the response's canonical encoding (see
    /// [`ProposeMsg::memo`]).
    pub memo: CachedCanonical,
}

impl RespondMsg {
    /// Canonical bytes of the signed response, encoded once per message
    /// lifetime.
    pub fn response_bytes(&self) -> Arc<[u8]> {
        self.memo.get_or_encode(&self.response).0
    }

    /// SHA-256 digest of the response's canonical bytes.
    pub fn response_digest(&self) -> Digest32 {
        self.memo.get_or_encode(&self.response).1
    }
}

/// `m3`: "the aggregation of all decisions and of the non-repudiation
/// evidence in the form of signed proposals and responses. Any party can
/// compute the group's decision … `m3` requires no signature since only
/// `P_P` can produce the authenticator `r_P`."
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecideMsg {
    /// The shared object.
    pub object: ObjectId,
    /// The run being decided.
    pub run: RunId,
    /// The revealed authenticator `r_P` (preimage of the proposal's
    /// `auth_commit`).
    pub authenticator: [u8; 32],
    /// Every recipient's signed response.
    pub responses: Vec<RespondMsg>,
}

// ---------------------------------------------------------------------------
// Connection protocol (§4.5.3)
// ---------------------------------------------------------------------------

/// The signed part of the subject's initial connection request.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectRequest {
    /// The object the subject wants to share.
    pub object: ObjectId,
    /// The prospective member `P_{n+1}`.
    pub subject: PartyId,
    /// `H(r_s)`: hash of a random uniquely labelling this request.
    pub nonce_hash: Digest32,
}

impl CanonicalEncode for ConnectRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.subject.encode(enc);
        enc.put_digest(&self.nonce_hash);
    }
}

/// Subject → sponsor: signed connection request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnectRequestMsg {
    /// The signed part.
    pub request: ConnectRequest,
    /// The subject's signature.
    pub sig: Signature,
}

/// The signed part of the sponsor's relay of a connection request to the
/// current membership.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectProposal {
    /// The object.
    pub object: ObjectId,
    /// The sponsoring member.
    pub sponsor: PartyId,
    /// Digest of the subject's signed request (linkage).
    pub request_digest: Digest32,
    /// The subject seeking admission.
    pub subject: PartyId,
    /// The sponsor's view of the current group.
    pub group: GroupId,
    /// The group that would result from admission (`gid_new`).
    pub new_group: GroupId,
    /// The sponsor's current agreed state tuple.
    pub agreed: StateId,
    /// Commitment `H(r_sponsor)` to the decide authenticator.
    pub auth_commit: Digest32,
}

impl CanonicalEncode for ConnectProposal {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.sponsor.encode(enc);
        enc.put_digest(&self.request_digest);
        self.subject.encode(enc);
        self.group.encode(enc);
        self.new_group.encode(enc);
        self.agreed.encode(enc);
        enc.put_digest(&self.auth_commit);
    }
}

impl ConnectProposal {
    /// The run label of this membership run.
    pub fn run_id(&self) -> RunId {
        RunId::from_bytes(&self.canonical_bytes())
    }
}

/// Sponsor → members: the relayed connection proposal (with the subject's
/// original signed request attached for verification).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnectProposeMsg {
    /// The signed part.
    pub proposal: ConnectProposal,
    /// The subject's original request (whose digest the proposal binds).
    pub request: ConnectRequestMsg,
    /// The sponsor's signature over the proposal.
    pub sig: Signature,
}

/// The signed part of a member's response to a membership proposal
/// (connection or disconnection): decision plus the member's signed agreed
/// state tuple, which the welcome uses to let the subject verify the state
/// it receives (§4.5.3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberResponse {
    /// The object.
    pub object: ObjectId,
    /// The responding member.
    pub responder: PartyId,
    /// The membership run being responded to.
    pub run: RunId,
    /// The responder's view of the current group.
    pub group: GroupId,
    /// The responder's current agreed state tuple (signed evidence of the
    /// agreed state at the membership change).
    pub agreed: StateId,
    /// The responder's decision.
    pub decision: Decision,
}

impl CanonicalEncode for MemberResponse {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.responder.encode(enc);
        self.run.encode(enc);
        self.group.encode(enc);
        self.agreed.encode(enc);
        self.decision.encode(enc);
    }
}

/// Member → sponsor: signed membership response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemberRespondMsg {
    /// The signed part.
    pub response: MemberResponse,
    /// The member's signature.
    pub sig: Signature,
}

/// Sponsor → members: aggregated membership decision with the revealed
/// authenticator (no signature needed — only the sponsor holds the
/// preimage).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemberDecideMsg {
    /// The object.
    pub object: ObjectId,
    /// The run being decided.
    pub run: RunId,
    /// The revealed authenticator `r_sponsor`.
    pub authenticator: [u8; 32],
    /// Every polled member's signed response.
    pub responses: Vec<MemberRespondMsg>,
    /// `true` if this decide concerns a connection; `false` for
    /// disconnection/eviction.
    pub connecting: bool,
}

/// The signed part of the sponsor's welcome to an admitted member.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Welcome {
    /// The object.
    pub object: ObjectId,
    /// The membership run that admitted the subject.
    pub run: RunId,
    /// The new group identifier.
    pub group: GroupId,
    /// The member list, in join order (subject last).
    pub members: Vec<PartyId>,
    /// The agreed state tuple the carried state must match.
    pub agreed: StateId,
}

impl CanonicalEncode for Welcome {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.run.encode(enc);
        self.group.encode(enc);
        b2b_crypto::canonical::encode_seq(&self.members, enc);
        self.agreed.encode(enc);
    }
}

/// Sponsor → subject: admission + the current agreed object state, "which
/// can be verified against each of the signed agreed state tuples supplied
/// by members" in the attached decide aggregation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WelcomeMsg {
    /// The signed part.
    pub welcome: Welcome,
    /// The unsigned agreed state bytes (bound by `welcome.agreed`).
    pub state: Vec<u8>,
    /// The aggregated member decisions admitting the subject.
    pub decide: MemberDecideMsg,
    /// The sponsor's signature over the welcome.
    pub sig: Signature,
}

/// The signed part of a sponsor's rejection of a connection request.
///
/// §4.5.3: on veto "the subject learns no more information than in the
/// case of immediate rejection by the sponsor" — both paths produce exactly
/// this message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectReject {
    /// The object.
    pub object: ObjectId,
    /// The sponsor rejecting.
    pub sponsor: PartyId,
    /// Digest of the subject's signed request being rejected.
    pub request_digest: Digest32,
}

impl CanonicalEncode for ConnectReject {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.sponsor.encode(enc);
        enc.put_digest(&self.request_digest);
    }
}

/// Sponsor → subject: signed rejection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnectRejectMsg {
    /// The signed part.
    pub reject: ConnectReject,
    /// The sponsor's signature.
    pub sig: Signature,
}

// ---------------------------------------------------------------------------
// Disconnection protocols (§4.5.4)
// ---------------------------------------------------------------------------

/// The signed part of a disconnection/eviction request.
///
/// For voluntary disconnection the proposer *is* the (single) subject; for
/// eviction the proposer is any member and `subjects` may be a set
/// (subset eviction, §4.5.4).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectRequest {
    /// The object.
    pub object: ObjectId,
    /// The requesting party.
    pub proposer: PartyId,
    /// The member(s) to disconnect.
    pub subjects: Vec<PartyId>,
    /// `true` for eviction (vetoable), `false` for voluntary
    /// disconnection (not vetoable — a leaver could simply stop
    /// cooperating).
    pub eviction: bool,
    /// `H(r)` uniquely labelling the request.
    pub nonce_hash: Digest32,
}

impl CanonicalEncode for DisconnectRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.proposer.encode(enc);
        b2b_crypto::canonical::encode_seq(&self.subjects, enc);
        enc.put_bool(self.eviction);
        enc.put_digest(&self.nonce_hash);
    }
}

/// Proposer → sponsor: signed disconnection request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DisconnectRequestMsg {
    /// The signed part.
    pub request: DisconnectRequest,
    /// The proposer's signature.
    pub sig: Signature,
}

/// The signed part of the sponsor's relay of a disconnection/eviction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectProposal {
    /// The object.
    pub object: ObjectId,
    /// The sponsoring member.
    pub sponsor: PartyId,
    /// Digest of the signed request (linkage).
    pub request_digest: Digest32,
    /// The member(s) leaving.
    pub subjects: Vec<PartyId>,
    /// Eviction or voluntary.
    pub eviction: bool,
    /// The sponsor's view of the current group.
    pub group: GroupId,
    /// The group that would result.
    pub new_group: GroupId,
    /// The sponsor's agreed state tuple.
    pub agreed: StateId,
    /// Commitment to the decide authenticator.
    pub auth_commit: Digest32,
}

impl CanonicalEncode for DisconnectProposal {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.sponsor.encode(enc);
        enc.put_digest(&self.request_digest);
        b2b_crypto::canonical::encode_seq(&self.subjects, enc);
        enc.put_bool(self.eviction);
        self.group.encode(enc);
        self.new_group.encode(enc);
        self.agreed.encode(enc);
        enc.put_digest(&self.auth_commit);
    }
}

impl DisconnectProposal {
    /// The run label of this membership run.
    pub fn run_id(&self) -> RunId {
        RunId::from_bytes(&self.canonical_bytes())
    }
}

/// Sponsor → members: relayed disconnection proposal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DisconnectProposeMsg {
    /// The signed part.
    pub proposal: DisconnectProposal,
    /// The original signed request.
    pub request: DisconnectRequestMsg,
    /// The sponsor's signature.
    pub sig: Signature,
}

/// The signed part of the sponsor's final acknowledgement to a voluntarily
/// departing member: "evidence of the group membership and agreed object
/// state when they disconnected".
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectAck {
    /// The object.
    pub object: ObjectId,
    /// The membership run.
    pub run: RunId,
    /// The sponsor.
    pub sponsor: PartyId,
    /// The departing member.
    pub subject: PartyId,
    /// Group identifier after the departure.
    pub group: GroupId,
    /// The agreed state tuple at departure.
    pub agreed: StateId,
}

impl CanonicalEncode for DisconnectAck {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.run.encode(enc);
        self.sponsor.encode(enc);
        self.subject.encode(enc);
        self.group.encode(enc);
        self.agreed.encode(enc);
    }
}

/// Sponsor → departing subject: signed acknowledgement (also carries the
/// decide aggregation as evidence all members saw the request).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DisconnectAckMsg {
    /// The signed part.
    pub ack: DisconnectAck,
    /// The aggregated member responses.
    pub decide: MemberDecideMsg,
    /// The sponsor's signature.
    pub sig: Signature,
}

/// The signed part of the sponsor's rejection notice to a voluntary leaver
/// whose disconnection run was invalidated.
///
/// Voluntary disconnection cannot be vetoed (§4.5.4), but the run can still
/// fail a *consistency* check at a polled member (group-id or agreed-state
/// mismatch, concurrent run, illegitimate sponsor). Without this notice the
/// leaver's replica would hang in its `Leaving` state until the application
/// intervened; with it, the replica returns to ordinary membership and the
/// leaver may retry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectReject {
    /// The object.
    pub object: ObjectId,
    /// The sponsor rejecting.
    pub sponsor: PartyId,
    /// Digest of the leaver's signed request being rejected (linkage).
    pub request_digest: Digest32,
}

impl CanonicalEncode for DisconnectReject {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.sponsor.encode(enc);
        enc.put_digest(&self.request_digest);
    }
}

/// Sponsor → voluntary leaver: signed rejection of the disconnection run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DisconnectRejectMsg {
    /// The signed part.
    pub reject: DisconnectReject,
    /// The sponsor's signature.
    pub sig: Signature,
}

// ---------------------------------------------------------------------------
// TTP-certified termination (§7 extension)
// ---------------------------------------------------------------------------

/// The signed part of an appeal to the trusted third party over a blocked
/// run (§7: deadlines "require the involvement of a TTP to guarantee that
/// all honest parties terminate with the same view"). Both the proposer
/// and any blocked recipient may appeal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtpResolveRequest {
    /// The object whose run is blocked.
    pub object: ObjectId,
    /// The blocked run.
    pub run: RunId,
    /// The appealing party (the proposer, or a blocked recipient).
    pub appellant: PartyId,
    /// The full member list (join order); the TTP verifies it against the
    /// group identifier's member hash inside the signed proposal.
    pub members: Vec<PartyId>,
}

impl CanonicalEncode for TtpResolveRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.run.encode(enc);
        self.appellant.encode(enc);
        b2b_crypto::canonical::encode_seq(&self.members, enc);
    }
}

/// Appellant → TTP: appeal with the evidence the appellant holds — the
/// signed proposal plus, for the proposer, the responses collected so far.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TtpResolveMsg {
    /// The signed part.
    pub request: TtpResolveRequest,
    /// The original signed proposal of the blocked run.
    pub propose: ProposeMsg,
    /// The responses the appellant holds (proposer: all collected;
    /// recipient: typically only its own).
    pub responses: Vec<RespondMsg>,
    /// The appellant's signature over the request.
    pub sig: Signature,
}

/// The signed part of the TTP's evidence pull from the proposer, issued
/// when a *recipient* appeals: the proposer may hold the complete response
/// set that turns an abort into a certified decision.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtpEvidenceRequest {
    /// The object.
    pub object: ObjectId,
    /// The run under resolution.
    pub run: RunId,
    /// The requesting TTP.
    pub ttp: PartyId,
}

impl CanonicalEncode for TtpEvidenceRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.run.encode(enc);
        self.ttp.encode(enc);
    }
}

/// TTP → proposer: signed evidence pull.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TtpEvidenceRequestMsg {
    /// The signed part.
    pub request: TtpEvidenceRequest,
    /// The TTP's signature.
    pub sig: Signature,
}

/// The signed part of the proposer's evidence reply.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtpEvidence {
    /// The object.
    pub object: ObjectId,
    /// The run.
    pub run: RunId,
    /// The proposer supplying the evidence.
    pub proposer: PartyId,
    /// Digest over the attached response set.
    pub responses_digest: Digest32,
}

impl CanonicalEncode for TtpEvidence {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.run.encode(enc);
        self.proposer.encode(enc);
        enc.put_digest(&self.responses_digest);
    }
}

/// Proposer → TTP: the responses it holds for the run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TtpEvidenceMsg {
    /// The signed part.
    pub evidence: TtpEvidence,
    /// The attached responses.
    pub responses: Vec<RespondMsg>,
    /// The proposer's signature.
    pub sig: Signature,
}

/// What the TTP certifies about a blocked run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TtpVerdict {
    /// The response set was incomplete: the run is certifiably aborted and
    /// every replica keeps (or rolls back to) the agreed state.
    CertifiedAbort,
    /// A complete, unanimous accepting response set was presented: the run
    /// is certifiably valid.
    CertifiedValid,
    /// A complete response set containing at least one veto was presented:
    /// the run is certifiably invalidated.
    CertifiedInvalid,
}

/// The signed part of the TTP's resolution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtpResolution {
    /// The object.
    pub object: ObjectId,
    /// The resolved run.
    pub run: RunId,
    /// The certified verdict.
    pub verdict: TtpVerdict,
    /// Digest over the response set the verdict was derived from (empty
    /// digest for an abort with no responses).
    pub responses_digest: Digest32,
}

impl CanonicalEncode for TtpResolution {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.run.encode(enc);
        enc.put_u8(match self.verdict {
            TtpVerdict::CertifiedAbort => 0,
            TtpVerdict::CertifiedValid => 1,
            TtpVerdict::CertifiedInvalid => 2,
        });
        enc.put_digest(&self.responses_digest);
    }
}

/// Digest binding a resolution to the exact response set it judged.
pub fn responses_digest(responses: &[RespondMsg]) -> Digest32 {
    let mut enc = Encoder::new();
    enc.put_u64(responses.len() as u64);
    for r in responses {
        r.response.encode(&mut enc);
        r.sig.encode(&mut enc);
    }
    b2b_crypto::sha256(&enc.finish())
}

/// TTP → every member: certified resolution of a blocked run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TtpResolutionMsg {
    /// The signed part.
    pub resolution: TtpResolution,
    /// The response set the verdict rests on (recipients re-verify it).
    pub responses: Vec<RespondMsg>,
    /// The TTP's signature over the resolution.
    pub sig: Signature,
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// Every protocol message that can cross the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum WireMsg {
    /// State coordination m1.
    Propose(ProposeMsg),
    /// State coordination m2.
    Respond(RespondMsg),
    /// State coordination m3.
    Decide(DecideMsg),
    /// Connection: subject's request to the sponsor.
    ConnectRequest(ConnectRequestMsg),
    /// Connection: sponsor's relay to members.
    ConnectPropose(ConnectProposeMsg),
    /// Connection/disconnection: member's response to the sponsor.
    MemberRespond(MemberRespondMsg),
    /// Connection/disconnection: sponsor's aggregated decide.
    MemberDecide(MemberDecideMsg),
    /// Connection: sponsor's welcome to the admitted subject.
    Welcome(WelcomeMsg),
    /// Connection: sponsor's rejection to the subject.
    ConnectReject(ConnectRejectMsg),
    /// Disconnection: request to the sponsor.
    DisconnectRequest(DisconnectRequestMsg),
    /// Disconnection: sponsor's relay to members.
    DisconnectPropose(DisconnectProposeMsg),
    /// Disconnection: sponsor's ack to a voluntary leaver.
    DisconnectAck(DisconnectAckMsg),
    /// Disconnection: sponsor's rejection to a voluntary leaver whose run
    /// failed a consistency check at some polled member.
    DisconnectReject(DisconnectRejectMsg),
    /// Termination extension: an appeal to the TTP.
    TtpResolve(TtpResolveMsg),
    /// Termination extension: the TTP pulls evidence from the proposer.
    TtpEvidenceRequest(TtpEvidenceRequestMsg),
    /// Termination extension: the proposer's evidence reply.
    TtpEvidence(TtpEvidenceMsg),
    /// Termination extension: the TTP's certified resolution.
    TtpResolution(TtpResolutionMsg),
}

impl WireMsg {
    /// Serialises for the transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("wire message serialises")
    }

    /// Parses a transport payload; `None` for malformed traffic.
    pub fn from_bytes(bytes: &[u8]) -> Option<WireMsg> {
        serde_json::from_slice(bytes).ok()
    }

    /// A short name for diagnostics and traffic accounting.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WireMsg::Propose(_) => "propose",
            WireMsg::Respond(_) => "respond",
            WireMsg::Decide(_) => "decide",
            WireMsg::ConnectRequest(_) => "connect-request",
            WireMsg::ConnectPropose(_) => "connect-propose",
            WireMsg::MemberRespond(_) => "member-respond",
            WireMsg::MemberDecide(_) => "member-decide",
            WireMsg::Welcome(_) => "welcome",
            WireMsg::ConnectReject(_) => "connect-reject",
            WireMsg::DisconnectRequest(_) => "disconnect-request",
            WireMsg::DisconnectPropose(_) => "disconnect-propose",
            WireMsg::DisconnectAck(_) => "disconnect-ack",
            WireMsg::DisconnectReject(_) => "disconnect-reject",
            WireMsg::TtpResolve(_) => "ttp-resolve",
            WireMsg::TtpEvidenceRequest(_) => "ttp-evidence-request",
            WireMsg::TtpEvidence(_) => "ttp-evidence",
            WireMsg::TtpResolution(_) => "ttp-resolution",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_crypto::{sha256, KeyPair, Signer};

    fn state_id(n: u64) -> StateId {
        StateId {
            seq: n,
            rand_hash: sha256(&n.to_be_bytes()),
            state_hash: sha256(b"state"),
        }
    }

    fn group_id() -> GroupId {
        GroupId {
            seq: 0,
            rand_hash: sha256(b"g"),
            members_hash: sha256(b"m"),
        }
    }

    fn proposal() -> Proposal {
        Proposal {
            object: ObjectId::new("obj"),
            proposer: PartyId::new("p"),
            group: group_id(),
            prev: state_id(0),
            proposed: state_id(1),
            auth_commit: sha256(b"auth"),
            kind: ProposalKind::Overwrite,
        }
    }

    #[test]
    fn run_id_changes_with_any_field() {
        let base = proposal();
        let mut other = proposal();
        other.proposed.seq = 2;
        assert_ne!(base.run_id(), other.run_id());
        let mut other2 = proposal();
        other2.auth_commit = sha256(b"different");
        assert_ne!(base.run_id(), other2.run_id());
    }

    #[test]
    fn proposal_kind_canonical_disambiguates() {
        let over = ProposalKind::Overwrite.canonical_bytes();
        let upd = ProposalKind::Update {
            update_hash: sha256(b"u"),
        }
        .canonical_bytes();
        assert_ne!(over, upd);
        // A singleton batch is canonically distinct from an update with the
        // same hash (tag byte differs), and batches differ by link content
        // and order.
        let batch1 = ProposalKind::Batch {
            links: vec![BatchLink {
                update_hash: sha256(b"u"),
                state_hash: sha256(b"s1"),
            }],
        };
        assert_ne!(upd, batch1.canonical_bytes());
        let link = |u: &[u8], s: &[u8]| BatchLink {
            update_hash: sha256(u),
            state_hash: sha256(s),
        };
        let ab = ProposalKind::Batch {
            links: vec![link(b"a", b"s1"), link(b"b", b"s2")],
        };
        let ba = ProposalKind::Batch {
            links: vec![link(b"b", b"s2"), link(b"a", b"s1")],
        };
        assert_ne!(ab.canonical_bytes(), ba.canonical_bytes());
        let mut tampered_state = ab.clone();
        if let ProposalKind::Batch { links } = &mut tampered_state {
            links[1].state_hash = sha256(b"forged");
        }
        assert_ne!(ab.canonical_bytes(), tampered_state.canonical_bytes());
    }

    #[test]
    fn batch_body_roundtrips_and_rejects_malformed() {
        let updates = vec![b"".to_vec(), b"one".to_vec(), vec![0u8; 300]];
        let body = encode_batch_body(&updates);
        assert_eq!(decode_batch_body(&body).unwrap(), updates);
        assert_eq!(decode_batch_body(&[]).unwrap(), Vec::<Vec<u8>>::new());
        // Truncated length prefix and truncated payload are both malformed.
        assert!(decode_batch_body(&body[..body.len() - 1]).is_none());
        assert!(decode_batch_body(&[0, 0]).is_none());
    }

    #[test]
    fn wire_roundtrip_propose() {
        let kp = KeyPair::generate_from_seed(1);
        let p = proposal();
        let msg = WireMsg::Propose(ProposeMsg {
            sig: kp.sign(&p.canonical_bytes()),
            proposal: p,
            body: b"state".to_vec(),
            memo: Default::default(),
        });
        let bytes = msg.to_bytes();
        assert_eq!(WireMsg::from_bytes(&bytes).unwrap(), msg);
        assert_eq!(msg.kind_name(), "propose");
    }

    #[test]
    fn malformed_wire_bytes_rejected() {
        assert!(WireMsg::from_bytes(b"garbage").is_none());
        assert!(WireMsg::from_bytes(b"").is_none());
    }

    #[test]
    fn response_canonical_covers_decision() {
        let r = Response {
            object: ObjectId::new("obj"),
            responder: PartyId::new("r"),
            group: group_id(),
            run: RunId(sha256(b"run")),
            prev: state_id(0),
            proposed: state_id(1),
            body_ok: true,
            decision: Decision::accept(),
        };
        let mut rejected = r.clone();
        rejected.decision = Decision::reject("no");
        assert_ne!(r.canonical_bytes(), rejected.canonical_bytes());
        let mut bad_body = r.clone();
        bad_body.body_ok = false;
        assert_ne!(r.canonical_bytes(), bad_body.canonical_bytes());
    }

    #[test]
    fn welcome_canonical_covers_members_order() {
        let w = Welcome {
            object: ObjectId::new("obj"),
            run: RunId(sha256(b"run")),
            group: group_id(),
            members: vec![PartyId::new("a"), PartyId::new("b")],
            agreed: state_id(3),
        };
        let mut swapped = w.clone();
        swapped.members.reverse();
        assert_ne!(w.canonical_bytes(), swapped.canonical_bytes());
    }

    #[test]
    fn wire_roundtrip_all_membership_kinds() {
        let kp = KeyPair::generate_from_seed(2);
        let req = ConnectRequest {
            object: ObjectId::new("obj"),
            subject: PartyId::new("s"),
            nonce_hash: sha256(b"n"),
        };
        let req_msg = ConnectRequestMsg {
            sig: kp.sign(&req.canonical_bytes()),
            request: req,
        };
        let msg = WireMsg::ConnectRequest(req_msg.clone());
        assert_eq!(WireMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);

        let dreq = DisconnectRequest {
            object: ObjectId::new("obj"),
            proposer: PartyId::new("p"),
            subjects: vec![PartyId::new("x"), PartyId::new("y")],
            eviction: true,
            nonce_hash: sha256(b"n2"),
        };
        let dmsg = WireMsg::DisconnectRequest(DisconnectRequestMsg {
            sig: kp.sign(&dreq.canonical_bytes()),
            request: dreq,
        });
        assert_eq!(WireMsg::from_bytes(&dmsg.to_bytes()).unwrap(), dmsg);
        assert_eq!(dmsg.kind_name(), "disconnect-request");
    }

    #[test]
    fn ttp_messages_roundtrip_and_bind() {
        let kp = KeyPair::generate_from_seed(3);
        let resolution = TtpResolution {
            object: ObjectId::new("obj"),
            run: RunId(sha256(b"run")),
            verdict: TtpVerdict::CertifiedAbort,
            responses_digest: responses_digest(&[]),
        };
        let msg = WireMsg::TtpResolution(TtpResolutionMsg {
            sig: kp.sign(&resolution.canonical_bytes()),
            resolution,
            responses: vec![],
        });
        assert_eq!(WireMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        assert_eq!(msg.kind_name(), "ttp-resolution");

        // Verdicts are canonically distinct.
        let mk = |verdict| TtpResolution {
            object: ObjectId::new("obj"),
            run: RunId(sha256(b"run")),
            verdict,
            responses_digest: responses_digest(&[]),
        };
        assert_ne!(
            mk(TtpVerdict::CertifiedAbort).canonical_bytes(),
            mk(TtpVerdict::CertifiedValid).canonical_bytes()
        );
        assert_ne!(
            mk(TtpVerdict::CertifiedValid).canonical_bytes(),
            mk(TtpVerdict::CertifiedInvalid).canonical_bytes()
        );
    }

    #[test]
    fn responses_digest_binds_set_and_order() {
        let kp = KeyPair::generate_from_seed(4);
        let mk = |who: &str, accept: bool| {
            let response = Response {
                object: ObjectId::new("obj"),
                responder: PartyId::new(who),
                group: group_id(),
                run: RunId(sha256(b"run")),
                prev: state_id(0),
                proposed: state_id(1),
                body_ok: true,
                decision: if accept {
                    Decision::accept()
                } else {
                    Decision::reject("no")
                },
            };
            RespondMsg {
                sig: kp.sign(&response.canonical_bytes()),
                response,
                memo: Default::default(),
            }
        };
        let a = mk("a", true);
        let b = mk("b", true);
        assert_eq!(
            responses_digest(&[a.clone(), b.clone()]),
            responses_digest(&[a.clone(), b.clone()])
        );
        assert_ne!(
            responses_digest(&[a.clone(), b.clone()]),
            responses_digest(&[b.clone(), a.clone()]),
            "order is part of the digest"
        );
        assert_ne!(
            responses_digest(std::slice::from_ref(&a)),
            responses_digest(&[a.clone(), b]),
            "set size is part of the digest"
        );
        // Flipping a decision changes the digest even with the same sig
        // bytes structure.
        let a_flipped = mk("a", false);
        assert_ne!(
            responses_digest(std::slice::from_ref(&a)),
            responses_digest(std::slice::from_ref(&a_flipped))
        );
    }

    #[test]
    fn disconnect_request_canonical_covers_eviction_flag() {
        let mk = |ev: bool| DisconnectRequest {
            object: ObjectId::new("obj"),
            proposer: PartyId::new("p"),
            subjects: vec![PartyId::new("x")],
            eviction: ev,
            nonce_hash: sha256(b"n"),
        };
        assert_ne!(mk(true).canonical_bytes(), mk(false).canonical_bytes());
    }
}
