//! TTP-certified termination (§7 future work, implemented as an opt-in
//! extension).
//!
//! "The imposition of deadlines requires the involvement of a TTP to
//! guarantee that all honest parties terminate with the same view of
//! agreed state. In effect, a TTP would provide certified abort of a
//! protocol run unless a complete set of responses were available (in
//! which case the TTP would provide a certified decision derived from
//! those responses)."
//!
//! Implementation:
//!
//! * Any blocked party — the proposer with an incomplete response set, or
//!   a recipient that never saw the decide — appeals at its deadline with
//!   the evidence it holds ([`TtpResolveMsg`]).
//! * On a **proposer** appeal the TTP verifies the signed proposal, the
//!   member list against the group identifier's member hash, and every
//!   response signature; a complete set yields a certified decision,
//!   anything less a certified abort.
//! * On a **recipient** appeal the TTP first *pulls evidence from the
//!   proposer* ([`TtpEvidenceRequestMsg`]) — the proposer may have
//!   completed the run and hold the full set, in which case the
//!   resolution is a certified decision and no replica diverges. If the
//!   proposer stays silent past the TTP's own deadline, the run is
//!   certifiably aborted.
//! * Resolutions are cached per run and sent to **every member**, so all
//!   honest parties terminate with the same view; later appeals for the
//!   same run replay the cached certificate.

use crate::decision::{CoordEventKind, Outcome, Verdict};
use crate::detect::Misbehaviour;
use crate::ids::{members_digest, ObjectId, RunId};
use crate::messages::{
    responses_digest, RespondMsg, TtpEvidence, TtpEvidenceMsg, TtpEvidenceRequest,
    TtpEvidenceRequestMsg, TtpResolution, TtpResolutionMsg, TtpResolveMsg, TtpResolveRequest,
    TtpVerdict, WireMsg,
};
use crate::replica::ActiveRun;
use crate::Coordinator;
use b2b_crypto::{CanonicalEncode, PartyId, TimeMs};
use b2b_evidence::EvidenceKind;
use b2b_net::NodeCtx;

/// How long the TTP waits for the proposer's evidence before certifying an
/// abort on a recipient appeal.
const TTP_EVIDENCE_TIMEOUT: TimeMs = TimeMs(1_000);

/// A run the TTP has dealt with (or is dealing with).
pub(crate) struct TtpCase {
    /// The certified resolution, once issued (replayed on later appeals).
    pub(crate) resolution: Option<TtpResolutionMsg>,
    /// An evidence pull in flight after a recipient appeal.
    pub(crate) pending: Option<PendingTtpCase>,
}

/// The context of a recipient appeal awaiting proposer evidence.
pub(crate) struct PendingTtpCase {
    pub(crate) object: ObjectId,
    pub(crate) members: Vec<PartyId>,
    pub(crate) proposer: PartyId,
    /// The proposed tuple from the (verified, signed) proposal; response
    /// echoes are checked against it.
    pub(crate) proposed: crate::ids::StateId,
}

impl Coordinator {
    /// Appeals to the TTP over a deadline-blocked run, from whichever role
    /// this party holds in it.
    pub(crate) fn appeal_to_ttp(
        &mut self,
        oid: &ObjectId,
        run: RunId,
        ttp: PartyId,
        ctx: &mut NodeCtx,
    ) {
        let Some(rep) = self.replicas.get(oid) else {
            return;
        };
        let (propose, responses) = match &rep.active {
            Some(ActiveRun::Proposer(pr)) if pr.run == run => (
                pr.propose.clone(),
                pr.responses.values().cloned().collect::<Vec<_>>(),
            ),
            Some(ActiveRun::Recipient(rr)) if rr.run == run => {
                (rr.propose.clone(), vec![rr.my_response.clone()])
            }
            _ => return,
        };
        let request = TtpResolveRequest {
            object: oid.clone(),
            run,
            appellant: self.me.clone(),
            members: rep.members.clone(),
        };
        let sig = self.signer.sign(&request.canonical_bytes());
        let msg = TtpResolveMsg {
            propose,
            responses,
            request,
            sig,
        };
        self.log_evidence(
            EvidenceKind::TtpAbort,
            oid,
            &run.to_hex(),
            self.me.clone(),
            msg.request.canonical_bytes(),
            Some(msg.sig.clone()),
            ctx.now(),
        );
        self.send_wire(&ttp, &WireMsg::TtpResolve(msg), ctx);
    }

    /// TTP side: handle an appeal. Any coordinator answers appeals — the
    /// appellants chose whom they appointed, and members only accept
    /// resolutions signed by their configured TTP.
    pub(crate) fn on_ttp_resolve(&mut self, from: &PartyId, msg: TtpResolveMsg, ctx: &mut NodeCtx) {
        let now = ctx.now();
        let oid = msg.request.object.clone();
        let run = msg.request.run;
        let run_hex = run.to_hex();

        let appeal_ok = from == &msg.request.appellant
            && self
                .verify_for(
                    &msg.request.appellant,
                    &msg.request.canonical_bytes(),
                    &msg.sig,
                )
                .is_ok()
            && msg.propose.proposal.run_id() == run
            && msg.propose.proposal.object == oid
            && self
                .verify_for(
                    &msg.propose.proposal.proposer,
                    &msg.propose.proposal.canonical_bytes(),
                    &msg.propose.sig,
                )
                .is_ok()
            && members_digest(&msg.request.members) == msg.propose.proposal.group.members_hash
            && msg.request.members.contains(&msg.request.appellant)
            && msg.request.members.contains(&msg.propose.proposal.proposer);
        if !appeal_ok {
            self.log_misbehaviour(
                &oid,
                &run_hex,
                Misbehaviour::BadSignature {
                    claimed: msg.request.appellant.clone(),
                    message: "ttp-resolve".into(),
                },
                now,
            );
            return;
        }

        // A cached resolution settles any later appeal identically.
        if let Some(case) = self.ttp_cases.get(&run) {
            if let Some(resolution) = case.resolution.clone() {
                self.broadcast_resolution(&msg.request.members, resolution, ctx);
                return;
            }
            if case.pending.is_some() {
                return; // evidence pull already in flight
            }
        }

        let proposer = msg.propose.proposal.proposer.clone();
        if msg.request.appellant == proposer {
            // Proposer appeal: certify from the presented set.
            let verdict = self.ttp_verdict(
                &msg.request.members,
                &proposer,
                run,
                &oid,
                msg.propose.proposal.proposed,
                &msg.responses,
            );
            self.certify_and_broadcast(
                &oid,
                run,
                verdict,
                &msg.responses,
                &msg.request.members,
                ctx,
            );
        } else {
            // Recipient appeal: pull the proposer's evidence first.
            self.ttp_cases.insert(
                run,
                TtpCase {
                    resolution: None,
                    pending: Some(PendingTtpCase {
                        object: oid.clone(),
                        members: msg.request.members.clone(),
                        proposer: proposer.clone(),
                        proposed: msg.propose.proposal.proposed,
                    }),
                },
            );
            let request = TtpEvidenceRequest {
                object: oid,
                run,
                ttp: self.me.clone(),
            };
            let sig = self.signer.sign(&request.canonical_bytes());
            self.send_wire(
                &proposer,
                &WireMsg::TtpEvidenceRequest(TtpEvidenceRequestMsg { request, sig }),
                ctx,
            );
            let timer = self.next_timer;
            self.next_timer += 1;
            self.ttp_timers.insert(timer, run);
            ctx.set_timer(timer, TTP_EVIDENCE_TIMEOUT);
        }
    }

    /// Proposer side: the TTP pulls the response set for a run.
    pub(crate) fn on_ttp_evidence_request(
        &mut self,
        from: &PartyId,
        msg: TtpEvidenceRequestMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.request.object.clone();
        let run = msg.request.run;
        if from != &msg.request.ttp
            || self
                .verify_for(&msg.request.ttp, &msg.request.canonical_bytes(), &msg.sig)
                .is_err()
        {
            self.log_misbehaviour(
                &oid,
                &run.to_hex(),
                Misbehaviour::BadSignature {
                    claimed: msg.request.ttp.clone(),
                    message: "ttp-evidence-request".into(),
                },
                now,
            );
            return;
        }
        // Answer with whatever we hold: an active run's responses, or the
        // response set inside a completed run's decide.
        let responses: Vec<RespondMsg> = match self.replicas.get(&oid) {
            Some(rep) => match (&rep.active, rep.completed_reply(&run)) {
                (Some(ActiveRun::Proposer(pr)), _) if pr.run == run => {
                    pr.responses.values().cloned().collect()
                }
                (_, Some(WireMsg::Decide(d))) => d.responses,
                _ => Vec::new(),
            },
            None => Vec::new(),
        };
        let evidence = TtpEvidence {
            object: oid,
            run,
            proposer: self.me.clone(),
            responses_digest: responses_digest(&responses),
        };
        let sig = self.signer.sign(&evidence.canonical_bytes());
        self.send_wire(
            from,
            &WireMsg::TtpEvidence(TtpEvidenceMsg {
                evidence,
                responses,
                sig,
            }),
            ctx,
        );
    }

    /// TTP side: the proposer's evidence arrives for a pending case.
    pub(crate) fn on_ttp_evidence(
        &mut self,
        from: &PartyId,
        msg: TtpEvidenceMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let run = msg.evidence.run;
        let Some(case) = self.ttp_cases.get(&run) else {
            return;
        };
        let Some(pending) = &case.pending else {
            return;
        };
        if case.resolution.is_some() {
            return;
        }
        let (object, members, proposer, proposed) = (
            pending.object.clone(),
            pending.members.clone(),
            pending.proposer.clone(),
            pending.proposed,
        );
        if from != &proposer
            || msg.evidence.proposer != proposer
            || msg.evidence.responses_digest != responses_digest(&msg.responses)
            || self
                .verify_for(&proposer, &msg.evidence.canonical_bytes(), &msg.sig)
                .is_err()
        {
            self.log_misbehaviour(
                &object,
                &run.to_hex(),
                Misbehaviour::BadSignature {
                    claimed: proposer,
                    message: "ttp-evidence".into(),
                },
                now,
            );
            return;
        }
        let verdict = self.ttp_verdict(&members, &proposer, run, &object, proposed, &msg.responses);
        self.certify_and_broadcast(&object, run, verdict, &msg.responses, &members, ctx);
    }

    /// TTP side: the evidence pull timed out — certify an abort.
    pub(crate) fn on_ttp_timer(&mut self, run: RunId, ctx: &mut NodeCtx) {
        let Some(case) = self.ttp_cases.get(&run) else {
            return;
        };
        if case.resolution.is_some() {
            return;
        }
        let Some(pending) = &case.pending else {
            return;
        };
        let (object, members) = (pending.object.clone(), pending.members.clone());
        self.certify_and_broadcast(&object, run, TtpVerdict::CertifiedAbort, &[], &members, ctx);
    }

    /// Computes the verdict a response set supports: a complete verified
    /// set certifies the decision it implies; anything else aborts.
    fn ttp_verdict(
        &self,
        members: &[PartyId],
        proposer: &PartyId,
        run: RunId,
        object: &ObjectId,
        proposed: crate::ids::StateId,
        responses: &[RespondMsg],
    ) -> TtpVerdict {
        let expected: std::collections::BTreeSet<&PartyId> =
            members.iter().filter(|m| *m != proposer).collect();
        let mut seen: std::collections::BTreeSet<&PartyId> = Default::default();
        for r in responses {
            if r.response.run != run
                || &r.response.object != object
                || r.response.proposed != proposed
                || !expected.contains(&r.response.responder)
                || !seen.insert(&r.response.responder)
                || self
                    .verify_for(&r.response.responder, &r.response.canonical_bytes(), &r.sig)
                    .is_err()
            {
                return TtpVerdict::CertifiedAbort;
            }
        }
        if seen.len() != expected.len() {
            TtpVerdict::CertifiedAbort
        } else if responses
            .iter()
            .all(|r| r.response.decision.verdict == Verdict::Accept && r.response.body_ok)
        {
            TtpVerdict::CertifiedValid
        } else {
            TtpVerdict::CertifiedInvalid
        }
    }

    fn certify_and_broadcast(
        &mut self,
        object: &ObjectId,
        run: RunId,
        verdict: TtpVerdict,
        responses: &[RespondMsg],
        members: &[PartyId],
        ctx: &mut NodeCtx,
    ) {
        let kept: Vec<RespondMsg> = if verdict == TtpVerdict::CertifiedAbort {
            Vec::new()
        } else {
            responses.to_vec()
        };
        let resolution = TtpResolution {
            object: object.clone(),
            run,
            verdict,
            responses_digest: responses_digest(&kept),
        };
        let sig = self.signer.sign(&resolution.canonical_bytes());
        self.log_evidence(
            EvidenceKind::TtpAbort,
            object,
            &run.to_hex(),
            self.me.clone(),
            resolution.canonical_bytes(),
            Some(sig.clone()),
            ctx.now(),
        );
        let msg = TtpResolutionMsg {
            resolution,
            responses: kept,
            sig,
        };
        self.ttp_cases.insert(
            run,
            TtpCase {
                resolution: Some(msg.clone()),
                pending: None,
            },
        );
        self.broadcast_resolution(members, msg, ctx);
    }

    fn broadcast_resolution(
        &mut self,
        members: &[PartyId],
        resolution: TtpResolutionMsg,
        ctx: &mut NodeCtx,
    ) {
        let wire = WireMsg::TtpResolution(resolution);
        for member in members {
            self.send_wire(member, &wire, ctx);
        }
    }

    /// Member side: accept a certified resolution from the appointed TTP
    /// and terminate the blocked run accordingly.
    pub(crate) fn on_ttp_resolution(
        &mut self,
        from: &PartyId,
        msg: TtpResolutionMsg,
        ctx: &mut NodeCtx,
    ) {
        let now = ctx.now();
        let oid = msg.resolution.object.clone();
        let run = msg.resolution.run;
        let run_hex = run.to_hex();

        // Only resolutions signed by the TTP this party appointed count.
        let Some(ttp) = self.config.ttp.clone() else {
            return;
        };
        if from != &ttp
            || self
                .verify_for(&ttp, &msg.resolution.canonical_bytes(), &msg.sig)
                .is_err()
            || msg.resolution.responses_digest != responses_digest(&msg.responses)
        {
            self.log_misbehaviour(
                &oid,
                &run_hex,
                Misbehaviour::BadSignature {
                    claimed: ttp,
                    message: "ttp-resolution".into(),
                },
                now,
            );
            return;
        }
        if self.outcomes.contains_key(&run) {
            return; // already terminated (e.g. the decide arrived after all)
        }
        let Some(rep) = self.replicas.get_mut(&oid) else {
            return;
        };
        let in_run = matches!(
            &rep.active,
            Some(ActiveRun::Proposer(pr)) if pr.run == run
        ) || matches!(
            &rep.active,
            Some(ActiveRun::Recipient(rr)) if rr.run == run
        );
        if !in_run {
            return;
        }

        let outcome = match msg.resolution.verdict {
            TtpVerdict::CertifiedAbort => {
                let agreed = rep.agreed_state.clone();
                rep.object.apply_state(&agreed);
                rep.active = None;
                Outcome::Aborted {
                    reason: "TTP-certified abort".into(),
                }
            }
            TtpVerdict::CertifiedValid => {
                let pending = match rep.active.take() {
                    Some(ActiveRun::Proposer(pr)) => {
                        Some((pr.propose.proposal.proposed, pr.new_state))
                    }
                    Some(ActiveRun::Recipient(rr)) => rr
                        .pending_state
                        .clone()
                        .map(|st| (rr.propose.proposal.proposed, st)),
                    _ => None,
                };
                match pending {
                    Some((id, state)) => {
                        rep.object.apply_state(&state);
                        rep.agreed = id;
                        rep.agreed_state = state;
                        Outcome::Installed { state: id }
                    }
                    None => Outcome::Aborted {
                        reason: "TTP certified valid but no local body".into(),
                    },
                }
            }
            TtpVerdict::CertifiedInvalid => {
                let agreed = rep.agreed_state.clone();
                rep.object.apply_state(&agreed);
                rep.active = None;
                let vetoers = msg
                    .responses
                    .iter()
                    .filter(|r| !r.response.decision.is_accept() || !r.response.body_ok)
                    .map(|r| {
                        (
                            r.response.responder.clone(),
                            r.response
                                .decision
                                .reason
                                .clone()
                                .unwrap_or_else(|| "rejected".into()),
                        )
                    })
                    .collect();
                Outcome::Invalidated { vetoers }
            }
        };
        self.log_evidence(
            EvidenceKind::TtpAbort,
            &oid,
            &run_hex,
            from.clone(),
            msg.resolution.canonical_bytes(),
            Some(msg.sig.clone()),
            now,
        );
        if outcome.is_installed() {
            self.checkpoint_evidence(&oid, run, now);
        }
        self.persist(&oid);
        self.outcomes.insert(run, outcome.clone());
        self.emit(&oid, run, CoordEventKind::Completed { outcome }, now);
        self.pump_queue(&oid, ctx);
    }
}
