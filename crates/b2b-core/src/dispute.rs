//! Extra-protocol dispute resolution.
//!
//! §4.1: the protocol "is designed to generate the evidence necessary for
//! application-level resolution" and "if necessary, this evidence can be
//! used in extra-protocol arbitration to resolve disputes". The
//! [`Arbiter`] is that arbitration made executable: given a party's
//! non-repudiation log, it rules on claims about state validity.
//!
//! The key §4.1 guarantee this module demonstrates: *"no party can
//! misrepresent the validity of object state, either by claiming that an
//! invalid (vetoed) state is valid or that a valid (unanimously agreed)
//! state is invalid"*. A validity claim is upheld only on a complete set
//! of verified, accepting, signed responses from every other group member;
//! a veto claim is upheld on any verified signed rejection.

use crate::decision::Verdict;
use crate::ids::{members_digest, ObjectId, RunId, StateId};
use crate::messages::DecideMsg;
use b2b_crypto::{CanonicalEncode, KeyRing, PartyId};
use b2b_evidence::{EvidenceKind, EvidenceStore};
use serde::{Deserialize, Serialize};

/// A claim brought before the arbiter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Claim {
    /// `proposer` claims that `state` of `object` was unanimously agreed
    /// by the group `members` (join order).
    StateValid {
        /// The object concerned.
        object: ObjectId,
        /// The party that proposed the state.
        proposer: PartyId,
        /// The full group membership at the time, in join order.
        members: Vec<PartyId>,
        /// The state tuple claimed valid.
        state: StateId,
    },
    /// A party claims that run `run` on `object` was vetoed.
    StateVetoed {
        /// The object concerned.
        object: ObjectId,
        /// The run claimed vetoed.
        run: RunId,
    },
}

/// The arbiter's ruling on a claim.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ruling {
    /// The evidence supports the claim; the listed log sequence numbers
    /// carry the supporting records.
    Upheld {
        /// Supporting evidence record sequence numbers.
        evidence: Vec<u64>,
    },
    /// The submitted log does not support the claim.
    Rejected {
        /// Why the claim fails.
        reason: String,
    },
}

impl Ruling {
    /// Returns `true` for an upheld ruling.
    pub fn is_upheld(&self) -> bool {
        matches!(self, Ruling::Upheld { .. })
    }
}

/// An offline arbiter working purely from submitted non-repudiation logs.
#[derive(Clone, Debug)]
pub struct Arbiter {
    ring: KeyRing,
}

impl Arbiter {
    /// Creates an arbiter trusting `ring` for every party's keys.
    pub fn new(ring: KeyRing) -> Arbiter {
        Arbiter { ring }
    }

    /// Rules on `claim` against the evidence in `store`.
    pub fn judge(&self, claim: &Claim, store: &dyn EvidenceStore) -> Ruling {
        match claim {
            Claim::StateValid {
                object,
                proposer,
                members,
                state,
            } => self.judge_state_valid(object, proposer, members, state, store),
            Claim::StateVetoed { object, run } => self.judge_state_vetoed(object, run, store),
        }
    }

    fn decide_records(
        &self,
        object: &ObjectId,
        store: &dyn EvidenceStore,
    ) -> Vec<(u64, DecideMsg)> {
        store
            .records()
            .into_iter()
            .filter(|r| r.kind == EvidenceKind::StateDecide && r.object == object.as_str())
            .filter_map(|r| {
                serde_json::from_slice::<DecideMsg>(&r.payload)
                    .ok()
                    .map(|d| (r.seq, d))
            })
            .collect()
    }

    fn judge_state_valid(
        &self,
        object: &ObjectId,
        proposer: &PartyId,
        members: &[PartyId],
        state: &StateId,
        store: &dyn EvidenceStore,
    ) -> Ruling {
        if !members.contains(proposer) {
            return Ruling::Rejected {
                reason: "claimed proposer is not in the claimed membership".into(),
            };
        }
        let expected: std::collections::BTreeSet<&PartyId> =
            members.iter().filter(|m| *m != proposer).collect();
        if expected.is_empty() {
            return Ruling::Rejected {
                reason: "a singleton group cannot evidence multi-party agreement".into(),
            };
        }
        let members_hash = members_digest(members);

        for (seq, decide) in self.decide_records(object, store) {
            let mut seen: std::collections::BTreeSet<&PartyId> = Default::default();
            let all_ok = decide.responses.iter().all(|r| {
                r.response.run == decide.run
                    && r.response.proposed == *state
                    && r.response.body_ok
                    && r.response.decision.verdict == Verdict::Accept
                    && r.response.group.members_hash == members_hash
                    && expected.contains(&r.response.responder)
                    && seen.insert(&r.response.responder)
                    && self
                        .ring
                        .verify_for(&r.response.responder, &r.response.canonical_bytes(), &r.sig)
                        .is_ok()
            });
            if all_ok && seen.len() == expected.len() {
                return Ruling::Upheld {
                    evidence: vec![seq],
                };
            }
        }
        Ruling::Rejected {
            reason: "no complete set of verified accepting responses found".into(),
        }
    }

    fn judge_state_vetoed(
        &self,
        object: &ObjectId,
        run: &RunId,
        store: &dyn EvidenceStore,
    ) -> Ruling {
        // A verified signed rejection in the run — either inside a logged
        // decide aggregation or as a directly logged response — upholds
        // the veto claim.
        for (seq, decide) in self.decide_records(object, store) {
            if decide.run != *run {
                continue;
            }
            let vetoed = decide.responses.iter().any(|r| {
                r.response.run == *run
                    && (r.response.decision.verdict == Verdict::Reject || !r.response.body_ok)
                    && self
                        .ring
                        .verify_for(&r.response.responder, &r.response.canonical_bytes(), &r.sig)
                        .is_ok()
            });
            if vetoed {
                return Ruling::Upheld {
                    evidence: vec![seq],
                };
            }
        }
        Ruling::Rejected {
            reason: "no verified rejecting response found for the run".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Decision;
    use crate::ids::GroupId;
    use crate::messages::{RespondMsg, Response};
    use b2b_crypto::{sha256, KeyPair, Signer, TimeMs};
    use b2b_evidence::{EvidenceRecord, MemStore};

    struct Fixture {
        ring: KeyRing,
        keys: Vec<(PartyId, KeyPair)>,
        object: ObjectId,
        members: Vec<PartyId>,
        group: GroupId,
        state: StateId,
        run: RunId,
    }

    fn fixture() -> Fixture {
        let names = ["a", "b", "c"];
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for (i, n) in names.iter().enumerate() {
            let kp = KeyPair::generate_from_seed(i as u64 + 1);
            ring.register(PartyId::new(*n), kp.public_key());
            keys.push((PartyId::new(*n), kp));
        }
        let members: Vec<PartyId> = names.iter().map(|n| PartyId::new(*n)).collect();
        let group = GroupId {
            seq: 0,
            rand_hash: sha256(b"g"),
            members_hash: members_digest(&members),
        };
        Fixture {
            ring,
            keys,
            object: ObjectId::new("obj"),
            members,
            group,
            state: StateId {
                seq: 1,
                rand_hash: sha256(b"r"),
                state_hash: sha256(b"new"),
            },
            run: RunId(sha256(b"run")),
        }
    }

    fn response(f: &Fixture, who: usize, decision: Decision) -> RespondMsg {
        let (party, kp) = &f.keys[who];
        let response = Response {
            object: f.object.clone(),
            responder: party.clone(),
            group: f.group,
            run: f.run,
            prev: StateId {
                seq: 0,
                rand_hash: sha256(b"p"),
                state_hash: sha256(b"old"),
            },
            proposed: f.state,
            body_ok: true,
            decision,
        };
        let sig = kp.sign(&response.canonical_bytes());
        RespondMsg {
            response,
            sig,
            memo: Default::default(),
        }
    }

    fn log_decide(store: &MemStore, f: &Fixture, responses: Vec<RespondMsg>) {
        let decide = DecideMsg {
            object: f.object.clone(),
            run: f.run,
            authenticator: [9u8; 32],
            responses,
        };
        store
            .append(EvidenceRecord::new(
                b2b_evidence::EvidenceKind::StateDecide,
                f.object.as_str(),
                f.run.to_hex(),
                f.keys[0].0.clone(),
                serde_json::to_vec(&decide).unwrap(),
                None,
                None,
                TimeMs(0),
            ))
            .unwrap();
    }

    #[test]
    fn valid_claim_upheld_on_complete_accepts() {
        let f = fixture();
        let store = MemStore::new();
        log_decide(
            &store,
            &f,
            vec![
                response(&f, 1, Decision::accept()),
                response(&f, 2, Decision::accept()),
            ],
        );
        let arbiter = Arbiter::new(f.ring.clone());
        let claim = Claim::StateValid {
            object: f.object.clone(),
            proposer: f.members[0].clone(),
            members: f.members.clone(),
            state: f.state,
        };
        assert!(arbiter.judge(&claim, &store).is_upheld());
    }

    #[test]
    fn vetoed_state_cannot_be_claimed_valid() {
        let f = fixture();
        let store = MemStore::new();
        log_decide(
            &store,
            &f,
            vec![
                response(&f, 1, Decision::accept()),
                response(&f, 2, Decision::reject("no")),
            ],
        );
        let arbiter = Arbiter::new(f.ring.clone());
        let valid_claim = Claim::StateValid {
            object: f.object.clone(),
            proposer: f.members[0].clone(),
            members: f.members.clone(),
            state: f.state,
        };
        assert!(!arbiter.judge(&valid_claim, &store).is_upheld());
        // …but the veto claim is upheld by the same log.
        let veto_claim = Claim::StateVetoed {
            object: f.object.clone(),
            run: f.run,
        };
        assert!(arbiter.judge(&veto_claim, &store).is_upheld());
    }

    #[test]
    fn incomplete_response_set_rejected() {
        let f = fixture();
        let store = MemStore::new();
        log_decide(&store, &f, vec![response(&f, 1, Decision::accept())]);
        let arbiter = Arbiter::new(f.ring.clone());
        let claim = Claim::StateValid {
            object: f.object.clone(),
            proposer: f.members[0].clone(),
            members: f.members.clone(),
            state: f.state,
        };
        assert!(!arbiter.judge(&claim, &store).is_upheld());
    }

    #[test]
    fn forged_response_cannot_support_validity() {
        let f = fixture();
        let store = MemStore::new();
        // Party 2's "response" signed with party 1's key: forgery.
        let mut forged = response(&f, 1, Decision::accept());
        forged.response.responder = f.members[2].clone();
        log_decide(
            &store,
            &f,
            vec![response(&f, 1, Decision::accept()), forged],
        );
        let arbiter = Arbiter::new(f.ring.clone());
        let claim = Claim::StateValid {
            object: f.object.clone(),
            proposer: f.members[0].clone(),
            members: f.members.clone(),
            state: f.state,
        };
        assert!(!arbiter.judge(&claim, &store).is_upheld());
    }

    #[test]
    fn valid_state_cannot_be_claimed_vetoed() {
        let f = fixture();
        let store = MemStore::new();
        log_decide(
            &store,
            &f,
            vec![
                response(&f, 1, Decision::accept()),
                response(&f, 2, Decision::accept()),
            ],
        );
        let arbiter = Arbiter::new(f.ring.clone());
        let claim = Claim::StateVetoed {
            object: f.object.clone(),
            run: f.run,
        };
        assert!(!arbiter.judge(&claim, &store).is_upheld());
    }

    #[test]
    fn singleton_group_claims_rejected() {
        let f = fixture();
        let store = MemStore::new();
        let arbiter = Arbiter::new(f.ring.clone());
        let claim = Claim::StateValid {
            object: f.object.clone(),
            proposer: f.members[0].clone(),
            members: vec![f.members[0].clone()],
            state: f.state,
        };
        assert!(!arbiter.judge(&claim, &store).is_upheld());
    }
}
