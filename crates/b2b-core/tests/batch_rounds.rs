//! Pipelined coordination rounds: `submit_update` queues application
//! updates and the coordinator coalesces up to `batch_max` of them into
//! **one** signed round (one canonical digest, one signature, one
//! multicast, one evidence record). These tests pin the §4.2/§4.4
//! obligations *per update inside the batch*: hash-chain verification,
//! exact-index attribution of a forged update, per-update app vetoes, and
//! the equivalence of a batch of one with a direct `propose_update`.

mod common;

use b2b_core::messages::{decode_batch_body, encode_batch_body, ProposalKind, WireMsg};
use b2b_core::{
    CoordError, Coordinator, CoordinatorConfig, Misbehaviour, ObjectId, Outcome, TicketState,
};
use b2b_crypto::{PartyId, TimeMs};
use b2b_net::intruder::{FnIntruder, InterceptAction};
use b2b_net::FaultPlan;
use b2b_telemetry::{names, RingRecorder, Telemetry};
use common::*;
use std::sync::Arc;

/// Reliable-layer frame header: kind(1) + epoch(8) + seq(8) + trace(17).
const FRAME_HEADER: usize = 34;

fn peek(raw: &[u8]) -> Option<WireMsg> {
    if raw.len() <= FRAME_HEADER || raw[0] != 0 {
        return None;
    }
    WireMsg::from_bytes(&raw[FRAME_HEADER..])
}

fn replace_body(raw: &[u8], msg: &WireMsg) -> Vec<u8> {
    let mut out = raw[..FRAME_HEADER].to_vec();
    out.extend_from_slice(&msg.to_bytes());
    out
}

fn entry(s: &str) -> Vec<u8> {
    serde_json::to_vec(&s.to_string()).unwrap()
}

fn entries(state: &[u8]) -> Vec<String> {
    serde_json::from_slice(state).unwrap()
}

#[test]
fn concurrent_deferred_updates_coalesce_into_one_signed_round() {
    let telemetry = Telemetry::default();
    let mut cluster = Cluster::with_config_and_telemetry(
        3,
        301,
        CoordinatorConfig::default(),
        FaultPlan::new(),
        vec![telemetry.clone()],
    );
    cluster.setup_object("log", append_log_factory);
    let before = telemetry.metrics().snapshot();

    // Five updates submitted back-to-back while the first round is in
    // flight: the first dispatches immediately (linger is 0), the other
    // four queue behind the active run and flush as one batched round.
    let oid = ObjectId::new("log");
    let tickets = cluster.net.invoke(&party(0), move |c, ctx| {
        (0..5)
            .map(|i| c.submit_update(&oid, entry(&format!("e{i}")), ctx).unwrap())
            .collect::<Vec<_>>()
    });
    cluster.run();

    let after = telemetry.metrics().snapshot();
    let rounds = after.counter(names::ROUNDS_STARTED) - before.counter(names::ROUNDS_STARTED);
    assert_eq!(rounds, 2, "1 singleton + 1 batch of 4");
    assert_eq!(
        after.counter(names::ROUNDS_COALESCED),
        3,
        "4 updates in one round save 3"
    );
    let occupancy = after.histogram(names::BATCH_OCCUPANCY).expect("observed");
    assert_eq!(occupancy.count, 2);
    assert_eq!(occupancy.sum, 5, "5 updates across 2 rounds");

    // Every ticket resolved to an installing run, and all parties agree on
    // the full ordered log.
    for t in &tickets {
        let outcome = cluster
            .net
            .node(&party(0))
            .outcome_of_ticket(t)
            .expect("resolved");
        assert!(outcome.is_installed(), "{t:?}: {outcome:?}");
    }
    let expected: Vec<String> = (0..5).map(|i| format!("e{i}")).collect();
    for who in 0..3 {
        assert_eq!(entries(&cluster.state(who, "log")), expected);
        assert!(cluster.net.node(&party(who)).detected().is_empty());
    }
    // The two tickets of the same batch share one run.
    let run_of = |t| cluster.net.node(&party(0)).run_of_ticket(t).unwrap();
    assert_ne!(run_of(&tickets[0]), run_of(&tickets[1]));
    assert_eq!(run_of(&tickets[1]), run_of(&tickets[4]));
}

#[test]
fn batch_linger_gathers_updates_into_a_single_round() {
    let telemetry = Telemetry::default();
    let config = CoordinatorConfig::default().batch_linger(TimeMs(40));
    let mut cluster = Cluster::with_config_and_telemetry(
        3,
        302,
        config,
        FaultPlan::new(),
        vec![telemetry.clone()],
    );
    cluster.setup_object("log", append_log_factory);
    let before = telemetry.metrics().snapshot();

    let oid = ObjectId::new("log");
    let queued = cluster.net.invoke(&party(0), move |c, ctx| {
        for i in 0..3 {
            c.submit_update(&oid, entry(&format!("l{i}")), ctx).unwrap();
        }
        c.pending_update_count(&ObjectId::new("log"))
    });
    assert_eq!(queued, 3, "all three linger in the queue");

    cluster.run();
    let after = telemetry.metrics().snapshot();
    assert_eq!(
        after.counter(names::ROUNDS_STARTED) - before.counter(names::ROUNDS_STARTED),
        1,
        "the linger timer flushes all three as one round"
    );
    assert_eq!(after.counter(names::ROUNDS_COALESCED), 2);
    let expected: Vec<String> = (0..3).map(|i| format!("l{i}")).collect();
    for who in 0..3 {
        assert_eq!(entries(&cluster.state(who, "log")), expected);
    }
}

#[test]
fn full_queue_reaches_batch_max_and_flushes_without_waiting_for_linger() {
    // With a long linger but batch_max=2, the second submission fills the
    // batch and dispatches immediately.
    let telemetry = Telemetry::default();
    let config = CoordinatorConfig::default()
        .batch_linger(TimeMs(600_000))
        .batch_max(2);
    let mut cluster = Cluster::with_config_and_telemetry(
        2,
        303,
        config,
        FaultPlan::new(),
        vec![telemetry.clone()],
    );
    cluster.setup_object("log", append_log_factory);

    let oid = ObjectId::new("log");
    cluster.net.invoke(&party(0), move |c, ctx| {
        c.submit_update(&oid, entry("a"), ctx).unwrap();
        assert_eq!(c.pending_update_count(&ObjectId::new("log")), 1);
        c.submit_update(&ObjectId::new("log"), entry("b"), ctx)
            .unwrap();
        assert_eq!(
            c.pending_update_count(&ObjectId::new("log")),
            0,
            "reaching batch_max dispatches without waiting for the timer"
        );
    });
    cluster.run();
    assert_eq!(entries(&cluster.state(1, "log")), vec!["a", "b"]);
}

#[test]
fn pending_queue_backpressure_returns_busy() {
    // Satellite regression: unbounded queueing replaced by a bounded queue
    // with a typed error. Two updates fit; the third bounces with `Busy`
    // and nothing about the queued work is disturbed.
    let config = CoordinatorConfig::default()
        .batch_linger(TimeMs(50))
        .pending_updates_max(2);
    let mut cluster = Cluster::with_config(2, 304, config, FaultPlan::new());
    cluster.setup_object("log", append_log_factory);

    let oid = ObjectId::new("log");
    let third = cluster.net.invoke(&party(0), move |c, ctx| {
        c.submit_update(&oid, entry("x"), ctx).unwrap();
        c.submit_update(&ObjectId::new("log"), entry("y"), ctx)
            .unwrap();
        c.submit_update(&ObjectId::new("log"), entry("z"), ctx)
    });
    match third {
        Err(CoordError::Busy { object }) => assert_eq!(object, ObjectId::new("log")),
        other => panic!("expected Busy backpressure, got {other:?}"),
    }
    cluster.run();
    assert_eq!(entries(&cluster.state(1, "log")), vec!["x", "y"]);
}

#[test]
fn forged_update_inside_batch_is_detected_attributed_and_rejected() {
    // §4.4 per update inside the batch: the intruder swaps one update in
    // the unsigned batch body. The signed per-update hash chain pins the
    // forgery to its exact index; the recipient vetoes the whole round and
    // no partial state is installed anywhere.
    let config = CoordinatorConfig::default().batch_linger(TimeMs(30));
    let mut cluster = Cluster::with_config(2, 305, config, FaultPlan::new());
    cluster.setup_object("log", append_log_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Propose(mut m))
                if matches!(m.proposal.kind, ProposalKind::Batch { .. }) =>
            {
                let mut updates = decode_batch_body(&m.body).expect("batch body decodes");
                updates[1] = entry("forged-entry");
                m.body = encode_batch_body(&updates);
                InterceptAction::Replace(replace_body(raw, &WireMsg::Propose(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));

    let oid = ObjectId::new("log");
    let tickets = cluster.net.invoke(&party(0), move |c, ctx| {
        (0..3)
            .map(|i| c.submit_update(&oid, entry(&format!("g{i}")), ctx).unwrap())
            .collect::<Vec<_>>()
    });
    cluster.run();

    // The recipient attributed the mismatch to batch index 1 …
    let hit = cluster
        .net
        .node(&party(1))
        .detected()
        .iter()
        .any(|m| matches!(m, Misbehaviour::BatchedUpdateMismatch { index, .. } if *index == 1));
    assert!(hit, "expected batched-update-mismatch at index 1");
    // … vetoed with the index in the diagnostic …
    let outcome = cluster
        .net
        .node(&party(0))
        .outcome_of_ticket(&tickets[0])
        .expect("resolved");
    match outcome {
        Outcome::Invalidated { vetoers } => {
            assert_eq!(vetoers[0].0, party(1));
            assert!(
                vetoers[0].1.contains("batch[1]"),
                "diagnostic names the offending index: {}",
                vetoers[0].1
            );
        }
        other => panic!("expected invalidation, got {other:?}"),
    }
    // … and neither party installed anything from the poisoned batch.
    for who in 0..2 {
        assert!(entries(&cluster.state(who, "log")).is_empty());
    }
}

#[test]
fn inapplicable_update_fails_its_ticket_without_sinking_the_batch() {
    let config = CoordinatorConfig::default().batch_linger(TimeMs(30));
    let mut cluster = Cluster::with_config(2, 306, config, FaultPlan::new());
    cluster.setup_object("log", append_log_factory);

    let oid = ObjectId::new("log");
    let (good1, bad, good2) = cluster.net.invoke(&party(0), move |c, ctx| {
        let g1 = c.submit_update(&oid, entry("ok-1"), ctx).unwrap();
        // Not JSON: AppendLog::apply_update rejects it at flush time.
        let b = c
            .submit_update(&ObjectId::new("log"), b"\xff\xfe not json".to_vec(), ctx)
            .unwrap();
        let g2 = c
            .submit_update(&ObjectId::new("log"), entry("ok-2"), ctx)
            .unwrap();
        (g1, b, g2)
    });
    cluster.run();

    let node = cluster.net.node(&party(0));
    assert!(node.outcome_of_ticket(&good1).unwrap().is_installed());
    assert!(node.outcome_of_ticket(&good2).unwrap().is_installed());
    match node.ticket_state(&bad) {
        Some(TicketState::Failed(reason)) => {
            assert!(reason.contains("not applicable"), "{reason}");
        }
        other => panic!("expected failed ticket, got {other:?}"),
    }
    match node.outcome_of_ticket(&bad) {
        Some(Outcome::Aborted { .. }) => {}
        other => panic!("failed ticket reports as aborted, got {other:?}"),
    }
    assert_eq!(entries(&cluster.state(1, "log")), vec!["ok-1", "ok-2"]);
}

/// Runs one submission through `submit_update` (queue → flush-of-one) and
/// an identical scenario through `propose_update`, with flight recorders:
/// a batch of one must be *byte-identical* on the wire and in the causal
/// DAG to the direct, pre-batching proposal path.
#[test]
fn singleton_flush_is_trace_identical_to_direct_propose() {
    let run_one = |submit: bool| {
        let recorders: Vec<Arc<RingRecorder>> =
            (0..2).map(|_| Arc::new(RingRecorder::new(4096))).collect();
        let telemetry: Vec<Telemetry> = recorders
            .iter()
            .map(|r| Telemetry::with_sink(r.clone() as Arc<dyn b2b_telemetry::TraceSink>))
            .collect();
        let mut cluster = Cluster::with_config_and_telemetry(
            2,
            307,
            CoordinatorConfig::default(),
            FaultPlan::new(),
            telemetry,
        );
        cluster.setup_object("log", append_log_factory);
        let oid = ObjectId::new("log");
        cluster.net.invoke(&party(0), move |c, ctx| {
            if submit {
                c.submit_update(&oid, entry("solo"), ctx).unwrap();
            } else {
                c.propose_update(&oid, entry("solo"), ctx).unwrap();
            }
        });
        cluster.run();
        let traces: Vec<String> = recorders.iter().map(|r| r.render()).collect();
        (traces, cluster.state(1, "log"))
    };
    let (traces_direct, state_direct) = run_one(false);
    let (traces_submitted, state_submitted) = run_one(true);
    assert_eq!(state_direct, state_submitted);
    assert_eq!(
        traces_direct, traces_submitted,
        "a flush of one must leave the identical causal trace as propose_update"
    );
}

/// Satellite pin: the *same script* executed unbatched (batch_max=1) and
/// batched (batch_max=8) reaches the same final state with zero §4.4
/// detections on every party, and each round's causal DAG keeps the same
/// propose→respond→decide shape — batching changes how many rounds run,
/// never what a round looks like or what detection sees.
#[test]
fn batched_and_unbatched_scripts_agree_on_state_and_detection() {
    let run_script = |batch_max: usize| {
        let recorder = Arc::new(RingRecorder::new(16_384));
        let telemetry = Telemetry::with_sink(recorder.clone());
        let config = CoordinatorConfig::default()
            .batch_max(batch_max)
            .batch_linger(TimeMs(25));
        let mut cluster = Cluster::with_config_and_telemetry(
            3,
            308,
            config,
            FaultPlan::new(),
            vec![telemetry.clone(), telemetry.clone(), telemetry.clone()],
        );
        cluster.setup_object("log", append_log_factory);
        let oid = ObjectId::new("log");
        cluster.net.invoke(&party(0), move |c, ctx| {
            for i in 0..8 {
                c.submit_update(&oid, entry(&format!("s{i}")), ctx).unwrap();
            }
        });
        cluster.run();
        let detections: usize = (0..3)
            .map(|i| cluster.net.node(&party(i)).detected().len())
            .sum();
        let dags: Vec<String> = b2b_telemetry::assemble(&recorder.events())
            .iter()
            .map(|t| t.canonical_dag())
            .collect();
        (cluster.state(0, "log"), detections, dags)
    };

    let (state_k1, det_k1, dags_k1) = run_script(1);
    let (state_k8, det_k8, dags_k8) = run_script(8);

    let expected: Vec<String> = (0..8).map(|i| format!("s{i}")).collect();
    assert_eq!(entries(&state_k1), expected);
    assert_eq!(state_k1, state_k8, "same agreed bytes at k=1 and k=8");
    assert_eq!(det_k1, 0);
    assert_eq!(det_k8, 0, "batching must not trip §4.4 detection");

    // k=1 runs the script as eight rounds, k=8 as one — but every
    // state-round DAG has the same canonical shape (the round structure is
    // batch-size invariant). State-round DAG shapes form a set of size 1.
    let state_shapes = |dags: &[String]| {
        dags.iter()
            .filter(|d| d.contains("state_run"))
            .cloned()
            .collect::<std::collections::BTreeSet<_>>()
    };
    let shapes_k1 = state_shapes(&dags_k1);
    let shapes_k8 = state_shapes(&dags_k8);
    assert!(!shapes_k1.is_empty());
    assert_eq!(
        shapes_k1, shapes_k8,
        "per-round causal DAG shape is identical whether a round carries 1 or 8 updates"
    );
}

/// The same batched script over the deterministic simulator and over real
/// TCP loopback sockets: identical agreed state, zero detections, and the
/// batched round reconstructs the same canonical causal DAG on both
/// fabrics.
#[test]
fn batched_round_parity_sim_vs_tcp() {
    use b2b_crypto::{KeyPair, KeyRing, Signer};

    let n = 3;
    let config = CoordinatorConfig::default().batch_linger(TimeMs(25));

    // --- sim fabric ---
    let sim_recorder = Arc::new(RingRecorder::new(16_384));
    let sim_tel = Telemetry::with_sink(sim_recorder.clone());
    let mut cluster = Cluster::with_config_and_telemetry(
        n,
        309,
        config.clone(),
        FaultPlan::new(),
        vec![sim_tel.clone(), sim_tel.clone(), sim_tel.clone()],
    );
    cluster.setup_object("log", append_log_factory);
    let oid = ObjectId::new("log");
    cluster.net.invoke(&party(0), move |c, ctx| {
        for i in 0..6 {
            c.submit_update(&oid, entry(&format!("p{i}")), ctx).unwrap();
        }
    });
    cluster.run();
    let sim_state = cluster.state(0, "log");
    let sim_detections: usize = (0..n)
        .map(|i| cluster.net.node(&party(i)).detected().len())
        .sum();

    // --- tcp loopback fabric ---
    let tcp_recorder = Arc::new(RingRecorder::new(16_384));
    let tcp_tel = Telemetry::with_sink(tcp_recorder.clone());
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for i in 0..n {
        let kp = KeyPair::generate_from_seed(1000 + i as u64);
        ring.register(party(i), kp.public_key());
        keys.push(kp);
    }
    let nodes: Vec<Coordinator> = keys
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            Coordinator::builder(party(i), kp)
                .ring(ring.clone())
                .config(config.clone())
                .seed(309 + i as u64)
                .telemetry(tcp_tel.clone())
                .build()
        })
        .collect();
    let net = b2b_net::tcp::TcpNet::spawn_loopback(nodes).expect("loopback sockets");
    net.handle(&party(0)).invoke(|c, _| {
        c.register_object(ObjectId::new("log"), Box::new(append_log_factory))
            .unwrap();
    });
    for i in 1..n {
        let sponsor = party(i - 1);
        net.handle(&party(i)).invoke(move |c, ctx| {
            c.request_connect(
                ObjectId::new("log"),
                Box::new(append_log_factory),
                sponsor,
                ctx,
            )
            .unwrap();
        });
        let joined = net
            .handle(&party(i))
            .wait_until(std::time::Duration::from_secs(10), |c| {
                c.is_member(&ObjectId::new("log"))
            });
        assert!(joined, "org{i} failed to join over tcp");
    }
    net.handle(&party(0)).invoke(|c, ctx| {
        for i in 0..6 {
            c.submit_update(&ObjectId::new("log"), entry(&format!("p{i}")), ctx)
                .unwrap();
        }
    });
    let expected: Vec<String> = (0..6).map(|i| format!("p{i}")).collect();
    for i in 0..n {
        let expect = expected.clone();
        let converged =
            net.handle(&party(i))
                .wait_until(std::time::Duration::from_secs(10), move |c| {
                    c.agreed_state(&ObjectId::new("log"))
                        .map(|s| entries(&s) == expect)
                        .unwrap_or(false)
                });
        assert!(converged, "org{i} did not converge over tcp");
    }
    let tcp_state = net
        .handle(&party(0))
        .read(|c| c.agreed_state(&ObjectId::new("log")).unwrap());
    let tcp_detections: usize = (0..n)
        .map(|i| net.handle(&party(i)).read(|c| c.detected().len()))
        .sum();
    net.shutdown();

    assert_eq!(entries(&sim_state), expected);
    assert_eq!(sim_state, tcp_state, "same agreed bytes on both fabrics");
    assert_eq!(sim_detections, 0);
    assert_eq!(tcp_detections, 0);

    // The batched rounds' causal DAGs: same canonical shapes on both
    // fabrics (trace ids are content-derived, so shape comparison needs no
    // id translation).
    let shapes = |events: &[b2b_telemetry::TraceEvent]| {
        b2b_telemetry::assemble(events)
            .iter()
            .map(|t| t.canonical_dag())
            .filter(|d| d.contains("state_run"))
            .collect::<std::collections::BTreeSet<_>>()
    };
    let sim_shapes = shapes(&sim_recorder.events());
    let tcp_shapes = shapes(&tcp_recorder.events());
    assert!(!sim_shapes.is_empty());
    assert_eq!(
        sim_shapes, tcp_shapes,
        "sim and tcp reconstruct the same causal DAG for the batched rounds"
    );
}

/// Group-commit alignment (§4.4 non-repudiation): a batch of `k` updates
/// is ONE protocol round, so the proposer's append-only log gains exactly
/// one `StatePropose` and one `StateDecide` record for it — not `k` — and
/// each recipient logs exactly one `StateRespond`. The evidence log grows
/// with rounds, not with application updates.
#[test]
fn a_batched_round_appends_one_evidence_record_per_protocol_step() {
    use b2b_evidence::{EvidenceKind, EvidenceStore};

    let mut cluster = Cluster::with_config(3, 307, CoordinatorConfig::default(), FaultPlan::new());
    cluster.setup_object("log", append_log_factory);

    // 1 singleton round + 1 batched round of 4 (same shape as the
    // coalescing test above).
    let oid = ObjectId::new("log");
    let tickets = cluster.net.invoke(&party(0), move |c, ctx| {
        (0..5)
            .map(|i| c.submit_update(&oid, entry(&format!("e{i}")), ctx).unwrap())
            .collect::<Vec<_>>()
    });
    cluster.run();

    let proposer_records = cluster.net.node(&party(0)).evidence().records();
    let count = |kind: EvidenceKind| proposer_records.iter().filter(|r| r.kind == kind).count();
    assert_eq!(
        count(EvidenceKind::StatePropose),
        2,
        "2 rounds, not 5 updates"
    );
    assert_eq!(count(EvidenceKind::StateDecide), 2);

    // The batch run specifically: one record per protocol step per party.
    let batch_run = cluster
        .net
        .node(&party(0))
        .run_of_ticket(&tickets[1])
        .unwrap()
        .to_hex();
    let batch_records = cluster
        .net
        .node(&party(0))
        .evidence()
        .records_for_run(&batch_run);
    let per_kind = |kind: EvidenceKind| batch_records.iter().filter(|r| r.kind == kind).count();
    assert_eq!(
        per_kind(EvidenceKind::StatePropose),
        1,
        "one m1 covers all 4 updates"
    );
    assert_eq!(
        per_kind(EvidenceKind::StateRespond),
        2,
        "one logged receipt per peer"
    );
    assert_eq!(per_kind(EvidenceKind::StateDecide), 1);
    assert_eq!(
        per_kind(EvidenceKind::Checkpoint),
        1,
        "one install for the whole batch"
    );
    assert_eq!(batch_records.len(), 5);
    for who in 1..3 {
        let recs = cluster
            .net
            .node(&party(who))
            .evidence()
            .records_for_run(&batch_run);
        let responds = recs
            .iter()
            .filter(|r| r.kind == EvidenceKind::StateRespond)
            .count();
        assert_eq!(responds, 1, "party {who}: one receipt for the whole batch");
    }
}
