//! Edge cases of the membership protocols: rejoin after leaving, double
//! disconnects, eviction of the proposer's sponsor, stale requests, and
//! sponsor legitimacy enforcement.

mod common;

use b2b_core::{ConnectStatus, CoordError, ObjectId};
use common::*;

#[test]
fn leaver_can_rejoin_later() {
    let mut cluster = Cluster::new(3, 400);
    cluster.setup_object("c", counter_factory);
    cluster.propose(0, "c", enc(5));
    // org1 leaves…
    cluster.net.invoke(&party(1), |c, ctx| {
        c.request_disconnect(&ObjectId::new("c"), ctx).unwrap();
    });
    cluster.run();
    assert!(!cluster.net.node(&party(1)).is_member(&ObjectId::new("c")));
    // State advances without it.
    cluster.propose(0, "c", enc(9));
    // …and rejoins via the current sponsor (org2, most recent member).
    let err = cluster.net.invoke(&party(1), |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), party(2), ctx)
    });
    // The old detached replica still occupies the alias at org1: rejoin
    // under the same alias is a DuplicateObject — callers use a fresh
    // coordinator or a new alias. This documents the boundary.
    assert!(matches!(err, Err(CoordError::DuplicateObject(_))));
}

#[test]
fn double_disconnect_is_rejected_locally() {
    let mut cluster = Cluster::new(2, 401);
    cluster.setup_object("c", counter_factory);
    cluster.net.invoke(&party(1), |c, ctx| {
        c.request_disconnect(&ObjectId::new("c"), ctx).unwrap();
    });
    cluster.run();
    let err = cluster.net.invoke(&party(1), |c, ctx| {
        c.request_disconnect(&ObjectId::new("c"), ctx)
    });
    assert!(matches!(err, Err(CoordError::NotMember { .. })));
}

#[test]
fn detached_party_cannot_propose() {
    let mut cluster = Cluster::new(2, 402);
    cluster.setup_object("c", counter_factory);
    cluster.net.invoke(&party(1), |c, ctx| {
        c.request_disconnect(&ObjectId::new("c"), ctx).unwrap();
    });
    cluster.run();
    let err = cluster.net.invoke(&party(1), |c, ctx| {
        c.propose_overwrite(&ObjectId::new("c"), enc(1), ctx)
    });
    assert!(matches!(err, Err(CoordError::NotMember { .. })));
}

#[test]
fn evicting_the_current_sponsor_moves_sponsorship() {
    let mut cluster = Cluster::new(4, 403);
    cluster.setup_object("c", counter_factory);
    // org3 is the sponsor; org0 proposes evicting it. The disconnect
    // sponsor is then org2 (most recent member not leaving).
    cluster.net.invoke(&party(0), |c, ctx| {
        c.request_evict(&ObjectId::new("c"), vec![party(3)], ctx)
            .unwrap();
    });
    cluster.run();
    for who in 0..3 {
        assert_eq!(
            cluster.members(who, "c"),
            vec![party(0), party(1), party(2)]
        );
        assert_eq!(
            cluster
                .net
                .node(&party(who))
                .sponsor_of(&ObjectId::new("c")),
            Some(party(2))
        );
    }
    // New joins go through org2 now.
    // (org3's replica still believes in the old group — checked elsewhere.)
    let run = cluster.propose(1, "c", enc(3));
    assert!(cluster.outcome(1, &run).unwrap().is_installed());
}

#[test]
fn connect_request_to_non_sponsor_is_forwarded() {
    let mut cluster = Cluster::new(3, 404);
    // Group of 2: org0, org1 (sponsor = org1). org2 asks org0 — the wrong
    // member — which forwards to the legitimate sponsor, and the admission
    // still completes (sponsored by org1, per §4.5.1: "any member of the
    // group can identify the legitimate sponsor … and provide this
    // information").
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();

    let wrong_sponsor = party(0);
    cluster.net.invoke(&party(2), move |c, ctx| {
        c.request_connect(
            ObjectId::new("c"),
            Box::new(counter_factory),
            wrong_sponsor,
            ctx,
        )
        .unwrap();
    });
    cluster.run();
    assert_eq!(
        cluster
            .net
            .node(&party(2))
            .connect_status(&ObjectId::new("c")),
        Some(&ConnectStatus::Member)
    );
    assert_eq!(cluster.members(0, "c"), vec![party(0), party(1), party(2)]);
}

#[test]
fn sole_member_disconnect_is_local() {
    let mut cluster = Cluster::new(1, 405);
    cluster.setup_object("c", counter_factory);
    cluster.net.invoke(&party(0), |c, ctx| {
        c.request_disconnect(&ObjectId::new("c"), ctx).unwrap();
    });
    cluster.run();
    assert!(!cluster.net.node(&party(0)).is_member(&ObjectId::new("c")));
}

#[test]
fn eviction_by_non_member_is_rejected() {
    let mut cluster = Cluster::new(3, 406);
    // Group contains only org0, org1.
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    // org2 has no replica at all:
    let err = cluster.net.invoke(&party(2), |c, ctx| {
        c.request_evict(&ObjectId::new("c"), vec![party(0)], ctx)
    });
    assert!(matches!(err, Err(CoordError::UnknownObject(_))));
    // And evicting yourself is rejected.
    let err = cluster.net.invoke(&party(0), |c, ctx| {
        c.request_evict(&ObjectId::new("c"), vec![party(0)], ctx)
    });
    assert!(matches!(err, Err(CoordError::NotMember { .. })));
}

#[test]
fn queued_connects_are_served_in_order() {
    // Two joiners ask the same sponsor while a slow state run is active;
    // both are admitted afterwards, in request order.
    let mut cluster = Cluster::new(4, 407);
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    // Slow the org0→org1 link so a state run stays active at org1 …no:
    // keep it simple — block org1 (the sponsor) with a slow recipient run.
    cluster.net.set_link_plan(
        party(0),
        party(1),
        b2b_net::FaultPlan::new().delay(b2b_crypto::TimeMs(400), b2b_crypto::TimeMs(400)),
    );
    let t0 = cluster.net.now();
    let oid = ObjectId::new("c");
    cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(2), ctx).unwrap();
    });
    cluster.net.run_until(t0 + b2b_crypto::TimeMs(500)); // org1 mid-run
    for joiner in [2usize, 3] {
        let sponsor = party(1);
        cluster.net.invoke(&party(joiner), move |c, ctx| {
            c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                .unwrap();
        });
    }
    cluster.run();
    assert_eq!(
        cluster.members(0, "c"),
        vec![party(0), party(1), party(2), party(3)],
        "joiners admitted in request order after the run"
    );
    assert_eq!(dec(&cluster.state(3, "c")), 2);
}
