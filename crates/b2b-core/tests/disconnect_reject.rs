//! Regression test for the stuck-`Leaving` leaver (DESIGN.md §7, closed).
//!
//! A voluntary disconnection cannot be vetoed (§4.5.4), but the run can
//! still fail a *consistency* check at a polled member — here, the member
//! is busy with its own coordination run when the sponsor's poll arrives,
//! so it answers "concurrent coordination run active" and the sponsor
//! invalidates the run. Before the fix the sponsor sent nothing back and
//! the leaver's replica hung in `Leaving` forever; now the sponsor sends a
//! signed `DisconnectReject` and the leaver returns to ordinary membership
//! and may retry.

mod common;

use b2b_core::ObjectId;
use b2b_crypto::TimeMs;
use b2b_evidence::{EvidenceKind, EvidenceStore};
use common::{counter_factory, party, Cluster, QUIET};

#[test]
fn rejected_voluntary_leave_returns_replica_to_member() {
    let mut cluster = Cluster::new(3, 7);
    cluster.setup_object("ledger", counter_factory);
    let oid = ObjectId::new("ledger");

    // Cut org1 off from org2 (the future sponsor) until t=5000. org0 and
    // org2 can still talk, so the leave request reaches the sponsor, but
    // the sponsor's poll of org1 is delayed until after org1 has become
    // busy with its own state-coordination run.
    cluster.net.partition([party(1)], [party(2)], TimeMs(5_000));

    // org0 asks to leave; org2 (most recently joined) sponsors and must
    // poll org1.
    let o = oid.clone();
    cluster.net.invoke(&party(0), move |c, ctx| {
        c.request_disconnect(&o, ctx).unwrap();
    });
    // org1 starts an overwrite run of its own. Its m1 to org2 is dropped
    // by the partition, so org1 is still a busy proposer when the
    // sponsor's retransmitted poll finally gets through.
    let o = oid.clone();
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.propose_overwrite(&o, common::enc(1), ctx).unwrap();
    });
    cluster.run();

    // The run was invalidated at the sponsor — yet the leaver is back to
    // ordinary membership, not stuck in `Leaving`. (Pre-fix: `is_busy`
    // stays true forever and the retry below fails with `Busy`.)
    let n0 = cluster.net.node(&party(0));
    assert!(n0.is_member(&oid), "leaver must still be a member");
    assert!(
        !n0.is_busy(&oid),
        "leaver must not be stuck in Leaving after the sponsor's rejection"
    );

    // The leaver holds the sponsor's signed rejection as evidence.
    let rejects = cluster.stores[&party(0)]
        .records()
        .into_iter()
        .filter(|r| r.kind == EvidenceKind::DisconnectReject)
        .count();
    assert_eq!(rejects, 1, "leaver logs exactly one disconnect-reject");
    // ... and so does the sponsor (its own send).
    let sponsor_rejects = cluster.stores[&party(2)]
        .records()
        .into_iter()
        .filter(|r| r.kind == EvidenceKind::DisconnectReject)
        .count();
    assert_eq!(sponsor_rejects, 1, "sponsor logs the rejection it signed");

    // With the partition healed and everyone idle again, the retry
    // completes: the group really does shrink to {org1, org2}.
    let o = oid.clone();
    cluster.net.invoke(&party(0), move |c, ctx| {
        c.request_disconnect(&o, ctx).unwrap();
    });
    cluster.net.run_until_quiet(QUIET);
    assert!(!cluster.net.node(&party(0)).is_member(&oid));
    assert_eq!(cluster.members(1, "ledger"), vec![party(1), party(2)]);
    assert_eq!(cluster.members(2, "ledger"), vec![party(1), party(2)]);
}
