//! Adversarial tests of the connection/disconnection protocols: the §4.4
//! analysis applied to §4.5 — tampered welcomes, illegitimate sponsors,
//! and replayed membership proposals are all detected, and no honest party
//! ever installs inconsistent membership or state.

mod common;

use b2b_core::messages::WireMsg;
use b2b_core::{ConnectStatus, ObjectId};
use b2b_crypto::{PartyId, TimeMs};
use b2b_net::intruder::{FnIntruder, Injection, InterceptAction};
use common::*;

const FRAME_HEADER: usize = 34;

fn peek(raw: &[u8]) -> Option<WireMsg> {
    if raw.len() <= FRAME_HEADER || raw[0] != 0 {
        return None;
    }
    WireMsg::from_bytes(&raw[FRAME_HEADER..])
}

fn replace_body(raw: &[u8], msg: &WireMsg) -> Vec<u8> {
    let mut out = raw[..FRAME_HEADER].to_vec();
    out.extend_from_slice(&msg.to_bytes());
    out
}

fn has_detection(cluster: &Cluster, who: usize, tag: &str) -> bool {
    cluster
        .net
        .node(&party(who))
        .detected()
        .iter()
        .any(|m| m.tag() == tag)
}

#[test]
fn tampered_welcome_state_is_rejected_by_the_subject() {
    // The intruder swaps the agreed state bytes inside the welcome; the
    // subject detects the hash mismatch against the signed agreed tuple
    // and refuses to install.
    let mut cluster = Cluster::new(2, 700);
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Welcome(mut w)) => {
                w.state = enc(999_999); // forged state
                InterceptAction::Replace(replace_body(raw, &WireMsg::Welcome(w)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    // The subject never installs the forged state: it stays pending with
    // evidence of the inconsistency.
    assert_eq!(
        cluster
            .net
            .node(&party(1))
            .connect_status(&ObjectId::new("c")),
        Some(&ConnectStatus::Pending)
    );
    assert!(!cluster.net.node(&party(1)).is_member(&ObjectId::new("c")));
    assert!(has_detection(&cluster, 1, "inconsistent-decide"));
}

#[test]
fn tampered_welcome_member_list_is_rejected() {
    // Smuggling an extra member into the welcome's member list breaks the
    // group identifier check (or the signature, if gid is also patched —
    // the intruder cannot re-sign).
    let mut cluster = Cluster::new(2, 701);
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Welcome(mut w)) => {
                w.welcome.members.insert(0, PartyId::new("mallory"));
                InterceptAction::Replace(replace_body(raw, &WireMsg::Welcome(w)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    assert!(!cluster.net.node(&party(1)).is_member(&ObjectId::new("c")));
    // Tampering the signed part breaks the sponsor's signature.
    assert!(has_detection(&cluster, 1, "bad-signature"));
}

#[test]
fn illegitimate_sponsor_proposal_is_vetoed() {
    // org0 (not the sponsor — org2 is) forges a connection proposal for a
    // fourth party. Members detect the illegitimate sponsor.
    let mut cluster = Cluster::new(4, 702);
    // Build a 3-member group (org0, org1, org2; sponsor = org2).
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    for i in 1..3 {
        let sponsor = party(i - 1);
        cluster.net.invoke(&party(i), move |c, ctx| {
            c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                .unwrap();
        });
        cluster.run();
    }
    // org3 asks org0 — which is NOT the sponsor. Under the forwarding
    // rule org0 relays to org2; but here the intruder rewrites the relay
    // so it looks like org0 itself sponsors the admission.
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::ConnectPropose(mut m)) => {
                // Claim org0 as sponsor: breaks either legitimacy (if the
                // group really has org2 as sponsor) or the signature.
                m.proposal.sponsor = PartyId::new("org0");
                InterceptAction::Replace(replace_body(raw, &WireMsg::ConnectPropose(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let sponsor = party(2);
    cluster.net.invoke(&party(3), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    // No admission happened; the tampering was detected (as a bad
    // signature, since the sponsor field is inside the signed part).
    assert_eq!(cluster.members(0, "c").len(), 3);
    assert!(
        has_detection(&cluster, 0, "bad-signature") || has_detection(&cluster, 1, "bad-signature")
    );
}

#[test]
fn replayed_connect_proposal_is_detected() {
    use std::sync::{Arc, Mutex};
    // Record the connect-propose of org2's admission, then replay it to a
    // member after the group has moved on.
    let recorded: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let rec = recorded.clone();
    let mut cluster = Cluster::new(3, 703);
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| {
            if let Some(WireMsg::ConnectPropose(_)) = peek(raw) {
                rec.lock().unwrap().get_or_insert_with(|| raw.to_vec());
            }
            InterceptAction::Deliver
        },
    ));
    let sponsor = party(1);
    cluster.net.invoke(&party(2), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    assert_eq!(cluster.members(0, "c").len(), 3);

    // Replay the recorded proposal to org0 under a fresh transport epoch.
    let frame = recorded.lock().unwrap().clone().expect("recorded");
    let mut replay = vec![0u8];
    replay.extend_from_slice(&0xfeed_beef_u64.to_be_bytes());
    replay.extend_from_slice(&0u64.to_be_bytes());
    // A wholesale replay keeps the recorded trace context and body.
    replay.extend_from_slice(&frame[17..]);
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, to: &PartyId, _raw: &[u8], _n| {
            if to.as_str() == "org0" {
                InterceptAction::Inject(vec![Injection {
                    from: PartyId::new("org1"),
                    to: to.clone(),
                    payload: replay.clone(),
                    after: TimeMs(1),
                }])
            } else {
                InterceptAction::Deliver
            }
        },
    ));
    // Trigger traffic toward org0 so the injection fires.
    let run = cluster.propose(1, "c", enc(5));
    cluster.run();
    assert!(cluster.outcome(1, &run).unwrap().is_installed());
    // The replay was flagged; membership unchanged.
    assert!(has_detection(&cluster, 0, "replayed-proposal"));
    assert_eq!(cluster.members(0, "c").len(), 3);
}

#[test]
fn forged_disconnect_request_cannot_evict_anyone() {
    // The intruder fabricates a "voluntary disconnect" for org1 (who never
    // asked). The signature cannot verify; nothing changes.
    let mut cluster = Cluster::new(3, 704);
    cluster.setup_object("c", counter_factory);
    use b2b_core::messages::{DisconnectRequest, DisconnectRequestMsg};
    use b2b_crypto::{sha256, CanonicalEncode, KeyPair, Signer};
    let request = DisconnectRequest {
        object: ObjectId::new("c"),
        proposer: party(1),
        subjects: vec![party(1)],
        eviction: false,
        nonce_hash: sha256(b"forged"),
    };
    // Signed with the WRONG key (an outsider's).
    let outsider = KeyPair::generate_from_seed(31337);
    let sig = outsider.sign(&request.canonical_bytes());
    let msg = WireMsg::DisconnectRequest(DisconnectRequestMsg { request, sig });
    let mut frame = vec![0u8];
    frame.extend_from_slice(&0xabcd_u64.to_be_bytes());
    frame.extend_from_slice(&0u64.to_be_bytes());
    frame.extend_from_slice(&[0u8; 17]); // trace context (untraced)
    frame.extend_from_slice(&msg.to_bytes());
    // Deliver to the disconnect sponsor (org2).
    cluster.net.invoke(&party(0), move |_c, ctx| {
        ctx.send(party(2), frame);
    });
    cluster.run();
    assert_eq!(cluster.members(0, "c").len(), 3);
    assert!(cluster.net.node(&party(1)).is_member(&ObjectId::new("c")));
    assert!(has_detection(&cluster, 2, "bad-signature"));
}
