//! Evidence-content checks: time-stamping of all signed evidence (§4.2),
//! event-stream semantics, and traffic accounting queries.

mod common;

use b2b_core::{CoordEventKind, ObjectId};
use b2b_evidence::{EvidenceKind, EvidenceStore};
use common::*;

#[test]
fn all_signed_evidence_is_time_stamped_when_tsa_present() {
    // §4.2: "all signed evidence must be time-stamped". The cluster
    // harness configures a TSA, so every signed record must carry a
    // verifying token.
    let mut cluster = Cluster::new(2, 600);
    cluster.setup_object("c", counter_factory);
    cluster.propose(0, "c", enc(5));
    let tsa_key = cluster.tsa.public_key();
    for who in 0..2 {
        for rec in cluster.stores[&party(who)].records() {
            if rec.signature.is_some() {
                let ts = rec
                    .timestamp
                    .as_ref()
                    .unwrap_or_else(|| panic!("signed {} record lacks a time-stamp", rec.kind));
                assert!(
                    ts.verify(&tsa_key, &rec.payload).is_ok(),
                    "time-stamp on {} record verifies",
                    rec.kind
                );
            }
        }
    }
}

#[test]
fn timestamps_carry_protocol_time_order() {
    let mut cluster = Cluster::new(2, 601);
    cluster.setup_object("c", counter_factory);
    cluster.propose(0, "c", enc(5));
    let records = cluster.stores[&party(0)].records();
    let times: Vec<u64> = records.iter().map(|r| r.logged_at.as_millis()).collect();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    assert_eq!(times, sorted, "log order follows protocol time");
}

#[test]
fn take_events_drains_and_preserves_order() {
    let mut cluster = Cluster::new(2, 602);
    cluster.setup_object("c", counter_factory);
    cluster.net.invoke(&party(0), |c, _| {
        let _ = c.take_events(); // clear setup noise
    });
    let run1 = cluster.propose(0, "c", enc(1));
    let run2 = cluster.propose(0, "c", enc(2));
    let events = cluster.net.invoke(&party(0), |c, _| c.take_events());
    let completed: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.event, CoordEventKind::Completed { .. }))
        .map(|e| e.run)
        .collect();
    assert_eq!(completed, vec![run1, run2], "completions in order");
    // Drained: a second take returns nothing new.
    let events = cluster.net.invoke(&party(0), |c, _| c.take_events());
    assert!(events.is_empty());
}

#[test]
fn message_counts_break_down_by_kind() {
    let mut cluster = Cluster::new(3, 603);
    cluster.setup_object("c", counter_factory);
    cluster.propose(0, "c", enc(5));
    let counts = cluster
        .net
        .invoke(&party(0), |c, _| c.message_counts().clone());
    assert_eq!(counts.get("propose"), Some(&2), "m1 to both recipients");
    assert_eq!(counts.get("decide"), Some(&2), "m3 to both recipients");
    // org0 sponsored org1's admission: one connect-propose… to nobody
    // (singleton), so no entry; it sent the welcome though.
    assert!(counts.contains_key("welcome"));
    let recipient_counts = cluster
        .net
        .invoke(&party(1), |c, _| c.message_counts().clone());
    assert_eq!(recipient_counts.get("respond"), Some(&1));
}

#[test]
fn checkpoint_records_reference_installed_tuples() {
    let mut cluster = Cluster::new(2, 604);
    cluster.setup_object("c", counter_factory);
    let run = cluster.propose(0, "c", enc(9));
    let agreed = cluster
        .net
        .node(&party(0))
        .agreed_id(&ObjectId::new("c"))
        .unwrap();
    let checkpoints: Vec<b2b_core::StateId> = cluster.stores[&party(0)]
        .records_for_run(&run.to_hex())
        .into_iter()
        .filter(|r| r.kind == EvidenceKind::Checkpoint)
        .filter_map(|r| serde_json::from_slice(&r.payload).ok())
        .collect();
    assert_eq!(checkpoints, vec![agreed]);
}

#[test]
fn validate_locally_preflights_policy() {
    let mut cluster = Cluster::new(2, 605);
    cluster.setup_object("c", counter_factory);
    cluster.propose(0, "c", enc(10));
    let (ok, bad) = cluster.net.invoke(&party(1), |c, _| {
        (
            c.validate_locally(&ObjectId::new("c"), &enc(11)).unwrap(),
            c.validate_locally(&ObjectId::new("c"), &enc(2)).unwrap(),
        )
    });
    assert!(ok.is_accept());
    assert!(!bad.is_accept());
    let err = cluster.net.invoke(&party(1), |c, _| {
        c.validate_locally(&ObjectId::new("nope"), &enc(1))
    });
    assert!(err.is_err());
}
