//! Crash recovery backed by the real on-disk WAL ([`FileStore`]) rather
//! than the in-memory store: the full §3 persistence story — evidence log,
//! checkpoints and active-run state all surviving on disk.

mod common;

use b2b_core::{Coordinator, ObjectId};
use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs, TimeStampAuthority};
use b2b_evidence::{EvidenceStore, FileStore};
use b2b_net::{FaultPlan, SimNet};
use common::{counter_factory, dec, enc};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("b2b-file-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn org(i: usize) -> PartyId {
    PartyId::new(format!("org{i}"))
}

#[test]
fn crash_recovery_from_disk_wal() {
    let dir = temp_dir("e2e");
    let mut ring = KeyRing::new();
    let kp0 = KeyPair::generate_from_seed(1);
    let kp1 = KeyPair::generate_from_seed(2);
    ring.register(org(0), kp0.public_key());
    ring.register(org(1), kp1.public_key());
    let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(9));

    let store0 = Arc::new(FileStore::open(dir.join("org0")).unwrap());
    let store1 = Arc::new(FileStore::open(dir.join("org1")).unwrap());

    let mut net = SimNet::new(42);
    net.set_default_plan(FaultPlan::new().delay(TimeMs(10), TimeMs(10)));
    net.add_node(
        Coordinator::builder(org(0), kp0)
            .ring(ring.clone())
            .tsa(tsa.clone())
            .store(store0.clone())
            .seed(1)
            .build(),
    );
    net.add_node(
        Coordinator::builder(org(1), kp1)
            .ring(ring)
            .tsa(tsa)
            .store(store1.clone())
            .seed(2)
            .build(),
    );

    // Set up the shared object and agree one value.
    net.invoke(&org(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = org(0);
    net.invoke(&org(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    net.run_until_quiet(TimeMs(600_000));
    let oid = ObjectId::new("c");
    net.invoke(&org(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(11), ctx).unwrap();
    });
    net.run_until_quiet(TimeMs(600_000));

    // Crash org1 mid-way through a second run; the WAL carries it across.
    let t0 = net.now();
    net.crash_at(t0 + TimeMs(15), org(1)); // after m1 arrives, around respond
    net.recover_at(t0 + TimeMs(3_000), org(1));
    let oid = ObjectId::new("c");
    let run = net.invoke(&org(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(25), ctx).unwrap()
    });
    net.run_until_quiet(TimeMs(600_000));

    assert!(net.node(&org(0)).outcome_of(&run).unwrap().is_installed());
    assert_eq!(
        dec(&net.node(&org(1)).agreed_state(&ObjectId::new("c")).unwrap()),
        25
    );
    // The evidence files really exist on disk and replay cleanly.
    drop(net);
    let reopened = FileStore::open(dir.join("org1")).unwrap();
    assert!(reopened.len() > 0, "org1's WAL holds evidence records");
    let kinds: Vec<_> = reopened.records().iter().map(|r| r.kind).collect();
    assert!(kinds.contains(&b2b_evidence::EvidenceKind::StateRespond));
    assert!(kinds.contains(&b2b_evidence::EvidenceKind::Checkpoint));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn evidence_on_disk_supports_arbitration_after_restart() {
    // Write a full run through FileStores, drop everything, reopen the
    // logs cold and let the arbiter judge from them.
    let dir = temp_dir("arbit");
    let mut ring = KeyRing::new();
    let kp0 = KeyPair::generate_from_seed(5);
    let kp1 = KeyPair::generate_from_seed(6);
    ring.register(org(0), kp0.public_key());
    ring.register(org(1), kp1.public_key());

    {
        let store0 = Arc::new(FileStore::open(dir.join("org0")).unwrap());
        let store1 = Arc::new(FileStore::open(dir.join("org1")).unwrap());
        let mut net = SimNet::new(7);
        net.add_node(
            Coordinator::builder(org(0), kp0)
                .ring(ring.clone())
                .store(store0)
                .seed(1)
                .build(),
        );
        net.add_node(
            Coordinator::builder(org(1), kp1)
                .ring(ring.clone())
                .store(store1)
                .seed(2)
                .build(),
        );
        net.invoke(&org(0), |c, _| {
            c.register_object(ObjectId::new("c"), Box::new(counter_factory))
                .unwrap();
        });
        let sponsor = org(0);
        net.invoke(&org(1), move |c, ctx| {
            c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                .unwrap();
        });
        net.run_until_quiet(TimeMs(600_000));
        let oid = ObjectId::new("c");
        net.invoke(&org(0), move |c, ctx| {
            c.propose_overwrite(&oid, enc(9), ctx).unwrap();
        });
        net.run_until_quiet(TimeMs(600_000));
    } // everything dropped; only the files remain

    let cold = FileStore::open(dir.join("org0")).unwrap();
    let members = vec![org(0), org(1)];
    let records = cold.records();
    // Find the installed state tuple from the checkpoint record.
    let state: b2b_core::StateId = records
        .iter()
        .filter(|r| r.kind == b2b_evidence::EvidenceKind::Checkpoint)
        .filter_map(|r| serde_json::from_slice(&r.payload).ok())
        .next_back()
        .expect("checkpoint exists");
    let arbiter = b2b_core::Arbiter::new(ring);
    let claim = b2b_core::Claim::StateValid {
        object: ObjectId::new("c"),
        proposer: org(0),
        members,
        state,
    };
    assert!(arbiter.judge(&claim, &cold).is_upheld());
    std::fs::remove_dir_all(&dir).unwrap();
}
