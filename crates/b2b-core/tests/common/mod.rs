#![allow(dead_code)]

//! Shared test harness: a simulated cluster of coordinators with a common
//! CA-less key ring, per-party in-memory stores, and helpers for the
//! recurring setup (register an object, connect members, drive the net).

use b2b_core::{
    B2BObject, Coordinator, CoordinatorConfig, Decision, ObjectId, Outcome, RunId, SharedCell,
};
use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs, TimeStampAuthority};
use b2b_evidence::MemStore;
use b2b_net::{FaultPlan, SimNet};
use std::collections::HashMap;
use std::sync::Arc;

pub const QUIET: TimeMs = TimeMs(600_000);

pub struct Cluster {
    pub net: SimNet<Coordinator>,
    pub parties: Vec<PartyId>,
    pub stores: HashMap<PartyId, Arc<MemStore>>,
    pub ring: KeyRing,
    pub tsa: TimeStampAuthority,
}

pub fn party(i: usize) -> PartyId {
    PartyId::new(format!("org{i}"))
}

impl Cluster {
    /// Builds `n` coordinators with shared ring/TSA on a perfect network.
    pub fn new(n: usize, seed: u64) -> Cluster {
        Cluster::with_config(n, seed, CoordinatorConfig::default(), FaultPlan::default())
    }

    pub fn with_config(n: usize, seed: u64, config: CoordinatorConfig, plan: FaultPlan) -> Cluster {
        Cluster::with_config_and_telemetry(n, seed, config, plan, Vec::new())
    }

    /// Like [`Cluster::with_config`], but attaches `telemetry[i]` to party
    /// `i` (parties beyond the slice get a private, sink-less handle).
    pub fn with_config_and_telemetry(
        n: usize,
        seed: u64,
        config: CoordinatorConfig,
        plan: FaultPlan,
        telemetry: Vec<b2b_telemetry::Telemetry>,
    ) -> Cluster {
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for i in 0..n {
            let kp = KeyPair::generate_from_seed(1000 + i as u64);
            ring.register(party(i), kp.public_key());
            keys.push(kp);
        }
        let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(9999));
        let mut net = SimNet::new(seed);
        net.set_default_plan(plan);
        let mut stores = HashMap::new();
        for (i, kp) in keys.into_iter().enumerate() {
            let store = Arc::new(MemStore::new());
            stores.insert(party(i), store.clone());
            let mut builder = Coordinator::builder(party(i), kp)
                .ring(ring.clone())
                .tsa(tsa.clone())
                .config(config.clone())
                .store(store)
                .seed(seed.wrapping_add(i as u64));
            if let Some(t) = telemetry.get(i) {
                builder = builder.telemetry(t.clone());
            }
            net.add_node(builder.build());
        }
        Cluster {
            net,
            parties: (0..n).map(party).collect(),
            stores,
            ring,
            tsa,
        }
    }

    /// Registers `alias` at org0 and connects org1..orgN-1 sequentially
    /// (each sponsored by the most recently joined member, per §4.5.1).
    pub fn setup_object<F>(&mut self, alias: &str, factory: F)
    where
        F: Fn() -> Box<dyn B2BObject> + Clone + Send + 'static,
    {
        let oid = ObjectId::new(alias);
        let f0 = factory.clone();
        self.net.invoke(&party(0), move |c, _| {
            c.register_object(oid, Box::new(f0)).unwrap();
        });
        for i in 1..self.parties.len() {
            let oid = ObjectId::new(alias);
            let fi = factory.clone();
            let sponsor = party(i - 1);
            self.net.invoke(&party(i), move |c, ctx| {
                c.request_connect(oid, Box::new(fi), sponsor, ctx).unwrap();
            });
            self.run();
            let oid = ObjectId::new(alias);
            assert!(
                self.net.node(&party(i)).is_member(&oid),
                "org{i} failed to join {alias}"
            );
        }
    }

    /// Runs the network until quiescent.
    pub fn run(&mut self) {
        self.net.run_until_quiet(QUIET);
    }

    /// Proposes an overwrite from `who` and runs the net to completion.
    pub fn propose(&mut self, who: usize, alias: &str, state: Vec<u8>) -> RunId {
        let oid = ObjectId::new(alias);
        let run = self.net.invoke(&party(who), move |c, ctx| {
            c.propose_overwrite(&oid, state, ctx).unwrap()
        });
        self.run();
        run
    }

    pub fn outcome(&self, who: usize, run: &RunId) -> Option<Outcome> {
        self.net.node(&party(who)).outcome_of(run).cloned()
    }

    pub fn state(&self, who: usize, alias: &str) -> Vec<u8> {
        self.net
            .node(&party(who))
            .agreed_state(&ObjectId::new(alias))
            .expect("state present")
    }

    pub fn members(&self, who: usize, alias: &str) -> Vec<PartyId> {
        self.net
            .node(&party(who))
            .members(&ObjectId::new(alias))
            .expect("members present")
    }

    /// Sum of protocol-level messages sent across all parties.
    pub fn total_protocol_messages(&self) -> u64 {
        self.parties
            .iter()
            .map(|p| self.net.node(p).messages_sent())
            .sum()
    }
}

/// A grow-only shared counter: a transition is valid iff the value does
/// not decrease. JSON-encoded `u64`.
pub fn counter_factory() -> Box<dyn B2BObject> {
    Box::new(SharedCell::new(0u64).with_validator(|_who, old, new| {
        if new >= old {
            Decision::accept()
        } else {
            Decision::reject("counter may not decrease")
        }
    }))
}

pub fn enc(v: u64) -> Vec<u8> {
    serde_json::to_vec(&v).unwrap()
}

pub fn dec(bytes: &[u8]) -> u64 {
    serde_json::from_slice(bytes).unwrap()
}

/// An append-only log object with true *update* semantics: an update is a
/// single entry appended to the JSON `Vec<String>` state. Validation
/// rejects entries containing "forbidden".
pub struct AppendLog {
    entries: Vec<String>,
}

impl AppendLog {
    pub fn new() -> AppendLog {
        AppendLog {
            entries: Vec::new(),
        }
    }
}

impl B2BObject for AppendLog {
    fn get_state(&self) -> Vec<u8> {
        serde_json::to_vec(&self.entries).unwrap()
    }

    fn apply_state(&mut self, state: &[u8]) {
        if let Ok(v) = serde_json::from_slice(state) {
            self.entries = v;
        }
    }

    fn validate_state(&self, _who: &PartyId, current: &[u8], proposed: &[u8]) -> Decision {
        let cur: Vec<String> = serde_json::from_slice(current).unwrap_or_default();
        let Ok(next) = serde_json::from_slice::<Vec<String>>(proposed) else {
            return Decision::reject("undecodable");
        };
        if next.len() != cur.len() + 1 || next[..cur.len()] != cur[..] {
            return Decision::reject("not a single append");
        }
        if next.last().map(|e| e.contains("forbidden")).unwrap_or(true) {
            return Decision::reject("forbidden entry");
        }
        Decision::accept()
    }

    fn apply_update(&self, current: &[u8], update: &[u8]) -> Result<Vec<u8>, String> {
        let mut cur: Vec<String> = serde_json::from_slice(current).map_err(|e| e.to_string())?;
        let entry: String = serde_json::from_slice(update).map_err(|e| e.to_string())?;
        cur.push(entry);
        Ok(serde_json::to_vec(&cur).unwrap())
    }
}

pub fn append_log_factory() -> Box<dyn B2BObject> {
    Box::new(AppendLog::new())
}
