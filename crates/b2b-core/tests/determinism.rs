//! Whole-system determinism: the same seed reproduces the same protocol
//! execution bit-for-bit — the property that makes every adversarial and
//! fault-injection scenario in this repository replayable.

mod common;

use b2b_crypto::TimeMs;
use b2b_evidence::EvidenceStore;
use b2b_net::FaultPlan;
use common::*;

fn run_scenario(seed: u64) -> (Vec<Vec<u8>>, Vec<u8>, u64) {
    let mut cluster = Cluster::with_config(
        3,
        seed,
        b2b_core::CoordinatorConfig::default(),
        FaultPlan::new()
            .drop_rate(0.2)
            .dup_rate(0.1)
            .delay(TimeMs(1), TimeMs(30)),
    );
    cluster.setup_object("c", counter_factory);
    for v in [4u64, 9, 2, 11] {
        cluster.propose((v % 3) as usize, "c", enc(v));
    }
    let payloads: Vec<Vec<u8>> = cluster.stores[&party(0)]
        .records()
        .into_iter()
        .map(|r| r.payload)
        .collect();
    let state = cluster.state(1, "c");
    let msgs = cluster.total_protocol_messages();
    (payloads, state, msgs)
}

#[test]
fn same_seed_reproduces_identical_evidence_and_state() {
    let (log_a, state_a, msgs_a) = run_scenario(12345);
    let (log_b, state_b, msgs_b) = run_scenario(12345);
    assert_eq!(state_a, state_b);
    assert_eq!(msgs_a, msgs_b);
    assert_eq!(
        log_a, log_b,
        "evidence payloads identical byte-for-byte across replays"
    );
}

#[test]
fn different_seeds_still_converge_to_policy_outcome() {
    // Nondeterministic fault schedules change timing and evidence, but
    // never the agreed outcome: the grow-only maximum always wins.
    let (_, state_a, _) = run_scenario(1);
    let (_, state_b, _) = run_scenario(2);
    assert_eq!(state_a, enc(11));
    assert_eq!(state_b, enc(11));
}
