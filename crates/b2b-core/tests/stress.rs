//! Stress tests: real-thread concurrency over the in-process transport,
//! and protocol tolerance of heavy message reordering (the paper requires
//! no ordering from the communication system, §4.2).

mod common;

use b2b_core::{CoordError, Coordinator, ObjectId};
use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
use b2b_net::{FaultPlan, ThreadedNet};
use common::*;
use std::time::Duration;

fn build_threaded(n: usize) -> (ThreadedNet<Coordinator>, Vec<PartyId>) {
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for i in 0..n {
        let kp = KeyPair::generate_from_seed(500 + i as u64);
        ring.register(party(i), kp.public_key());
        keys.push(kp);
    }
    let nodes = keys
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            Coordinator::builder(party(i), kp)
                .ring(ring.clone())
                .seed(i as u64)
                .build()
        })
        .collect();
    (ThreadedNet::spawn(nodes), (0..n).map(party).collect())
}

#[test]
fn threaded_contending_proposers_never_diverge() {
    // Both parties hammer the same object from real threads. The busy rule
    // rejects overlaps; retries eventually land; replicas never diverge.
    let (net, parties) = build_threaded(2);
    let a = net.handle(&parties[0]).clone();
    let b = net.handle(&parties[1]).clone();
    a.invoke(|c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = parties[0].clone();
    b.invoke(move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    assert!(b.wait_until(Duration::from_secs(10), |c| c
        .is_member(&ObjectId::new("c"))));

    let mut threads = Vec::new();
    for (idx, handle) in [a.clone(), b.clone()].into_iter().enumerate() {
        threads.push(std::thread::spawn(move || {
            let mut installed = 0u32;
            for i in 0..30u64 {
                // Keep values monotone across both threads so the
                // grow-only policy never vetoes: round-major numbering.
                let value = 10 * (i + 1) + idx as u64;
                let run = handle
                    .invoke(|c, ctx| c.propose_overwrite(&ObjectId::new("c"), enc(value), ctx));
                match run {
                    Ok(run) => {
                        let done = handle
                            .wait_until(Duration::from_secs(5), |c| c.outcome_of(&run).is_some());
                        assert!(done, "outcome must arrive");
                        if handle.read(|c| c.outcome_of(&run).unwrap().is_installed()) {
                            installed += 1;
                        } else {
                            // Collision with the peer's run: wait for the
                            // object to go idle before retrying, with an
                            // asymmetric bound to break the lockstep. A
                            // condition wait (not a guessed sleep) cannot
                            // flake on a loaded machine.
                            handle.wait_until(Duration::from_millis(20 + 30 * idx as u64), |c| {
                                !c.is_busy(&ObjectId::new("c"))
                            });
                        }
                    }
                    Err(CoordError::Busy { .. }) => {
                        handle.wait_until(Duration::from_millis(20 + 20 * idx as u64), |c| {
                            !c.is_busy(&ObjectId::new("c"))
                        });
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            installed
        }));
    }
    let installed: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(installed > 0, "some proposals must land");

    // Drain and compare replicas.
    let quiesced = a.wait_until(Duration::from_secs(10), |c| !c.is_busy(&ObjectId::new("c")))
        && b.wait_until(Duration::from_secs(10), |c| !c.is_busy(&ObjectId::new("c")));
    assert!(quiesced);
    let (sa, ia) = a.read(|c| {
        (
            c.agreed_state(&ObjectId::new("c")).unwrap(),
            c.agreed_id(&ObjectId::new("c")).unwrap(),
        )
    });
    // b may still be processing the final decide; wait for its tuple to match.
    assert!(b.wait_until(Duration::from_secs(10), move |c| {
        c.agreed_id(&ObjectId::new("c")) == Some(ia)
    }));
    let sb = b.read(|c| c.agreed_state(&ObjectId::new("c")).unwrap());
    assert_eq!(sa, sb, "replicas agree after contention");
    net.shutdown();
}

#[test]
fn protocol_tolerates_heavy_reordering() {
    // §4.2: "There is no requirement for the communications system to
    // order messages." A wide delay window scrambles delivery order.
    for seed in [500u64, 501, 502] {
        let mut cluster = Cluster::with_config(
            4,
            seed,
            b2b_core::CoordinatorConfig::default(),
            FaultPlan::new().delay(TimeMs(1), TimeMs(150)),
        );
        cluster.setup_object("c", counter_factory);
        for v in [5u64, 6, 9, 12] {
            let run = cluster.propose((v % 4) as usize, "c", enc(v));
            for who in 0..4 {
                assert!(
                    cluster
                        .outcome(who, &run)
                        .map(|o| o.is_installed())
                        .unwrap_or(false),
                    "seed {seed} v {v} org{who}"
                );
            }
        }
        for who in 0..4 {
            assert_eq!(dec(&cluster.state(who, "c")), 12, "seed {seed}");
        }
    }
}

#[test]
fn many_objects_coordinate_independently() {
    // 10 objects between 3 parties, interleaved proposals — object runs
    // are independent, so all complete despite interleaving.
    let mut cluster = Cluster::new(3, 510);
    for i in 0..10 {
        cluster.setup_object(&format!("obj{i}"), counter_factory);
    }
    // Fire one proposal per object without draining between them.
    let mut runs = Vec::new();
    for i in 0..10usize {
        let oid = ObjectId::new(format!("obj{i}"));
        let v = enc(i as u64 + 1);
        let run = cluster.net.invoke(&party(i % 3), move |c, ctx| {
            c.propose_overwrite(&oid, v, ctx).unwrap()
        });
        runs.push(run);
    }
    cluster.run();
    for (i, run) in runs.iter().enumerate() {
        assert!(
            cluster.outcome(i % 3, run).unwrap().is_installed(),
            "obj{i} proposal must install"
        );
        for who in 0..3 {
            assert_eq!(dec(&cluster.state(who, &format!("obj{i}"))), i as u64 + 1);
        }
    }
}
