//! What the signature-verification cache may — and may not — skip (§4.4).
//!
//! The cache memoises *successful* verifications of exact
//! `(party, digest, signature)` triples, so it can only ever skip work that
//! would succeed again against the same key material. These tests pin down
//! the two boundaries of that claim:
//!
//! * a cached accept must not outlive the key ring that produced it —
//!   [`b2b_core::Coordinator::update_ring`] clears the cache, so a message
//!   that was verified (and cached) under the old ring is re-verified, and
//!   rejected, under the new one;
//! * caching must be behaviourally invisible — the same seeded scenario
//!   with the cache on and off produces byte-identical flight-recorder
//!   traces and identical metrics except for the verification-work
//!   counters (`sig_verify_count` / `sig_cache_hits` /
//!   `sig_batch_verifies`: whether the misses at m3 aggregation are
//!   numerous enough to form a batch is itself a function of the cache).

mod common;

use b2b_core::messages::WireMsg;
use b2b_core::{CoordinatorConfig, Misbehaviour};
use b2b_crypto::{KeyPair, PartyId, Signer, TimeMs};
use b2b_net::intruder::{FnIntruder, Injection, InterceptAction, Intruder};
use b2b_net::FaultPlan;
use b2b_telemetry::{names, MetricsSnapshot, RingRecorder, Telemetry};
use common::*;
use std::sync::{Arc, Mutex};

/// Reliable-layer frame header: kind(1) + epoch(8) + seq(8) + trace(17).
const FRAME_HEADER: usize = 34;

fn peek(raw: &[u8]) -> Option<WireMsg> {
    if raw.len() <= FRAME_HEADER || raw[0] != 0 {
        return None;
    }
    WireMsg::from_bytes(&raw[FRAME_HEADER..])
}

/// Re-frames a recorded protocol message under a fresh reliable-layer
/// identity so the dedup layer does not swallow the re-delivery.
fn reframe(frame: &[u8], epoch: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(0u8);
    out.extend_from_slice(&epoch.to_be_bytes());
    out.extend_from_slice(&0u64.to_be_bytes());
    // Keep the recorded trace context and body.
    out.extend_from_slice(&frame[17..]);
    out
}

fn inject_to_org1(payload: Vec<u8>) -> impl Intruder + 'static {
    FnIntruder::new(move |_f: &PartyId, to: &PartyId, _raw: &[u8], _n| {
        if to.as_str() == "org1" {
            InterceptAction::Inject(vec![Injection {
                from: PartyId::new("org0"),
                to: to.clone(),
                payload: payload.clone(),
                after: TimeMs(5),
            }])
        } else {
            InterceptAction::Deliver
        }
    })
}

fn bad_propose_sig_from(cluster: &Cluster, who: usize, claimed: &PartyId) -> bool {
    cluster.net.node(&party(who)).detected().iter().any(|m| {
        matches!(m, Misbehaviour::BadSignature { claimed: c, message }
            if c == claimed && message == "propose")
    })
}

#[test]
fn ring_update_invalidates_cached_signature_accepts() {
    let recorded: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let rec = recorded.clone();

    let mut cluster = Cluster::new(2, 91);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| {
            if let Some(WireMsg::Propose(_)) = peek(raw) {
                rec.lock().unwrap().get_or_insert_with(|| raw.to_vec());
            }
            InterceptAction::Deliver
        },
    ));
    let run1 = cluster.propose(0, "counter", enc(5));
    assert!(cluster.outcome(1, &run1).unwrap().is_installed());
    let frame = recorded.lock().unwrap().clone().expect("recorded m1");

    // Control: re-delivering the recorded m1 while the ring is unchanged is
    // a cache hit followed by the idempotent completed-run reply — no
    // misbehaviour is recorded and the legitimate runs still install.
    cluster
        .net
        .set_intruder(inject_to_org1(reframe(&frame, 0xdead_beef)));
    let run2 = cluster.propose(0, "counter", enc(6));
    assert!(cluster.outcome(1, &run2).unwrap().is_installed());
    cluster.run();
    assert!(!bad_propose_sig_from(&cluster, 1, &party(0)));
    assert_eq!(dec(&cluster.state(1, "counter")), 6);

    // org1 learns a new key for org0 mid-session. The cached accept for the
    // recorded m1 must die with the old ring.
    let mut new_ring = cluster.ring.clone();
    new_ring.register(party(0), KeyPair::generate_from_seed(4242).public_key());
    cluster.net.invoke(&party(1), move |c, _| {
        c.update_ring(new_ring);
    });

    // Re-deliver the very same m1 (fresh reliable-layer identity again).
    // Were the cache not cleared, the stale accept would short-circuit
    // verification and org1 would answer idempotently; instead the
    // signature is re-checked against the new ring and rejected.
    cluster
        .net
        .set_intruder(inject_to_org1(reframe(&frame, 0xfeed_face)));
    let oid = b2b_core::ObjectId::new("counter");
    cluster.net.invoke(&party(1), move |c, ctx| {
        // Any outbound traffic draws a reply to org1, which triggers the
        // injection above.
        let _ = c.propose_overwrite(&oid, enc(7), ctx);
    });
    cluster.run();
    assert!(
        bad_propose_sig_from(&cluster, 1, &party(0)),
        "replayed m1 must fail verification after the ring update"
    );
    // The replay changed nothing: org1 still holds the last agreed state
    // it installed under the old ring.
    assert_eq!(dec(&cluster.state(1, "counter")), 6);
}

/// Runs a seeded lossy scenario with per-party flight recorders and returns
/// `(rendered traces, metrics, final state)` for each party.
fn traced_scenario(
    seed: u64,
    config: CoordinatorConfig,
) -> (Vec<String>, Vec<MetricsSnapshot>, Vec<u8>) {
    let n = 3;
    let recorders: Vec<Arc<RingRecorder>> =
        (0..n).map(|_| Arc::new(RingRecorder::new(4096))).collect();
    let telemetry: Vec<Telemetry> = recorders
        .iter()
        .map(|r| Telemetry::with_sink(r.clone() as Arc<dyn b2b_telemetry::TraceSink>))
        .collect();
    let mut cluster = Cluster::with_config_and_telemetry(
        n,
        seed,
        config,
        FaultPlan::new()
            .drop_rate(0.2)
            .dup_rate(0.1)
            .delay(TimeMs(1), TimeMs(30)),
        telemetry.clone(),
    );
    cluster.setup_object("c", counter_factory);
    for v in [4u64, 9, 2, 11] {
        cluster.propose((v % 3) as usize, "c", enc(v));
    }
    let traces = recorders.iter().map(|r| r.render()).collect();
    let metrics = telemetry.iter().map(|t| t.metrics().snapshot()).collect();
    let state = cluster.state(1, "c");
    (traces, metrics, state)
}

#[test]
fn cache_on_and_off_runs_are_identical_except_verification_counters() {
    let seed = 20_026;
    let (traces_on, metrics_on, state_on) = traced_scenario(seed, CoordinatorConfig::default());
    let (traces_off, metrics_off, state_off) =
        traced_scenario(seed, CoordinatorConfig::default().sig_cache_capacity(0));

    assert_eq!(state_on, state_off);
    assert_eq!(
        traces_on, traces_off,
        "flight-recorder traces must be byte-identical cache on vs off"
    );

    let mut saw_hits = false;
    for (on, off) in metrics_on.iter().zip(metrics_off.iter()) {
        // With the cache off every check is a real verification and nothing
        // ever hits; with it on, hits replace exactly that many verifies.
        assert_eq!(off.counter(names::SIG_CACHE_HITS), 0);
        let hits = on.counter(names::SIG_CACHE_HITS);
        saw_hits |= hits > 0;
        assert_eq!(
            on.counter(names::SIG_VERIFY_COUNT) + hits,
            off.counter(names::SIG_VERIFY_COUNT),
        );

        // With the cache off, every m3 aggregation re-checks all its
        // responses, so the misses form batches; cached runs verify at
        // most as often in batch form.
        assert!(off.counter(names::SIG_BATCH_VERIFIES) > 0);
        assert!(on.counter(names::SIG_BATCH_VERIFIES) <= off.counter(names::SIG_BATCH_VERIFIES));

        // Every other counter and histogram is identical.
        let strip = |snap: &MetricsSnapshot| {
            let mut s = snap.clone();
            s.counters.remove(names::SIG_VERIFY_COUNT);
            s.counters.remove(names::SIG_CACHE_HITS);
            s.counters.remove(names::SIG_BATCH_VERIFIES);
            s
        };
        assert_eq!(strip(on), strip(off));
    }
    assert!(saw_hits, "the default cache must absorb some verifications");
}
