//! §7 termination extensions: deadline-driven resolution by majority
//! decision, and the safety boundary it moves.

mod common;

use b2b_core::{CoordinatorConfig, DecisionRule, ObjectId, Outcome};
use b2b_crypto::TimeMs;
use b2b_net::FaultPlan;
use common::*;

fn majority_cluster(n: usize, seed: u64, deadline: u64) -> Cluster {
    let config = CoordinatorConfig::new()
        .decision_rule(DecisionRule::Majority)
        .run_deadline(TimeMs(deadline));
    Cluster::with_config(n, seed, config, FaultPlan::default())
}

#[test]
fn majority_resolves_run_with_silent_party() {
    let mut cluster = majority_cluster(5, 200, 500);
    cluster.setup_object("counter", counter_factory);
    let t0 = cluster.net.now();
    // org4 goes silent forever.
    cluster.net.partition(
        [party(4)],
        (0..4).map(party).collect::<Vec<_>>(),
        TimeMs(u64::MAX),
    );
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(5), ctx).unwrap()
    });
    // Drive bounded (retransmission toward org4 keeps the queue alive).
    cluster.net.run_until(t0 + TimeMs(5_000));
    // The proposer and every reachable recipient install by majority.
    for who in 0..4 {
        assert_eq!(
            cluster.outcome(who, &run),
            Some(Outcome::Installed {
                state: cluster
                    .net
                    .node(&party(who))
                    .agreed_id(&ObjectId::new("counter"))
                    .unwrap()
            }),
            "org{who} should resolve by majority"
        );
        assert_eq!(dec(&cluster.state(who, "counter")), 5);
    }
    // The silent party, once healed, is behind but has installed nothing
    // invalid (safety preserved for it).
    assert_eq!(dec(&cluster.state(4, "counter")), 0);
}

#[test]
fn majority_vetoes_still_invalidate() {
    // 3 parties, majority = 2. One veto out of two recipients means the
    // proposer + one acceptor form a majority — the veto is overridden.
    // With TWO vetoes (both recipients), the run is invalidated.
    let mut cluster = majority_cluster(3, 201, 1_000);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(10));
    // A decrease violates both recipients' policy: invalidated.
    let run = cluster.propose(0, "counter", enc(1));
    assert!(matches!(
        cluster.outcome(0, &run).unwrap(),
        Outcome::Invalidated { .. }
    ));
    assert_eq!(dec(&cluster.state(1, "counter")), 10);
}

#[test]
fn majority_overrides_single_veto_documented_tradeoff() {
    // The §7 extension weakens the base safety property deliberately: a
    // strict majority can impose a state one party vetoed. This test
    // documents the boundary (see DESIGN.md).
    use b2b_core::{B2BObject, Decision, SharedCell};
    let strict = || -> Box<dyn B2BObject> {
        Box::new(SharedCell::new(0u64).with_validator(|_w, _o, n: &u64| {
            if *n == 666 {
                Decision::reject("org-specific policy")
            } else {
                Decision::accept()
            }
        }))
    };
    let lax = || -> Box<dyn B2BObject> { Box::new(SharedCell::new(0u64)) };

    let mut cluster = majority_cluster(3, 202, 1_000);
    // org0 (proposer) and org2 lax, org1 strict.
    cluster.net.invoke(&party(0), move |c, _| {
        c.register_object(ObjectId::new("counter"), Box::new(lax))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("counter"), Box::new(strict), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    let sponsor = party(1);
    cluster.net.invoke(&party(2), move |c, ctx| {
        c.request_connect(ObjectId::new("counter"), Box::new(lax), sponsor, ctx)
            .unwrap();
    });
    cluster.run();

    let run = cluster.propose(0, "counter", enc(666));
    // 2 accepts (org0 implicit + org2) vs 1 reject: majority installs.
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(2, "counter")), 666);
    // The vetoing party also follows the group decision under majority —
    // its local policy was outvoted (the documented §7 trade-off).
    assert_eq!(dec(&cluster.state(1, "counter")), 666);
}

#[test]
fn unanimous_rule_never_overrides_a_veto() {
    // Control for the trade-off above: under the paper's base rule the
    // same single veto invalidates the run everywhere.
    let mut cluster = Cluster::new(3, 203);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(10));
    let run = cluster.propose(1, "counter", enc(2));
    for who in 0..3 {
        assert!(!cluster
            .outcome(who, &run)
            .map(|o| o.is_installed())
            .unwrap_or(false));
        assert_eq!(dec(&cluster.state(who, "counter")), 10);
    }
}
