//! Crash-recovery (§3 check-pointing / §4.2 crash-and-recover nodes) and
//! liveness under temporary failures (§1, §4.1).

mod common;

use b2b_core::ObjectId;
use b2b_crypto::TimeMs;
use b2b_net::FaultPlan;
use common::*;

#[test]
fn recipient_crash_during_run_recovers_and_completes() {
    // org1 crashes after the propose is in flight and recovers later; the
    // reliable layer plus persisted run state complete the run.
    let mut cluster = Cluster::new(2, 60);
    cluster.setup_object("counter", counter_factory);
    let t0 = cluster.net.now();
    // Slow links so the crash window is easy to hit.
    cluster
        .net
        .set_default_plan(FaultPlan::new().delay(TimeMs(10), TimeMs(10)));
    cluster.net.crash_at(t0 + TimeMs(5), party(1));
    cluster.net.recover_at(t0 + TimeMs(2_000), party(1));
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(5), ctx).unwrap()
    });
    cluster.run();
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(1, "counter")), 5);
    assert_eq!(dec(&cluster.state(0, "counter")), 5);
}

#[test]
fn recipient_crash_after_respond_before_decide_recovers() {
    // Crash in the window between sending m2 and receiving m3: the
    // persisted active run lets the recovered node accept the decide.
    let mut cluster = Cluster::new(2, 61);
    cluster.setup_object("counter", counter_factory);
    let t0 = cluster.net.now();
    // org0→org1 fast, org1→org0 slow: m1 arrives quickly, m2 crawls back,
    // and m3 arrives while org1 is down.
    cluster.net.set_link_plan(
        party(1),
        party(0),
        FaultPlan::new().delay(TimeMs(50), TimeMs(50)),
    );
    cluster.net.crash_at(t0 + TimeMs(30), party(1)); // after m1+respond
    cluster.net.recover_at(t0 + TimeMs(3_000), party(1));
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(9), ctx).unwrap()
    });
    cluster.run();
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(1, "counter")), 9);
}

#[test]
fn proposer_crash_midrun_recovers_and_finishes() {
    let mut cluster = Cluster::new(3, 62);
    cluster.setup_object("counter", counter_factory);
    let t0 = cluster.net.now();
    cluster
        .net
        .set_default_plan(FaultPlan::new().delay(TimeMs(20), TimeMs(20)));
    // Crash the proposer before responses can arrive; recover later.
    cluster.net.crash_at(t0 + TimeMs(25), party(0));
    cluster.net.recover_at(t0 + TimeMs(5_000), party(0));
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(7), ctx).unwrap()
    });
    cluster.run();
    for who in 0..3 {
        assert!(
            cluster.outcome(who, &run).is_some(),
            "org{who} should learn the outcome after recovery"
        );
        assert_eq!(dec(&cluster.state(who, "counter")), 7);
    }
}

#[test]
fn recovered_party_keeps_agreed_state_from_checkpoint() {
    let mut cluster = Cluster::new(2, 63);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(41));
    let t0 = cluster.net.now();
    cluster.net.crash_at(t0 + TimeMs(1), party(1));
    cluster.net.recover_at(t0 + TimeMs(100), party(1));
    cluster.run();
    // The checkpointed state and membership survive the crash.
    assert_eq!(dec(&cluster.state(1, "counter")), 41);
    assert_eq!(cluster.members(1, "counter").len(), 2);
    // And the recovered party keeps coordinating.
    let run = cluster.propose(1, "counter", enc(50));
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
}

#[test]
fn subject_crash_during_connect_retries_and_joins() {
    let mut cluster = Cluster::new(2, 64);
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let t0 = cluster.net.now();
    cluster
        .net
        .set_default_plan(FaultPlan::new().delay(TimeMs(30), TimeMs(30)));
    cluster.net.crash_at(t0 + TimeMs(10), party(1));
    cluster.net.recover_at(t0 + TimeMs(2_000), party(1));
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    assert!(cluster.net.node(&party(1)).is_member(&ObjectId::new("c")));
    assert_eq!(cluster.members(0, "c").len(), 2);
}

#[test]
fn liveness_under_heavy_loss_and_duplication() {
    // §1: "if no party misbehaves, agreed interactions will take place
    // despite a bounded number of temporary network failures". 30% loss +
    // duplication + jitter; retransmission carries every run through.
    for seed in [70u64, 71, 72] {
        let mut cluster = Cluster::with_config(
            3,
            seed,
            b2b_core::CoordinatorConfig::default(),
            FaultPlan::new()
                .drop_rate(0.3)
                .dup_rate(0.2)
                .delay(TimeMs(1), TimeMs(40)),
        );
        cluster.setup_object("counter", counter_factory);
        for v in [3u64, 8, 21] {
            let run = cluster.propose((v % 3) as usize, "counter", enc(v));
            for who in 0..3 {
                assert!(
                    cluster
                        .outcome(who, &run)
                        .map(|o| o.is_installed())
                        .unwrap_or(false),
                    "seed {seed} value {v} org{who}: run must complete under loss"
                );
            }
        }
        for who in 0..3 {
            assert_eq!(dec(&cluster.state(who, "counter")), 21, "seed {seed}");
        }
    }
}

#[test]
fn liveness_through_a_healing_partition() {
    let mut cluster = Cluster::new(2, 73);
    cluster.setup_object("counter", counter_factory);
    let t0 = cluster.net.now();
    cluster
        .net
        .partition([party(0)], [party(1)], t0 + TimeMs(3_000));
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(4), ctx).unwrap()
    });
    // While partitioned, no outcome; after healing, it completes.
    cluster.net.run_until(t0 + TimeMs(2_000));
    assert!(cluster.outcome(0, &run).is_none());
    cluster.run();
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(1, "counter")), 4);
}

#[test]
fn deadline_aborts_blocked_run_and_rolls_back() {
    // §7 termination extension: with a configured deadline, a proposer
    // whose recipient never answers aborts instead of blocking forever.
    let config = b2b_core::CoordinatorConfig::new().run_deadline(TimeMs(1_000));
    let mut cluster = Cluster::with_config(2, 74, config, FaultPlan::default());
    cluster.setup_object("counter", counter_factory);
    let t0 = cluster.net.now();
    // org1 goes silent forever.
    cluster
        .net
        .partition([party(0)], [party(1)], t0 + TimeMs(1_000_000));
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(4), ctx).unwrap()
    });
    cluster.net.run_until(t0 + TimeMs(10_000));
    match cluster.outcome(0, &run).unwrap() {
        b2b_core::Outcome::Aborted { reason } => assert!(reason.contains("deadline")),
        other => panic!("expected abort, got {other:?}"),
    }
    // Rolled back: agreed state unchanged, object idle again.
    assert_eq!(dec(&cluster.state(0, "counter")), 0);
    assert!(!cluster
        .net
        .node(&party(0))
        .is_busy(&ObjectId::new("counter")));
}
