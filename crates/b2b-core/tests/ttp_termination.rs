//! §7 TTP-certified termination: a deadline-blocked run is resolved by an
//! appointed trusted third party — certified abort when the response set
//! is incomplete, certified decision when it is complete — and the
//! resolution reaches *every* member.

mod common;

use b2b_core::messages::WireMsg;
use b2b_core::{Coordinator, CoordinatorConfig, ObjectId, Outcome};
use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs, TimeStampAuthority};
use b2b_evidence::MemStore;
use b2b_net::intruder::{FnIntruder, InterceptAction};
use b2b_net::SimNet;
use common::{counter_factory, dec, enc};
use std::sync::Arc;

/// Builds `n` member orgs plus a separate TTP node ("notary") that is not
/// a group member but answers appeals.
struct TtpWorld {
    net: SimNet<Coordinator>,
    parties: Vec<PartyId>,
}

fn org(i: usize) -> PartyId {
    PartyId::new(format!("org{i}"))
}

fn notary() -> PartyId {
    PartyId::new("notary")
}

fn build(n: usize, seed: u64, deadline: u64) -> TtpWorld {
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for i in 0..n {
        let kp = KeyPair::generate_from_seed(100 + i as u64);
        ring.register(org(i), kp.public_key());
        keys.push(kp);
    }
    let ttp_kp = KeyPair::generate_from_seed(999);
    ring.register(notary(), ttp_kp.public_key());
    let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(888));

    let config = CoordinatorConfig::new()
        .run_deadline(TimeMs(deadline))
        .ttp(notary());

    let mut net = SimNet::new(seed);
    for (i, kp) in keys.into_iter().enumerate() {
        net.add_node(
            Coordinator::builder(org(i), kp)
                .ring(ring.clone())
                .tsa(tsa.clone())
                .config(config.clone())
                .store(Arc::new(MemStore::new()))
                .seed(seed + i as u64)
                .build(),
        );
    }
    net.add_node(
        Coordinator::builder(notary(), ttp_kp)
            .ring(ring)
            .tsa(tsa)
            .seed(seed + 100)
            .build(),
    );
    TtpWorld {
        net,
        parties: (0..n).map(org).collect(),
    }
}

fn setup_counter(world: &mut TtpWorld) {
    world.net.invoke(&org(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    for i in 1..world.parties.len() {
        let sponsor = org(i - 1);
        world.net.invoke(&org(i), move |c, ctx| {
            c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                .unwrap();
        });
        world.net.run_until_quiet(TimeMs(600_000));
    }
}

fn drive_until_outcome(
    world: &mut TtpWorld,
    who: &PartyId,
    run: &b2b_core::RunId,
    budget: TimeMs,
) -> Option<Outcome> {
    let t0 = world.net.now();
    loop {
        if let Some(o) = world.net.node(who).outcome_of(run) {
            return Some(o.clone());
        }
        if world.net.now() - t0 > budget || !world.net.step() {
            return world.net.node(who).outcome_of(run).cloned();
        }
    }
}

#[test]
fn incomplete_responses_yield_certified_abort_at_every_member() {
    let mut world = build(3, 300, 500);
    setup_counter(&mut world);
    // org2 goes silent forever (but the TTP stays reachable).
    let t0 = world.net.now();
    world
        .net
        .partition([org(2)], vec![org(0), org(1)], TimeMs(u64::MAX));
    let oid = ObjectId::new("c");
    let run = world.net.invoke(&org(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(5), ctx).unwrap()
    });
    // The proposer aborts via the TTP…
    let outcome = drive_until_outcome(&mut world, &org(0), &run, TimeMs(30_000));
    assert_eq!(
        outcome,
        Some(Outcome::Aborted {
            reason: "TTP-certified abort".into()
        })
    );
    // …and so does the *recipient* org1, which would have stayed blocked
    // under the base protocol ("all honest parties terminate").
    let outcome1 = drive_until_outcome(&mut world, &org(1), &run, TimeMs(30_000));
    assert_eq!(
        outcome1,
        Some(Outcome::Aborted {
            reason: "TTP-certified abort".into()
        })
    );
    assert!(!world.net.node(&org(1)).is_busy(&ObjectId::new("c")));
    assert_eq!(
        dec(&world
            .net
            .node(&org(1))
            .agreed_state(&ObjectId::new("c"))
            .unwrap()),
        0
    );
    let _ = t0;
}

#[test]
fn complete_responses_yield_certified_decision() {
    // The decide (m3) is suppressed by the intruder, but the proposer
    // holds the full response set: the TTP certifies the decision and all
    // members install.
    let mut world = build(3, 301, 500);
    setup_counter(&mut world);
    world.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| {
            // Drop every decide frame (reliable header is 17 bytes).
            if raw.len() > 17 && raw[0] == 0 {
                if let Some(WireMsg::Decide(_)) = WireMsg::from_bytes(&raw[17..]) {
                    return InterceptAction::Drop;
                }
            }
            InterceptAction::Deliver
        },
    ));
    let oid = ObjectId::new("c");
    let run = world.net.invoke(&org(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(7), ctx).unwrap()
    });
    // Proposer finalises locally when responses arrive (it installed), but
    // the recipients never see m3 — the deadline appeal covers them.
    for who in 0..3 {
        let outcome = drive_until_outcome(&mut world, &org(who), &run, TimeMs(60_000));
        assert!(
            outcome.map(|o| o.is_installed()).unwrap_or(false),
            "org{who} must install via the certified decision"
        );
        assert_eq!(
            dec(&world
                .net
                .node(&org(who))
                .agreed_state(&ObjectId::new("c"))
                .unwrap()),
            7
        );
    }
}

#[test]
fn resolution_from_anyone_but_the_appointed_ttp_is_rejected() {
    use b2b_core::messages::{responses_digest, TtpResolution, TtpResolutionMsg, TtpVerdict};
    use b2b_crypto::CanonicalEncode;
    // org2 forges a "certified abort" signed with its own key and delivers
    // it to org0, whose run is blocked on the partitioned org1.
    let mut world = build(3, 302, 100_000);
    setup_counter(&mut world);
    let oid = ObjectId::new("c");
    world
        .net
        .partition([org(1)], vec![org(0), org(2)], TimeMs(u64::MAX));
    let run = world.net.invoke(&org(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(3), ctx).unwrap()
    });
    world.net.run_until(world.net.now() + TimeMs(1_000));
    assert!(world.net.node(&org(0)).outcome_of(&run).is_none());

    let forged = TtpResolution {
        object: ObjectId::new("c"),
        run,
        verdict: TtpVerdict::CertifiedAbort,
        responses_digest: responses_digest(&[]),
    };
    let kp2 = KeyPair::generate_from_seed(102); // org2's key
    let sig = kp2.sign(&forged.canonical_bytes());
    let msg = TtpResolutionMsg {
        resolution: forged,
        responses: vec![],
        sig,
    };
    // Frame it manually (fresh reliable-layer epoch) and send from org2.
    let mut frame = vec![0u8];
    frame.extend_from_slice(&0xbeef_u64.to_be_bytes());
    frame.extend_from_slice(&0u64.to_be_bytes());
    frame.extend_from_slice(&[0u8; 17]); // trace context (untraced)
    frame.extend_from_slice(&WireMsg::TtpResolution(msg).to_bytes());
    world.net.invoke(&org(2), move |_c, ctx| {
        ctx.send(PartyId::new("org0"), frame);
    });
    world.net.run_until(world.net.now() + TimeMs(2_000));
    // The forged resolution did not count: the run is still blocked and a
    // bad-signature detection was recorded.
    assert!(world.net.node(&org(0)).outcome_of(&run).is_none());
    assert!(world.net.node(&org(0)).is_busy(&ObjectId::new("c")));
    assert!(world
        .net
        .node(&org(0))
        .detected()
        .iter()
        .any(|m| m.tag() == "bad-signature"));
}
