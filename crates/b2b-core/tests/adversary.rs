//! Executable version of the paper's protocol analysis (§4.4): every
//! subversion attempt the paper discusses is mounted by a Dolev-Yao
//! intruder or a misbehaving insider, and the tests assert the paper's
//! safety guarantee — *invalid state is never installed at a correctly
//! behaving party, and irrefutable evidence of misbehaviour is generated*.

mod common;

use b2b_core::messages::WireMsg;
use b2b_core::{Misbehaviour, ObjectId, Outcome};
use b2b_crypto::{PartyId, TimeMs};
use b2b_net::intruder::{FnIntruder, Injection, InterceptAction};
use common::*;

/// Reliable-layer frame header: kind(1) + epoch(8) + seq(8) + trace(17).
const FRAME_HEADER: usize = 34;

/// Decodes the protocol message inside a reliable-layer data frame.
fn peek(raw: &[u8]) -> Option<WireMsg> {
    if raw.len() <= FRAME_HEADER || raw[0] != 0 {
        return None; // ack or malformed
    }
    WireMsg::from_bytes(&raw[FRAME_HEADER..])
}

/// Re-encodes a tampered protocol message into the original frame header.
fn replace_body(raw: &[u8], msg: &WireMsg) -> Vec<u8> {
    let mut out = raw[..FRAME_HEADER].to_vec();
    out.extend_from_slice(&msg.to_bytes());
    out
}

fn has_detection(cluster: &Cluster, who: usize, tag: &str) -> bool {
    cluster
        .net
        .node(&party(who))
        .detected()
        .iter()
        .any(|m| m.tag() == tag)
}

#[test]
fn tampered_unsigned_state_body_is_detected_and_vetoed() {
    // §4.4: the Dolev-Yao intruder "is able to modify the unsigned parts
    // of any message. This results in inconsistent message content."
    let mut cluster = Cluster::new(2, 50);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Propose(mut m)) => {
                m.body = enc(999_999); // swap in a different "new state"
                InterceptAction::Replace(replace_body(raw, &WireMsg::Propose(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let run = cluster.propose(0, "counter", enc(5));
    // The recipient detected the mismatch and vetoed; nothing installed.
    match cluster.outcome(0, &run).unwrap() {
        Outcome::Invalidated { vetoers } => assert_eq!(vetoers[0].0, party(1)),
        other => panic!("expected invalidation, got {other:?}"),
    }
    assert_eq!(dec(&cluster.state(0, "counter")), 0);
    assert_eq!(dec(&cluster.state(1, "counter")), 0);
    assert!(has_detection(&cluster, 1, "body-hash-mismatch"));
}

#[test]
fn tampered_signed_part_fails_signature_and_gets_no_response() {
    let mut cluster = Cluster::new(2, 51);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Propose(mut m)) => {
                m.proposal.proposed.seq += 7; // forge the signed tuple
                InterceptAction::Replace(replace_body(raw, &WireMsg::Propose(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(5), ctx).unwrap()
    });
    cluster.run();
    // No verifiable proposal ever reached org1: it records the forgery and
    // stays silent, so the run never completes — and nothing is installed.
    assert!(cluster.outcome(1, &run).is_none());
    assert_eq!(dec(&cluster.state(1, "counter")), 0);
    assert!(has_detection(&cluster, 1, "bad-signature"));
}

#[test]
fn replayed_proposal_from_prior_run_is_rejected() {
    // §4.4: t_prop uniquely labels each run, "making it possible to detect
    // any attempt to replay messages from a prior run".
    use std::sync::{Arc, Mutex};
    let recorded: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let rec2 = recorded.clone();

    let mut cluster = Cluster::new(2, 52);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| {
            if let Some(WireMsg::Propose(_)) = peek(raw) {
                rec2.lock().unwrap().get_or_insert_with(|| raw.to_vec());
            }
            InterceptAction::Deliver
        },
    ));
    let run1 = cluster.propose(0, "counter", enc(5));
    assert!(cluster.outcome(1, &run1).unwrap().is_installed());

    // Replay the recorded m1 under a fresh reliable-layer identity (the
    // intruder controls the network, so it can re-frame at will).
    let frame = recorded.lock().unwrap().clone().expect("recorded m1");
    let mut replay = Vec::new();
    replay.push(0u8);
    replay.extend_from_slice(&0xdead_beef_u64.to_be_bytes());
    replay.extend_from_slice(&0u64.to_be_bytes());
    // A wholesale replay keeps the recorded trace context and body.
    replay.extend_from_slice(&frame[17..]);
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, to: &PartyId, _raw: &[u8], _n| {
            if to.as_str() == "org1" {
                InterceptAction::Inject(vec![Injection {
                    from: PartyId::new("org0"),
                    to: to.clone(),
                    payload: replay.clone(),
                    after: TimeMs(5),
                }])
            } else {
                InterceptAction::Deliver
            }
        },
    ));
    // Any traffic to org1 triggers one replay injection; cause some.
    let run2 = cluster.propose(0, "counter", enc(6));
    assert!(cluster.outcome(0, &run2).unwrap().is_installed());
    cluster.run();
    // The replayed m1 belongs to a run org1 completed, so it is answered
    // idempotently with the ORIGINAL signed response (replay and honest
    // crash-recovery redelivery are indistinguishable; minting a fresh
    // rejection would create false evidence of equivocation). The §4.4
    // property that matters holds either way: the replay cannot change
    // state — only the legitimate runs are reflected.
    assert_eq!(dec(&cluster.state(1, "counter")), 6);
    assert_eq!(dec(&cluster.state(0, "counter")), 6);
}

#[test]
fn replayed_tuple_in_a_fresh_proposal_is_rejected() {
    // The other §4.4 replay face: a *new* proposal reusing an
    // already-seen tuple (seq, H(random)) is detected outright.
    use std::sync::{Arc, Mutex};
    let recorded: Arc<Mutex<Option<WireMsg>>> = Arc::new(Mutex::new(None));
    let rec = recorded.clone();
    let mut cluster = Cluster::new(2, 59);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| {
            if let Some(WireMsg::Propose(m)) = peek(raw) {
                rec.lock().unwrap().get_or_insert(WireMsg::Propose(m));
            }
            InterceptAction::Deliver
        },
    ));
    let run1 = cluster.propose(0, "counter", enc(5));
    assert!(cluster.outcome(1, &run1).unwrap().is_installed());

    // Craft a NEW proposal (different auth commitment → different run id)
    // that reuses run1's proposal tuple.
    let stolen = {
        let guard = recorded.lock().unwrap();
        let Some(WireMsg::Propose(m)) = guard.clone() else {
            panic!("no template");
        };
        m
    };
    let mut forged = stolen.clone();
    forged.proposal.auth_commit = b2b_crypto::sha256(b"different-commitment");
    // (The signature is now wrong too, but craft the frame anyway: a
    // correctly signed variant would need org0's key — instead replay the
    // scenario at the protocol level from org0 itself is impossible via
    // the public API, so assert the tuple-reuse detection through the
    // recipient's checks using the original signature: deliver the stolen
    // m1 unmodified under a fresh epoch AFTER org1 has moved past it.)
    let mut frame = vec![0u8];
    frame.extend_from_slice(&0xabad1dea_u64.to_be_bytes());
    frame.extend_from_slice(&0u64.to_be_bytes());
    frame.extend_from_slice(&WireMsg::Propose(stolen).to_bytes());
    // Move the group forward so run1 is no longer the latest state…
    let run2 = cluster.propose(0, "counter", enc(7));
    assert!(cluster.outcome(1, &run2).unwrap().is_installed());
    // …then inject the old m1. Its predecessor and seq are now stale, and
    // its tuple was already seen: org1 must reject, state must not move.
    cluster.net.invoke(&party(0), move |_c, ctx| {
        ctx.send(party(1), frame);
    });
    cluster.run();
    assert_eq!(dec(&cluster.state(1, "counter")), 7);
    let _ = forged;
}

#[test]
fn omitted_decide_blocks_recipient_but_never_corrupts_it() {
    // §4.4: "If the proposer fails to send m3, all members of the
    // recipient set hold evidence that the protocol run is active" — the
    // run blocks; nothing invalid is installed.
    let mut cluster = Cluster::new(3, 53);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, to: &PartyId, raw: &[u8], _n| {
            if to.as_str() == "org2" && matches!(peek(raw), Some(WireMsg::Decide(_))) {
                InterceptAction::Drop
            } else {
                InterceptAction::Deliver
            }
        },
    ));
    let run = cluster.propose(0, "counter", enc(5));
    // org0 and org1 complete; org2 is selectively starved of m3.
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
    assert!(cluster.outcome(1, &run).unwrap().is_installed());
    assert!(cluster.outcome(2, &run).is_none());
    // org2 holds evidence the run is active (its replica is busy) and has
    // not installed anything.
    assert!(cluster
        .net
        .node(&party(2))
        .is_busy(&ObjectId::new("counter")));
    assert_eq!(dec(&cluster.state(2, "counter")), 0);
}

#[test]
fn forged_authenticator_in_decide_is_detected() {
    let mut cluster = Cluster::new(2, 54);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Decide(mut m)) => {
                m.authenticator = [0xAB; 32];
                InterceptAction::Replace(replace_body(raw, &WireMsg::Decide(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let run = cluster.propose(0, "counter", enc(5));
    // Proposer installed (it holds all accepting responses), but the
    // recipient rejects the forged decide: no install, evidence logged.
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
    assert!(cluster.outcome(1, &run).is_none());
    assert_eq!(dec(&cluster.state(1, "counter")), 0);
    assert!(has_detection(&cluster, 1, "authenticator-mismatch"));
}

#[test]
fn response_removed_from_decide_aggregation_is_detected() {
    // A dishonest proposer (or intruder) presenting an incomplete response
    // set cannot make a recipient install.
    let mut cluster = Cluster::new(3, 55);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, to: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Decide(mut m)) if to.as_str() == "org1" => {
                m.responses
                    .retain(|r| r.response.responder.as_str() == "org1");
                InterceptAction::Replace(replace_body(raw, &WireMsg::Decide(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let run = cluster.propose(0, "counter", enc(5));
    assert!(cluster.outcome(2, &run).unwrap().is_installed());
    assert!(cluster.outcome(1, &run).is_none());
    assert_eq!(dec(&cluster.state(1, "counter")), 0);
    assert!(has_detection(&cluster, 1, "inconsistent-decide"));
}

#[test]
fn own_response_swapped_in_decide_is_detected_as_misrepresentation() {
    // Flip the victim's recorded decision by substituting another party's
    // (validly signed) response in its slot — the victim notices its own
    // response is missing/misrepresented.
    let mut cluster = Cluster::new(3, 56);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, to: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Decide(mut m)) if to.as_str() == "org1" => {
                // Duplicate org2's response over org1's slot.
                let donor = m
                    .responses
                    .iter()
                    .find(|r| r.response.responder.as_str() == "org2")
                    .cloned();
                if let Some(donor) = donor {
                    m.responses = vec![donor.clone(), donor];
                }
                InterceptAction::Replace(replace_body(raw, &WireMsg::Decide(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    let run = cluster.propose(0, "counter", enc(5));
    assert!(cluster.outcome(1, &run).is_none());
    assert_eq!(dec(&cluster.state(1, "counter")), 0);
    assert!(has_detection(&cluster, 1, "inconsistent-decide"));
}

#[test]
fn fabricated_propose_without_key_is_ignored() {
    // An intruder without org0's signing key fabricates an entire propose.
    let mut cluster = Cluster::new(2, 57);
    cluster.setup_object("counter", counter_factory);
    // Capture a genuine propose to use as a template, then fire a forged
    // variant claiming a different state.
    use std::sync::{Arc, Mutex};
    let template: Arc<Mutex<Option<WireMsg>>> = Arc::new(Mutex::new(None));
    let t2 = template.clone();
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| {
            if let Some(WireMsg::Propose(m)) = peek(raw) {
                t2.lock().unwrap().get_or_insert(WireMsg::Propose(m));
            }
            InterceptAction::Deliver
        },
    ));
    let run1 = cluster.propose(0, "counter", enc(5));
    assert!(cluster.outcome(1, &run1).unwrap().is_installed());

    let forged = {
        let guard = template.lock().unwrap();
        let Some(WireMsg::Propose(m)) = guard.clone() else {
            panic!("no template")
        };
        let mut m = m;
        m.proposal.proposed.seq += 1;
        m.proposal.proposed.state_hash = b2b_crypto::sha256(&enc(666));
        m.body = enc(666);
        // The old signature cannot cover the new proposal content.
        WireMsg::Propose(m)
    };
    let mut frame = Vec::new();
    frame.push(0u8);
    frame.extend_from_slice(&0xfeed_u64.to_be_bytes());
    frame.extend_from_slice(&0u64.to_be_bytes());
    frame.extend_from_slice(&[0u8; 17]); // trace context (untraced)
    frame.extend_from_slice(&forged.to_bytes());
    cluster.net.set_intruder(FnIntruder::new(
        move |_f: &PartyId, to: &PartyId, _raw: &[u8], _n| {
            if to.as_str() == "org1" {
                InterceptAction::Inject(vec![Injection {
                    from: PartyId::new("org0"),
                    to: to.clone(),
                    payload: frame.clone(),
                    after: TimeMs(1),
                }])
            } else {
                InterceptAction::Deliver
            }
        },
    ));
    let run2 = cluster.propose(0, "counter", enc(7));
    cluster.run();
    assert!(cluster.outcome(1, &run2).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(1, "counter")), 7);
    assert!(has_detection(&cluster, 1, "bad-signature"));
}

#[test]
fn misbehaviour_evidence_is_persisted_in_the_log() {
    let mut cluster = Cluster::new(2, 58);
    cluster.setup_object("counter", counter_factory);
    cluster.net.set_intruder(FnIntruder::new(
        |_f: &PartyId, _t: &PartyId, raw: &[u8], _n| match peek(raw) {
            Some(WireMsg::Propose(mut m)) => {
                m.body = enc(31337);
                InterceptAction::Replace(replace_body(raw, &WireMsg::Propose(m)))
            }
            _ => InterceptAction::Deliver,
        },
    ));
    cluster.propose(0, "counter", enc(5));
    use b2b_evidence::{EvidenceKind, EvidenceStore};
    let records = cluster.stores[&party(1)].records();
    let mis: Vec<_> = records
        .iter()
        .filter(|r| r.kind == EvidenceKind::Misbehaviour)
        .collect();
    assert!(!mis.is_empty(), "misbehaviour must be logged as evidence");
    let parsed: Misbehaviour = serde_json::from_slice(&mis[0].payload).unwrap();
    assert_eq!(parsed.tag(), "body-hash-mismatch");
}

#[test]
fn poisoned_sequence_number_cannot_brick_future_proposals() {
    // A malicious member proposes seq = u64::MAX (validly signed). The
    // proposal is rejected — and must not poison the victim's own
    // sequence numbering (which is derived from the agreed state only).
    use b2b_core::messages::{Proposal, ProposalKind, ProposeMsg};
    use b2b_crypto::{sha256, CanonicalEncode, KeyPair, Signer};
    let mut cluster = Cluster::new(2, 65);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(5));

    // Craft the poisoned m1 with org1's (harness-seeded) key.
    let org1_key = KeyPair::generate_from_seed(1001);
    let group = cluster
        .net
        .node(&party(0))
        .group(&ObjectId::new("counter"))
        .unwrap();
    let agreed = cluster
        .net
        .node(&party(0))
        .agreed_id(&ObjectId::new("counter"))
        .unwrap();
    let body = enc(1_000_000);
    let proposal = Proposal {
        object: ObjectId::new("counter"),
        proposer: party(1),
        group,
        prev: agreed,
        proposed: b2b_core::StateId {
            seq: u64::MAX,
            rand_hash: sha256(b"poison"),
            state_hash: sha256(&body),
        },
        auth_commit: sha256(b"poison-auth"),
        kind: ProposalKind::Overwrite,
    };
    let sig = org1_key.sign(&proposal.canonical_bytes());
    let m1 = WireMsg::Propose(ProposeMsg {
        proposal,
        body,
        sig,
        memo: Default::default(),
    });
    let mut frame = vec![0u8];
    frame.extend_from_slice(&0xdead_u64.to_be_bytes());
    frame.extend_from_slice(&0u64.to_be_bytes());
    frame.extend_from_slice(&[0u8; 17]); // trace context (untraced)
    frame.extend_from_slice(&m1.to_bytes());
    cluster.net.invoke(&party(1), move |_c, ctx| {
        ctx.send(party(0), frame);
    });
    cluster.run();
    // Rejected — the exact-increment rule catches the absurd seq…
    assert_eq!(dec(&cluster.state(0, "counter")), 5);
    assert!(has_detection(&cluster, 0, "sequence-not-greater"));
    // …and the victim's future proposals still work (no overflow/brick).
    let run = cluster.propose(0, "counter", enc(9));
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(1, "counter")), 9);
}
