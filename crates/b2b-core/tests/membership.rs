//! Integration tests of the connection and disconnection protocols (§4.5).

mod common;

use b2b_core::{ConnectStatus, Decision, ObjectId, SharedCell};
use common::*;

#[test]
fn sequential_joins_agree_on_membership_and_sponsor() {
    let mut cluster = Cluster::new(4, 30);
    cluster.setup_object("counter", counter_factory);
    let expected: Vec<_> = (0..4).map(party).collect();
    for who in 0..4 {
        assert_eq!(cluster.members(who, "counter"), expected);
        assert_eq!(
            cluster
                .net
                .node(&party(who))
                .sponsor_of(&ObjectId::new("counter")),
            Some(party(3)),
            "sponsor is the most recently joined member"
        );
    }
    // Group identifiers agree everywhere.
    let gid = cluster.net.node(&party(0)).group(&ObjectId::new("counter"));
    for who in 1..4 {
        assert_eq!(
            cluster
                .net
                .node(&party(who))
                .group(&ObjectId::new("counter")),
            gid
        );
    }
}

#[test]
fn joiner_receives_current_agreed_state() {
    let mut cluster = Cluster::new(3, 31);
    // Set up a 2-party group first, mutate state, then connect org2.
    let oid = ObjectId::new("counter");
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("counter"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(
            ObjectId::new("counter"),
            Box::new(counter_factory),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    cluster.run();
    cluster.propose(0, "counter", enc(77));

    let sponsor = party(1); // most recently joined
    cluster.net.invoke(&party(2), move |c, ctx| {
        c.request_connect(
            ObjectId::new("counter"),
            Box::new(counter_factory),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    cluster.run();
    assert!(cluster.net.node(&party(2)).is_member(&oid));
    assert_eq!(dec(&cluster.state(2, "counter")), 77);
    // And the joiner participates in validation immediately.
    let run = cluster.propose(2, "counter", enc(80));
    assert!(cluster.outcome(2, &run).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(0, "counter")), 80);
}

#[test]
fn connect_vetoed_by_member_is_indistinguishable_from_immediate_reject() {
    // org0 registers with a validator that rejects org2's admission; org1
    // joins fine; org2's request is vetoed by org0.
    let mut cluster = Cluster::new(3, 32);
    let picky = || {
        let cell = SharedCell::new(0u64);
        struct Picky(SharedCell<u64>);
        impl b2b_core::B2BObject for Picky {
            fn get_state(&self) -> Vec<u8> {
                self.0.get_state()
            }
            fn apply_state(&mut self, s: &[u8]) {
                self.0.apply_state(s)
            }
            fn validate_state(&self, w: &b2b_crypto::PartyId, c: &[u8], p: &[u8]) -> Decision {
                self.0.validate_state(w, c, p)
            }
            fn validate_connect(&self, subject: &b2b_crypto::PartyId) -> Decision {
                if subject.as_str() == "org2" {
                    Decision::reject("org2 not welcome")
                } else {
                    Decision::accept()
                }
            }
        }
        Box::new(Picky(cell)) as Box<dyn b2b_core::B2BObject>
    };
    cluster.net.invoke(&party(0), move |c, _| {
        c.register_object(ObjectId::new("obj"), Box::new(picky))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(
            ObjectId::new("obj"),
            Box::new(counter_factory),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    cluster.run();
    assert!(cluster.net.node(&party(1)).is_member(&ObjectId::new("obj")));

    // org2 asks the legitimate sponsor (org1, newest); org0 vetoes.
    let sponsor = party(1);
    cluster.net.invoke(&party(2), move |c, ctx| {
        c.request_connect(
            ObjectId::new("obj"),
            Box::new(counter_factory),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    cluster.run();
    assert_eq!(
        cluster
            .net
            .node(&party(2))
            .connect_status(&ObjectId::new("obj")),
        Some(&ConnectStatus::Rejected)
    );
    // Membership unchanged at the insiders.
    assert_eq!(cluster.members(0, "obj").len(), 2);
    assert_eq!(cluster.members(1, "obj").len(), 2);
}

#[test]
fn immediate_rejection_by_sponsor() {
    // The sponsor itself refuses: same observable result for the subject.
    let mut cluster = Cluster::new(2, 33);
    let picky = || {
        struct NoOne(SharedCell<u64>);
        impl b2b_core::B2BObject for NoOne {
            fn get_state(&self) -> Vec<u8> {
                self.0.get_state()
            }
            fn apply_state(&mut self, s: &[u8]) {
                self.0.apply_state(s)
            }
            fn validate_state(&self, w: &b2b_crypto::PartyId, c: &[u8], p: &[u8]) -> Decision {
                self.0.validate_state(w, c, p)
            }
            fn validate_connect(&self, _subject: &b2b_crypto::PartyId) -> Decision {
                Decision::reject("closed group")
            }
        }
        Box::new(NoOne(SharedCell::new(0u64))) as Box<dyn b2b_core::B2BObject>
    };
    cluster.net.invoke(&party(0), move |c, _| {
        c.register_object(ObjectId::new("obj"), Box::new(picky))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(
            ObjectId::new("obj"),
            Box::new(counter_factory),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    cluster.run();
    assert_eq!(
        cluster
            .net
            .node(&party(1))
            .connect_status(&ObjectId::new("obj")),
        Some(&ConnectStatus::Rejected)
    );
}

#[test]
fn voluntary_disconnect_of_sponsor_rotates_sponsorship() {
    let mut cluster = Cluster::new(3, 34);
    cluster.setup_object("counter", counter_factory);
    // org2 (the sponsor) leaves; the disconnect sponsor is org1.
    cluster.net.invoke(&party(2), |c, ctx| {
        c.request_disconnect(&ObjectId::new("counter"), ctx)
            .unwrap();
    });
    cluster.run();
    assert!(!cluster
        .net
        .node(&party(2))
        .is_member(&ObjectId::new("counter")));
    for who in 0..2 {
        assert_eq!(cluster.members(who, "counter"), vec![party(0), party(1)]);
        assert_eq!(
            cluster
                .net
                .node(&party(who))
                .sponsor_of(&ObjectId::new("counter")),
            Some(party(1))
        );
    }
    // The remaining pair still coordinates.
    let run = cluster.propose(0, "counter", enc(9));
    assert!(cluster.outcome(1, &run).unwrap().is_installed());
}

#[test]
fn two_party_disconnect_leaves_singleton() {
    let mut cluster = Cluster::new(2, 35);
    cluster.setup_object("counter", counter_factory);
    cluster.net.invoke(&party(1), |c, ctx| {
        c.request_disconnect(&ObjectId::new("counter"), ctx)
            .unwrap();
    });
    cluster.run();
    assert!(!cluster
        .net
        .node(&party(1))
        .is_member(&ObjectId::new("counter")));
    assert_eq!(cluster.members(0, "counter"), vec![party(0)]);
    // Singleton keeps working (trivially unanimous).
    let run = cluster.propose(0, "counter", enc(50));
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
}

#[test]
fn eviction_excludes_subject_from_the_vote() {
    let mut cluster = Cluster::new(3, 36);
    cluster.setup_object("counter", counter_factory);
    let before = cluster.net.node(&party(1)).messages_sent();
    cluster.net.invoke(&party(0), |c, ctx| {
        c.request_evict(&ObjectId::new("counter"), vec![party(1)], ctx)
            .unwrap();
    });
    cluster.run();
    // org1 sent nothing during its own eviction.
    assert_eq!(cluster.net.node(&party(1)).messages_sent(), before);
    for who in [0usize, 2] {
        assert_eq!(cluster.members(who, "counter"), vec![party(0), party(2)]);
    }
    // The evictee still believes it is a member (it was not consulted)…
    assert!(cluster
        .net
        .node(&party(1))
        .is_member(&ObjectId::new("counter")));
    // …but can no longer get anything installed: the remaining group's
    // identifiers have moved on.
    let oid = ObjectId::new("counter");
    let run = cluster.net.invoke(&party(1), move |c, ctx| {
        c.propose_overwrite(&oid, enc(99), ctx).unwrap()
    });
    cluster.run();
    assert!(
        !cluster
            .outcome(1, &run)
            .map(|o| o.is_installed())
            .unwrap_or(false),
        "evictee cannot impose state on the new group"
    );
    assert_eq!(dec(&cluster.state(0, "counter")), 0);
}

#[test]
fn subset_eviction_forms_cooperating_subgroup() {
    let mut cluster = Cluster::new(4, 37);
    cluster.setup_object("counter", counter_factory);
    cluster.net.invoke(&party(0), |c, ctx| {
        c.request_evict(&ObjectId::new("counter"), vec![party(1), party(2)], ctx)
            .unwrap();
    });
    cluster.run();
    for who in [0usize, 3] {
        assert_eq!(cluster.members(who, "counter"), vec![party(0), party(3)]);
    }
    // The remaining subgroup makes forward progress (§4.5.4).
    let run = cluster.propose(3, "counter", enc(5));
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
}

#[test]
fn membership_requests_queue_behind_active_run() {
    // A connect request arriving while a state run is active is deferred,
    // not lost (§4.5.1 sponsor blocking).
    let mut cluster = Cluster::new(2, 38);
    cluster.setup_object("counter", counter_factory);
    // Partition org1 so the state run stays active at org0 (no response).
    cluster
        .net
        .partition([party(0)], [party(1)], b2b_crypto::TimeMs(5_000));
    let oid = ObjectId::new("counter");
    cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(1), ctx).unwrap();
    });
    // org2 does not exist in this 2-party cluster; instead verify the
    // sponsor queues a disconnect request from org1 arriving later. Use
    // run-until to let the partition heal and everything drain.
    cluster.run();
    // After healing, the run completes and the object is idle again.
    assert!(!cluster
        .net
        .node(&party(0))
        .is_busy(&ObjectId::new("counter")));
    assert_eq!(dec(&cluster.state(1, "counter")), 1);
}

#[test]
fn third_party_joins_while_state_run_in_flight_queues() {
    let mut cluster = Cluster::new(3, 39);
    // Two-party group; org2 will ask to join exactly while a state run is
    // active at the sponsor.
    cluster.net.invoke(&party(0), |c, _| {
        c.register_object(ObjectId::new("c"), Box::new(counter_factory))
            .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();

    // Slow the org0→org1 link so the state run stays in flight.
    cluster.net.set_link_plan(
        party(0),
        party(1),
        b2b_net::FaultPlan::new().delay(b2b_crypto::TimeMs(500), b2b_crypto::TimeMs(500)),
    );
    let oid = ObjectId::new("c");
    let t0 = cluster.net.now();
    cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_overwrite(&oid, enc(5), ctx).unwrap();
    });
    // m1 reaches org1 at t0+500 and the decide only at ~t0+1001, so at
    // t0+700 org1 holds an active Recipient run: a connect request arriving
    // now must be queued behind it (§4.5.1), not lost.
    cluster.net.run_until(t0 + b2b_crypto::TimeMs(700));
    let sponsor = party(1);
    cluster.net.invoke(&party(2), move |c, ctx| {
        c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
            .unwrap();
    });
    cluster.run();
    // Both the state change and the (queued) admission complete.
    assert_eq!(dec(&cluster.state(0, "c")), 5);
    assert!(cluster.net.node(&party(2)).is_member(&ObjectId::new("c")));
    assert_eq!(cluster.members(0, "c").len(), 3);
    assert_eq!(dec(&cluster.state(2, "c")), 5);
}

#[test]
fn membership_change_message_cost() {
    // Connection: request + (n−1 propose) + (n−1 respond) + (n−1 decide)
    // + welcome = 3n − 1 messages for a group growing from n to n+1.
    for n in 2..=4u64 {
        let mut cluster = Cluster::new(n as usize + 1, 40 + n);
        // Build group of n first.
        cluster.net.invoke(&party(0), |c, _| {
            c.register_object(ObjectId::new("c"), Box::new(counter_factory))
                .unwrap();
        });
        for i in 1..n as usize {
            let sponsor = party(i - 1);
            cluster.net.invoke(&party(i), move |c, ctx| {
                c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                    .unwrap();
            });
            cluster.run();
        }
        let before = cluster.total_protocol_messages();
        let sponsor = party(n as usize - 1);
        let joiner = party(n as usize);
        cluster.net.invoke(&joiner, move |c, ctx| {
            c.request_connect(ObjectId::new("c"), Box::new(counter_factory), sponsor, ctx)
                .unwrap();
        });
        cluster.run();
        let after = cluster.total_protocol_messages();
        assert_eq!(after - before, 3 * n - 1, "connect into group of {n}");
    }
}
