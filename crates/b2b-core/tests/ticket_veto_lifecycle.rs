//! Ticket lifecycle under a forced validation veto, in the two
//! non-blocking communication modes (§3.3/§5).
//!
//! Deferred-synchronous and asynchronous submissions are optimistic: the
//! caller's working state moves ahead of the group agreement, and a peer
//! veto must reconcile both modes to the SAME outcome — proposal
//! invalidated, agreed state unchanged on every member, vetoer and
//! reason observable by the submitter. These tests pin that shared
//! reconciliation outcome at unit level (no server, simulator network),
//! and the idempotency of [`Controller::poll_status`] that the HTTP
//! `/tickets/:id` endpoint builds on: draining the event stream consumes
//! a completion exactly once, polling the status never does.

mod common;

use b2b_core::controller::{CoordAccess, Mode};
use b2b_core::{
    Controller, CoordError, Coordinator, CoordEventKind, CoordTicket, ObjectId, SimAccess,
    TicketId, TicketStatus,
};
use b2b_crypto::{KeyPair, KeyRing, Signer};
use b2b_net::SimNet;
use common::*;
use std::time::Duration;

fn sim_pair(seed: u64) -> (SimAccess, SimAccess) {
    let mut ring = KeyRing::new();
    let kp0 = KeyPair::generate_from_seed(1);
    let kp1 = KeyPair::generate_from_seed(2);
    ring.register(party(0), kp0.public_key());
    ring.register(party(1), kp1.public_key());
    let mut net = SimNet::new(seed);
    net.add_node(
        Coordinator::builder(party(0), kp0)
            .ring(ring.clone())
            .seed(seed)
            .build(),
    );
    net.add_node(
        Coordinator::builder(party(1), kp1)
            .ring(ring)
            .seed(seed + 1)
            .build(),
    );
    let shared = SimAccess::shared(net);
    (
        SimAccess::new(shared.clone(), party(0)),
        SimAccess::new(shared, party(1)),
    )
}

/// Registers the counter at party 0, joins party 1, and installs 10 so a
/// later proposal of 1 is a guaranteed decrease-veto from party 1.
fn setup_at_ten(a: &SimAccess, b: &SimAccess) {
    a.with(|c, _| {
        c.register_object(ObjectId::new("counter"), Box::new(counter_factory))
            .unwrap();
    });
    let ctrl_b = Controller::new(b.clone(), ObjectId::new("counter"));
    ctrl_b
        .connect(Box::new(counter_factory), party(0))
        .expect("connect succeeds");
    let mut ctrl = Controller::new(a.clone(), ObjectId::new("counter"));
    ctrl.sync_coord(enc(10)).expect("install 10");
}

/// Submits the forbidden decrease as an update delta in `mode` and
/// returns its ticket (queued through `submit_update`, the path real
/// concurrent clients exercise).
fn submit_decrease(a: &SimAccess, mode: Mode) -> (Controller<SimAccess>, CoordTicket) {
    let mut ctrl = Controller::new(a.clone(), ObjectId::new("counter")).mode(mode);
    ctrl.enter().unwrap();
    ctrl.update(enc(1)).unwrap();
    let ticket = ctrl.leave().unwrap().expect("update yields a ticket");
    (ctrl, ticket)
}

fn assert_vetoed_by_party1(status: &TicketStatus) {
    match status {
        TicketStatus::Invalidated { vetoers } => {
            assert_eq!(vetoers.len(), 1, "exactly one vetoer: {vetoers:?}");
            assert_eq!(vetoers[0].0, party(1));
            assert!(
                vetoers[0].1.contains("counter may not decrease"),
                "veto reason must carry the validator's words: {:?}",
                vetoers[0].1
            );
        }
        other => panic!("expected Invalidated, got {other:?}"),
    }
}

#[test]
fn deferred_veto_reports_reason_and_rolls_back() {
    let (a, b) = sim_pair(120);
    setup_at_ten(&a, &b);
    let (ctrl, ticket) = submit_decrease(&a, Mode::DeferredSynchronous);

    // Nothing has been driven yet: the ticket is in flight, not unknown.
    assert!(
        matches!(ctrl.poll_status(ticket), TicketStatus::Pending { .. }),
        "undriven ticket reports Pending"
    );

    // The commit reconciles: invalidated, with the vetoer's reason.
    match ctrl.coord_commit(ticket) {
        Err(CoordError::Invalidated { vetoers }) => {
            assert_eq!(vetoers[0].0, party(1));
            assert!(vetoers[0].1.contains("counter may not decrease"));
        }
        other => panic!("expected Invalidated, got {other:?}"),
    }

    // The agreed state never moved, on either member.
    assert_eq!(dec(&ctrl.current_state().unwrap()), 10);
    assert_eq!(
        b.with(|c, _| c.agreed_state(&ObjectId::new("counter"))),
        Some(enc(10))
    );

    // Polling after completion is idempotent: same terminal status,
    // veto reasons included, on every call.
    let first = ctrl.poll_status(ticket);
    assert_vetoed_by_party1(&first);
    assert_eq!(ctrl.poll_status(ticket), first);
    assert_eq!(ctrl.poll_status(ticket), first);
}

#[test]
fn async_veto_completes_via_events_and_status_stays_pollable() {
    let (a, b) = sim_pair(121);
    setup_at_ten(&a, &b);
    let (ctrl, ticket) = submit_decrease(&a, Mode::Asynchronous);

    // Asynchronous mode returned immediately; drive until the outcome
    // lands.
    let id = ticket.ticket;
    let done = a.wait(Duration::from_secs(5), move |c| {
        c.outcome_of_ticket(&id).is_some()
    });
    assert!(done, "async outcome must arrive");

    // Completion is signalled once through the coordCallback stream…
    let events = ctrl.take_events();
    assert!(events.iter().any(|e| matches!(
        &e.event,
        CoordEventKind::Completed { outcome } if !outcome.is_installed()
    )));
    // …and the stream is drained afterwards.
    assert!(ctrl.take_events().is_empty());

    // But the status poll keeps answering — the /tickets/:id contract.
    let first = ctrl.poll_status(ticket);
    assert_vetoed_by_party1(&first);
    assert_eq!(ctrl.poll_status(ticket), first);

    // Rollback: agreed state unchanged everywhere.
    assert_eq!(dec(&ctrl.current_state().unwrap()), 10);
    assert_eq!(
        b.with(|c, _| c.agreed_state(&ObjectId::new("counter"))),
        Some(enc(10))
    );
}

#[test]
fn deferred_and_async_share_the_reconciliation_outcome() {
    // The paper's modes differ in WHEN the caller learns the outcome,
    // never in WHAT the outcome is: the same vetoed update must
    // reconcile identically whichever mode submitted it.
    let (a, b) = sim_pair(122);
    setup_at_ten(&a, &b);

    let (ctrl_d, ticket_d) = submit_decrease(&a, Mode::DeferredSynchronous);
    let _ = ctrl_d.coord_commit(ticket_d);
    let status_d = ctrl_d.poll_status(ticket_d);

    let (ctrl_a, ticket_a) = submit_decrease(&a, Mode::Asynchronous);
    let id = ticket_a.ticket;
    assert!(a.wait(Duration::from_secs(5), move |c| {
        c.outcome_of_ticket(&id).is_some()
    }));
    let status_a = ctrl_a.poll_status(ticket_a);

    assert_vetoed_by_party1(&status_d);
    assert_eq!(
        status_d, status_a,
        "deferred and asynchronous must reconcile to the same outcome"
    );
    assert_eq!(dec(&ctrl_d.current_state().unwrap()), 10);
    assert_eq!(
        b.with(|c, _| c.agreed_state(&ObjectId::new("counter"))),
        Some(enc(10))
    );
}

#[test]
fn unknown_tickets_report_unknown_not_pending() {
    let (a, b) = sim_pair(123);
    setup_at_ten(&a, &b);
    let ctrl = Controller::new(a, ObjectId::new("counter"));
    let bogus = CoordTicket {
        ticket: TicketId(u64::MAX),
    };
    assert_eq!(ctrl.poll_status(bogus), TicketStatus::Unknown);
    assert!(!TicketStatus::Unknown.is_terminal());
    drop(b);
}
