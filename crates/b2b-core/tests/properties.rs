//! Randomized tests of the middleware's core invariants: replica
//! convergence under arbitrary workloads, safety of identifier tuples, and
//! canonical-encoding injectivity.
//!
//! These were property-based (proptest) tests; the offline build vendors no
//! proptest, so each property runs as a seeded deterministic loop instead.

mod common;

use b2b_core::messages::{Proposal, ProposalKind};
use b2b_core::{members_digest, GroupId, ObjectId, StateId};
use b2b_crypto::{sha256, CanonicalEncode, PartyId};
use common::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect()
}

fn word(rng: &mut StdRng, min_len: usize, max_len: usize) -> String {
    let len = rng.gen_range(min_len..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u32) as u8) as char)
        .collect()
}

fn word_list(rng: &mut StdRng, max_items: usize) -> Vec<String> {
    let n = rng.gen_range(1..=max_items);
    (0..n).map(|_| word(rng, 1, 6)).collect()
}

/// Whatever interleaving of valid/invalid proposals from whichever
/// parties, all replicas converge to identical state and identical
/// agreed tuples, and only policy-respecting values are ever installed.
#[test]
fn replicas_always_converge() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xC04 ^ case);
        let seed = rng.gen_range(0..5_000u64);
        let n_ops = rng.gen_range(1..8usize);
        let ops: Vec<(usize, u64)> = (0..n_ops)
            .map(|_| (rng.gen_range(0..3usize), rng.gen_range(0..1_000u64)))
            .collect();

        let mut cluster = Cluster::new(3, seed);
        cluster.setup_object("counter", counter_factory);
        let mut expected = 0u64;
        for (who, value) in ops {
            cluster.propose(who, "counter", enc(value));
            // A value installs iff it respects the grow-only policy and is
            // not a null transition.
            if value > expected {
                expected = value;
            }
        }
        let states: Vec<u64> = (0..3).map(|w| dec(&cluster.state(w, "counter"))).collect();
        assert!(
            states.iter().all(|s| *s == states[0]),
            "diverged: {states:?}"
        );
        assert_eq!(states[0], expected);
        let ids: Vec<StateId> = (0..3)
            .map(|w| {
                cluster
                    .net
                    .node(&party(w))
                    .agreed_id(&ObjectId::new("counter"))
                    .unwrap()
            })
            .collect();
        assert!(ids.iter().all(|i| *i == ids[0]), "agreed tuples diverged");
    }
}

/// State identifier tuples identify exactly the state they hash.
#[test]
fn state_id_identifies_iff_equal() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x51A ^ case);
        let a = bytes(&mut rng, 48);
        let b = if rng.gen_bool(0.5) {
            a.clone()
        } else {
            bytes(&mut rng, 48)
        };
        let id = StateId::genesis(sha256(b"r"), &a);
        assert_eq!(id.identifies(&b), a == b);
    }
}

/// Group identifiers are injective over member lists (incl. order).
#[test]
fn group_identity_tracks_member_lists() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x6A0 ^ case);
        let xs = word_list(&mut rng, 4);
        let ys = if rng.gen_bool(0.5) {
            xs.clone()
        } else {
            word_list(&mut rng, 4)
        };
        let mx: Vec<PartyId> = xs.iter().map(PartyId::new).collect();
        let my: Vec<PartyId> = ys.iter().map(PartyId::new).collect();
        let gid = GroupId::genesis(sha256(b"r"), &mx);
        assert_eq!(gid.identifies(&my), mx == my);
        assert_eq!(members_digest(&mx) == members_digest(&my), mx == my);
    }
}

/// Canonical proposal encodings are injective across every field the
/// protocol relies on: two proposals differing anywhere get different
/// run labels.
#[test]
fn proposal_run_labels_are_injective() {
    let mk = |obj: &str, p: &str, seq: u64, s: &[u8], upd: bool| Proposal {
        object: ObjectId::new(obj),
        proposer: PartyId::new(p),
        group: GroupId::genesis(sha256(b"g"), &[PartyId::new(p)]),
        prev: StateId::genesis(sha256(b"r"), b"prev"),
        proposed: StateId {
            seq,
            rand_hash: sha256(b"n"),
            state_hash: sha256(s),
        },
        auth_commit: sha256(b"a"),
        kind: if upd {
            ProposalKind::Update {
                update_hash: sha256(s),
            }
        } else {
            ProposalKind::Overwrite
        },
    };
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x1B1 ^ case);
        let obj1 = word(&mut rng, 1, 8);
        let p1 = word(&mut rng, 1, 8);
        let seq1 = rng.gen_range(0..100u64);
        let s1 = bytes(&mut rng, 24);
        let upd1 = rng.gen_bool(0.5);
        // Half the time mutate exactly one field, otherwise keep an
        // identical twin — both branches of the iff get exercised.
        let (obj2, p2, seq2, s2, upd2) = if rng.gen_bool(0.5) {
            (obj1.clone(), p1.clone(), seq1, s1.clone(), upd1)
        } else {
            match rng.gen_range(0..5u32) {
                0 => (word(&mut rng, 1, 8), p1.clone(), seq1, s1.clone(), upd1),
                1 => (obj1.clone(), word(&mut rng, 1, 8), seq1, s1.clone(), upd1),
                2 => (
                    obj1.clone(),
                    p1.clone(),
                    rng.gen_range(0..100u64),
                    s1.clone(),
                    upd1,
                ),
                3 => (obj1.clone(), p1.clone(), seq1, bytes(&mut rng, 24), upd1),
                _ => (obj1.clone(), p1.clone(), seq1, s1.clone(), !upd1),
            }
        };
        let a = mk(&obj1, &p1, seq1, &s1, upd1);
        let b = mk(&obj2, &p2, seq2, &s2, upd2);
        assert_eq!(a.run_id() == b.run_id(), a == b);
        assert_eq!(a.canonical_bytes() == b.canonical_bytes(), a == b);
    }
}

/// The agreed sequence number never decreases, across any workload.
#[test]
fn agreed_seq_is_monotone() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5E9 ^ case);
        let seed = rng.gen_range(0..1_000u64);
        let n_ops = rng.gen_range(1..6usize);
        let ops: Vec<(usize, u64)> = (0..n_ops)
            .map(|_| (rng.gen_range(0..2usize), rng.gen_range(0..100u64)))
            .collect();

        let mut cluster = Cluster::new(2, seed);
        cluster.setup_object("counter", counter_factory);
        let mut last_seq = 0;
        for (who, value) in ops {
            cluster.propose(who, "counter", enc(value));
            let id = cluster
                .net
                .node(&party(0))
                .agreed_id(&ObjectId::new("counter"))
                .unwrap();
            assert!(id.seq >= last_seq, "agreed seq went backwards");
            last_seq = id.seq;
        }
    }
}
