//! Property-based tests (proptest) on the middleware's core invariants:
//! replica convergence under arbitrary workloads, safety of identifier
//! tuples, and canonical-encoding injectivity.

mod common;

use b2b_core::messages::{Proposal, ProposalKind};
use b2b_core::{members_digest, GroupId, ObjectId, StateId};
use b2b_crypto::{sha256, CanonicalEncode, PartyId};
use common::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever interleaving of valid/invalid proposals from whichever
    /// parties, all replicas converge to identical state and identical
    /// agreed tuples, and only policy-respecting values are ever installed.
    #[test]
    fn replicas_always_converge(
        seed in 0u64..5_000,
        ops in proptest::collection::vec((0usize..3, 0u64..1_000), 1..8),
    ) {
        let mut cluster = Cluster::new(3, seed);
        cluster.setup_object("counter", counter_factory);
        let mut expected = 0u64;
        for (who, value) in ops {
            cluster.propose(who, "counter", enc(value));
            // A value installs iff it respects the grow-only policy and is
            // not a null transition.
            if value > expected {
                expected = value;
            }
        }
        let states: Vec<u64> = (0..3).map(|w| dec(&cluster.state(w, "counter"))).collect();
        prop_assert!(states.iter().all(|s| *s == states[0]), "diverged: {states:?}");
        prop_assert_eq!(states[0], expected);
        let ids: Vec<StateId> = (0..3)
            .map(|w| cluster.net.node(&party(w)).agreed_id(&ObjectId::new("counter")).unwrap())
            .collect();
        prop_assert!(ids.iter().all(|i| *i == ids[0]), "agreed tuples diverged");
    }

    /// State identifier tuples identify exactly the state they hash.
    #[test]
    fn state_id_identifies_iff_equal(a: Vec<u8>, b: Vec<u8>) {
        let id = StateId::genesis(sha256(b"r"), &a);
        prop_assert_eq!(id.identifies(&b), a == b);
    }

    /// Group identifiers are injective over member lists (incl. order).
    #[test]
    fn group_identity_tracks_member_lists(
        xs in proptest::collection::vec("[a-z]{1,6}", 1..5),
        ys in proptest::collection::vec("[a-z]{1,6}", 1..5),
    ) {
        let mx: Vec<PartyId> = xs.iter().map(PartyId::new).collect();
        let my: Vec<PartyId> = ys.iter().map(PartyId::new).collect();
        let gid = GroupId::genesis(sha256(b"r"), &mx);
        prop_assert_eq!(gid.identifies(&my), mx == my);
        prop_assert_eq!(members_digest(&mx) == members_digest(&my), mx == my);
    }

    /// Canonical proposal encodings are injective across every field the
    /// protocol relies on: two proposals differing anywhere get different
    /// run labels.
    #[test]
    fn proposal_run_labels_are_injective(
        obj1 in "[a-z]{1,8}", obj2 in "[a-z]{1,8}",
        p1 in "[a-z]{1,8}", p2 in "[a-z]{1,8}",
        seq1 in 0u64..100, seq2 in 0u64..100,
        s1: Vec<u8>, s2: Vec<u8>,
        upd1: bool, upd2: bool,
    ) {
        let mk = |obj: &str, p: &str, seq: u64, s: &[u8], upd: bool| Proposal {
            object: ObjectId::new(obj),
            proposer: PartyId::new(p),
            group: GroupId::genesis(sha256(b"g"), &[PartyId::new(p)]),
            prev: StateId::genesis(sha256(b"r"), b"prev"),
            proposed: StateId { seq, rand_hash: sha256(b"n"), state_hash: sha256(s) },
            auth_commit: sha256(b"a"),
            kind: if upd {
                ProposalKind::Update { update_hash: sha256(s) }
            } else {
                ProposalKind::Overwrite
            },
        };
        let a = mk(&obj1, &p1, seq1, &s1, upd1);
        let b = mk(&obj2, &p2, seq2, &s2, upd2);
        prop_assert_eq!(a.run_id() == b.run_id(), a == b);
        prop_assert_eq!(a.canonical_bytes() == b.canonical_bytes(), a == b);
    }

    /// The agreed sequence number never decreases, across any workload.
    #[test]
    fn agreed_seq_is_monotone(
        seed in 0u64..1_000,
        ops in proptest::collection::vec((0usize..2, 0u64..100), 1..6),
    ) {
        let mut cluster = Cluster::new(2, seed);
        cluster.setup_object("counter", counter_factory);
        let mut last_seq = 0;
        for (who, value) in ops {
            cluster.propose(who, "counter", enc(value));
            let id = cluster.net.node(&party(0)).agreed_id(&ObjectId::new("counter")).unwrap();
            prop_assert!(id.seq >= last_seq, "agreed seq went backwards");
            last_seq = id.seq;
        }
    }
}
