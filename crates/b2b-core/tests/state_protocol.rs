//! Integration tests of the state coordination protocol (§4.3) across
//! simulated organisations.

mod common;

use b2b_core::{Decision, ObjectId, Outcome, SharedCell, Verdict};
use b2b_evidence::{EvidenceKind, EvidenceStore};
use common::*;

#[test]
fn two_party_unanimous_install() {
    let mut cluster = Cluster::new(2, 1);
    cluster.setup_object("counter", counter_factory);
    let run = cluster.propose(0, "counter", enc(5));
    for who in 0..2 {
        assert!(
            cluster.outcome(who, &run).unwrap().is_installed(),
            "org{who} should install"
        );
        assert_eq!(dec(&cluster.state(who, "counter")), 5);
    }
}

#[test]
fn two_party_veto_keeps_agreed_state() {
    let mut cluster = Cluster::new(2, 2);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(10));
    // A decrease violates the recipient's local policy.
    let run = cluster.propose(1, "counter", enc(3));
    for who in 0..2 {
        match cluster.outcome(who, &run).unwrap() {
            Outcome::Invalidated { vetoers } => {
                assert_eq!(vetoers.len(), 1);
                assert_eq!(vetoers[0].0, party(0));
                assert!(vetoers[0].1.contains("decrease"));
            }
            other => panic!("org{who}: expected invalidation, got {other:?}"),
        }
        assert_eq!(dec(&cluster.state(who, "counter")), 10);
    }
}

#[test]
fn five_party_propose_from_middle() {
    let mut cluster = Cluster::new(5, 3);
    cluster.setup_object("counter", counter_factory);
    let run = cluster.propose(2, "counter", enc(42));
    for who in 0..5 {
        assert!(cluster.outcome(who, &run).unwrap().is_installed());
        assert_eq!(dec(&cluster.state(who, "counter")), 42);
    }
}

#[test]
fn state_run_costs_3n_minus_3_messages() {
    // §7: the protocol is efficient in messages — m1, m2, m3 each cross
    // n−1 links, so one run costs exactly 3(n−1).
    for n in 2..=6 {
        let mut cluster = Cluster::new(n, 4);
        cluster.setup_object("counter", counter_factory);
        let before = cluster.total_protocol_messages();
        cluster.propose(0, "counter", enc(7));
        let after = cluster.total_protocol_messages();
        assert_eq!(
            after - before,
            3 * (n as u64 - 1),
            "state run with n={n} parties"
        );
    }
}

#[test]
fn sequential_runs_alternating_proposers() {
    let mut cluster = Cluster::new(3, 5);
    cluster.setup_object("counter", counter_factory);
    for (i, v) in [1u64, 2, 5, 9, 20].iter().enumerate() {
        let run = cluster.propose(i % 3, "counter", enc(*v));
        assert!(cluster.outcome(i % 3, &run).unwrap().is_installed());
    }
    for who in 0..3 {
        assert_eq!(dec(&cluster.state(who, "counter")), 20);
    }
}

#[test]
fn update_proposal_applies_delta_everywhere() {
    let mut cluster = Cluster::new(3, 6);
    cluster.setup_object("log", append_log_factory);
    let oid = ObjectId::new("log");
    let update = serde_json::to_vec(&"hello".to_string()).unwrap();
    let run = cluster.net.invoke(&party(1), move |c, ctx| {
        c.propose_update(&oid, update, ctx).unwrap()
    });
    cluster.run();
    for who in 0..3 {
        assert!(cluster.outcome(who, &run).unwrap().is_installed());
        let entries: Vec<String> = serde_json::from_slice(&cluster.state(who, "log")).unwrap();
        assert_eq!(entries, vec!["hello".to_string()]);
    }
}

#[test]
fn update_proposal_vetoed_by_content_rule() {
    let mut cluster = Cluster::new(2, 7);
    cluster.setup_object("log", append_log_factory);
    let oid = ObjectId::new("log");
    let update = serde_json::to_vec(&"forbidden word".to_string()).unwrap();
    let run = cluster.net.invoke(&party(0), move |c, ctx| {
        c.propose_update(&oid, update, ctx).unwrap()
    });
    cluster.run();
    assert!(matches!(
        cluster.outcome(0, &run).unwrap(),
        Outcome::Invalidated { .. }
    ));
    let entries: Vec<String> = serde_json::from_slice(&cluster.state(1, "log")).unwrap();
    assert!(entries.is_empty());
}

#[test]
fn null_transition_rejected_by_default() {
    let mut cluster = Cluster::new(2, 8);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(4));
    let run = cluster.propose(0, "counter", enc(4)); // same state again
    match cluster.outcome(0, &run).unwrap() {
        Outcome::Invalidated { vetoers } => {
            assert!(vetoers[0].1.contains("null"));
        }
        other => panic!("expected null-transition veto, got {other:?}"),
    }
}

#[test]
fn null_transition_allowed_when_configured() {
    // §4.4: "it may be legitimate to propose the re-installation of an
    // earlier state" — re-proposing the *current* state is a policy knob.
    let config = b2b_core::CoordinatorConfig::new().reject_null_transitions(false);
    let mut cluster = Cluster::with_config(2, 9, config, b2b_net::FaultPlan::default());
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(4));
    let run = cluster.propose(0, "counter", enc(4));
    assert!(cluster.outcome(0, &run).unwrap().is_installed());
}

#[test]
fn concurrent_proposals_stay_consistent() {
    // Two proposers fire in the same instant. The busy rule may invalidate
    // one or both runs, but replicas must never diverge.
    for seed in 10..20 {
        let mut cluster = Cluster::new(3, seed);
        cluster.setup_object("counter", counter_factory);
        let oid = ObjectId::new("counter");
        let oid2 = oid.clone();
        let run_a = cluster.net.invoke(&party(0), move |c, ctx| {
            c.propose_overwrite(&oid, enc(100), ctx).unwrap()
        });
        let run_b = cluster.net.invoke(&party(1), move |c, ctx| {
            c.propose_overwrite(&oid2, enc(200), ctx).unwrap()
        });
        cluster.run();
        let states: Vec<u64> = (0..3).map(|w| dec(&cluster.state(w, "counter"))).collect();
        assert!(
            states.iter().all(|s| *s == states[0]),
            "seed {seed}: replicas diverged: {states:?}"
        );
        let installed = [run_a, run_b]
            .iter()
            .filter(|r| {
                cluster
                    .outcome(0, r)
                    .map(|o| o.is_installed())
                    .unwrap_or(false)
            })
            .count();
        assert!(
            installed <= 1,
            "seed {seed}: both concurrent runs installed"
        );
    }
}

#[test]
fn rejected_proposer_can_retry_after_invalidation() {
    let mut cluster = Cluster::new(2, 21);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(10));
    let bad = cluster.propose(1, "counter", enc(1));
    assert!(!cluster.outcome(1, &bad).unwrap().is_installed());
    let good = cluster.propose(1, "counter", enc(11));
    assert!(cluster.outcome(1, &good).unwrap().is_installed());
    assert_eq!(dec(&cluster.state(0, "counter")), 11);
}

#[test]
fn evidence_logs_cover_all_three_steps() {
    let mut cluster = Cluster::new(2, 22);
    cluster.setup_object("counter", counter_factory);
    let run = cluster.propose(0, "counter", enc(5));
    let run_hex = run.to_hex();
    // Proposer log: its propose, the recipient's respond, the decide.
    let proposer_log = cluster.stores[&party(0)].records_for_run(&run_hex);
    let kinds: Vec<EvidenceKind> = proposer_log.iter().map(|r| r.kind).collect();
    assert!(kinds.contains(&EvidenceKind::StatePropose));
    assert!(kinds.contains(&EvidenceKind::StateRespond));
    assert!(kinds.contains(&EvidenceKind::StateDecide));
    assert!(kinds.contains(&EvidenceKind::Checkpoint));
    // Recipient log: same coverage.
    let recipient_log = cluster.stores[&party(1)].records_for_run(&run_hex);
    let kinds: Vec<EvidenceKind> = recipient_log.iter().map(|r| r.kind).collect();
    assert!(kinds.contains(&EvidenceKind::StatePropose));
    assert!(kinds.contains(&EvidenceKind::StateRespond));
    assert!(kinds.contains(&EvidenceKind::StateDecide));
}

#[test]
fn response_events_surface_progress() {
    let mut cluster = Cluster::new(3, 23);
    cluster.setup_object("counter", counter_factory);
    let run = cluster.propose(0, "counter", enc(5));
    let events = cluster.net.invoke(&party(0), |c, _| c.take_events());
    let responses: Vec<Verdict> = events
        .iter()
        .filter_map(|e| match &e.event {
            b2b_core::CoordEventKind::ResponseReceived { verdict, .. } if e.run == run => {
                Some(*verdict)
            }
            _ => None,
        })
        .collect();
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().all(|v| *v == Verdict::Accept));
}

#[test]
fn asymmetric_validators_enforce_roles() {
    // Same object, different local policy per party — the heart of §2's
    // "locally determined, evaluated and enforced policy".
    let mut cluster = Cluster::new(2, 24);
    let oid = ObjectId::new("doc");
    // org0 accepts anything; org1 only accepts even values.
    cluster.net.invoke(&party(0), move |c, _| {
        c.register_object(
            ObjectId::new("doc"),
            Box::new(|| Box::new(SharedCell::new(0u64))),
        )
        .unwrap();
    });
    let sponsor = party(0);
    cluster.net.invoke(&party(1), move |c, ctx| {
        c.request_connect(
            ObjectId::new("doc"),
            Box::new(|| {
                Box::new(SharedCell::new(0u64).with_validator(|_w, _o, n: &u64| {
                    if n.is_multiple_of(2) {
                        Decision::accept()
                    } else {
                        Decision::reject("org1 accepts even values only")
                    }
                }))
            }),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    cluster.run();

    let odd = cluster.propose(0, "doc", enc(3));
    assert!(!cluster.outcome(0, &odd).unwrap().is_installed());
    let even = cluster.propose(0, "doc", enc(4));
    assert!(cluster.outcome(0, &even).unwrap().is_installed());
    let _ = oid;
}
