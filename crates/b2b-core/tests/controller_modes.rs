//! Tests of the `B2BObjectController` API (§5): scoping, the three
//! communication modes, and operation over both network drivers.

mod common;

use b2b_core::controller::Mode;
use b2b_core::{ConnectStatus, Controller, CoordError, Coordinator, ObjectId, SimAccess};
use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer};
use b2b_net::{SimNet, ThreadedNet};
use common::*;
use std::time::Duration;

fn sim_pair(seed: u64) -> (SimAccess, SimAccess) {
    let mut ring = KeyRing::new();
    let kp0 = KeyPair::generate_from_seed(1);
    let kp1 = KeyPair::generate_from_seed(2);
    ring.register(party(0), kp0.public_key());
    ring.register(party(1), kp1.public_key());
    let mut net = SimNet::new(seed);
    net.add_node(
        Coordinator::builder(party(0), kp0)
            .ring(ring.clone())
            .seed(seed)
            .build(),
    );
    net.add_node(
        Coordinator::builder(party(1), kp1)
            .ring(ring)
            .seed(seed + 1)
            .build(),
    );
    let shared = SimAccess::shared(net);
    (
        SimAccess::new(shared.clone(), party(0)),
        SimAccess::new(shared, party(1)),
    )
}

fn setup_counter(a: &SimAccess, b: &SimAccess) {
    a.with(|c, _| {
        c.register_object(ObjectId::new("counter"), Box::new(counter_factory))
            .unwrap();
    });
    let ctrl_b = Controller::new(b.clone(), ObjectId::new("counter"));
    ctrl_b
        .connect(Box::new(counter_factory), party(0))
        .expect("connect succeeds");
}

use b2b_core::controller::CoordAccess;

#[test]
fn sync_scope_roundtrip_installs_at_both() {
    let (a, b) = sim_pair(80);
    setup_counter(&a, &b);
    let mut ctrl = Controller::new(a.clone(), ObjectId::new("counter"));
    ctrl.enter().unwrap();
    ctrl.overwrite().unwrap();
    ctrl.set_state(enc(5)).unwrap();
    let ticket = ctrl.leave().unwrap();
    assert!(ticket.is_some());
    assert_eq!(dec(&ctrl.current_state().unwrap()), 5);
    // The proposer's sync call returns when *it* learns the outcome; the
    // recipient's decide may still be in flight — drive until it lands.
    let converged = b.wait(Duration::from_secs(5), |c| {
        c.agreed_state(&ObjectId::new("counter")) == Some(enc(5))
    });
    assert!(converged);
    let ctrl_b = Controller::new(b, ObjectId::new("counter"));
    assert_eq!(dec(&ctrl_b.current_state().unwrap()), 5);
}

#[test]
fn sync_scope_veto_surfaces_as_invalidated_error() {
    let (a, b) = sim_pair(81);
    setup_counter(&a, &b);
    let mut ctrl = Controller::new(a.clone(), ObjectId::new("counter"));
    ctrl.sync_coord(enc(10)).unwrap();
    let err = ctrl.sync_coord(enc(1)).unwrap_err();
    match err {
        CoordError::Invalidated { vetoers } => {
            assert_eq!(vetoers[0].0, party(1));
        }
        other => panic!("expected Invalidated, got {other:?}"),
    }
    // Working state rolled back to the agreed value.
    assert_eq!(dec(&ctrl.current_state().unwrap()), 10);
    drop(b);
}

#[test]
fn nested_scopes_roll_up_to_one_coordination() {
    let (a, b) = sim_pair(82);
    setup_counter(&a, &b);
    let before = a.with(|c, _| c.messages_sent());
    let mut ctrl = Controller::new(a.clone(), ObjectId::new("counter"));
    ctrl.enter().unwrap();
    ctrl.overwrite().unwrap();
    ctrl.set_state(enc(1)).unwrap();
    ctrl.enter().unwrap(); // nested
    ctrl.set_state(enc(2)).unwrap();
    assert!(
        ctrl.leave().unwrap().is_none(),
        "inner leave coordinates nothing"
    );
    let ticket = ctrl.leave().unwrap(); // outer leave coordinates once
    assert!(ticket.is_some());
    let after = a.with(|c, _| c.messages_sent());
    assert_eq!(
        after - before,
        2,
        "one propose + one decide from this party"
    );
    assert_eq!(dec(&ctrl.current_state().unwrap()), 2);
    drop(b);
}

#[test]
fn examine_scope_coordinates_nothing() {
    let (a, b) = sim_pair(83);
    setup_counter(&a, &b);
    let before = a.with(|c, _| c.messages_sent());
    let mut ctrl = Controller::new(a.clone(), ObjectId::new("counter"));
    ctrl.enter().unwrap();
    ctrl.examine().unwrap();
    let v = dec(ctrl.state().unwrap());
    assert_eq!(v, 0);
    assert!(ctrl.leave().unwrap().is_none());
    assert_eq!(a.with(|c, _| c.messages_sent()), before);
    drop(b);
}

#[test]
fn scope_misuse_is_rejected() {
    let (a, b) = sim_pair(84);
    setup_counter(&a, &b);
    let mut ctrl = Controller::new(a, ObjectId::new("counter"));
    assert!(matches!(ctrl.examine(), Err(CoordError::ScopeMisuse(_))));
    assert!(matches!(ctrl.overwrite(), Err(CoordError::ScopeMisuse(_))));
    assert!(matches!(ctrl.state(), Err(CoordError::ScopeMisuse(_))));
    assert!(matches!(
        ctrl.set_state(vec![]),
        Err(CoordError::ScopeMisuse(_))
    ));
    drop(b);
}

#[test]
fn deferred_mode_returns_ticket_then_commits() {
    let (a, b) = sim_pair(85);
    setup_counter(&a, &b);
    let mut ctrl =
        Controller::new(a.clone(), ObjectId::new("counter")).mode(Mode::DeferredSynchronous);
    let ticket = ctrl.sync_coord(enc(7)).unwrap().unwrap();
    // Not yet necessarily complete; commit drives to completion.
    ctrl.coord_commit(ticket).unwrap();
    assert_eq!(dec(&ctrl.current_state().unwrap()), 7);
    drop(b);
}

#[test]
fn async_mode_completion_arrives_via_events() {
    let (a, b) = sim_pair(86);
    setup_counter(&a, &b);
    let mut ctrl = Controller::new(a.clone(), ObjectId::new("counter")).mode(Mode::Asynchronous);
    let ticket = ctrl.sync_coord(enc(9)).unwrap().unwrap();
    // Drive the network by polling until the outcome lands.
    let done = a.wait(Duration::from_secs(5), move |c| {
        c.outcome_of_ticket(&ticket.ticket).is_some()
    });
    assert!(done);
    let events = ctrl.take_events();
    assert!(events.iter().any(|e| matches!(
        &e.event,
        b2b_core::CoordEventKind::Completed { outcome } if outcome.is_installed()
    )));
    drop(b);
}

#[test]
fn update_scope_uses_delta_coordination() {
    let (a, b) = sim_pair(87);
    a.with(|c, _| {
        c.register_object(ObjectId::new("log"), Box::new(append_log_factory))
            .unwrap();
    });
    let ctrl_b = Controller::new(b.clone(), ObjectId::new("log"));
    ctrl_b
        .connect(Box::new(append_log_factory), party(0))
        .unwrap();

    let mut ctrl = Controller::new(a.clone(), ObjectId::new("log"));
    ctrl.enter().unwrap();
    ctrl.update(serde_json::to_vec(&"entry-1".to_string()).unwrap())
        .unwrap();
    ctrl.leave().unwrap();
    let expected = ctrl.current_state().unwrap();
    let converged = b.wait(Duration::from_secs(5), move |c| {
        c.agreed_state(&ObjectId::new("log")).as_deref() == Some(&expected[..])
    });
    assert!(converged);
    let entries: Vec<String> = serde_json::from_slice(&ctrl_b.current_state().unwrap()).unwrap();
    assert_eq!(entries, vec!["entry-1".to_string()]);
}

#[test]
fn controller_disconnect_blocks_until_acked() {
    let (a, b) = sim_pair(88);
    setup_counter(&a, &b);
    let ctrl_b = Controller::new(b.clone(), ObjectId::new("counter"));
    ctrl_b.disconnect().unwrap();
    assert!(!b.with(|c, _| c.is_member(&ObjectId::new("counter"))));
    assert_eq!(
        a.with(|c, _| c.members(&ObjectId::new("counter")).unwrap().len()),
        1
    );
}

#[test]
fn threaded_net_full_lifecycle() {
    // The same engines over real threads: register, connect, coordinate,
    // veto, disconnect — driven by blocking controller calls.
    let mut ring = KeyRing::new();
    let kp0 = KeyPair::generate_from_seed(11);
    let kp1 = KeyPair::generate_from_seed(12);
    ring.register(PartyId::new("alpha"), kp0.public_key());
    ring.register(PartyId::new("beta"), kp1.public_key());
    let net = ThreadedNet::spawn(vec![
        Coordinator::builder(PartyId::new("alpha"), kp0)
            .ring(ring.clone())
            .seed(1)
            .build(),
        Coordinator::builder(PartyId::new("beta"), kp1)
            .ring(ring)
            .seed(2)
            .build(),
    ]);

    let alpha = net.handle(&PartyId::new("alpha"));
    let beta = net.handle(&PartyId::new("beta"));
    alpha.invoke(|c, _| {
        c.register_object(ObjectId::new("counter"), Box::new(counter_factory))
            .unwrap();
    });
    let ctrl_beta =
        Controller::new(beta.clone(), ObjectId::new("counter")).timeout(Duration::from_secs(10));
    ctrl_beta
        .connect(Box::new(counter_factory), PartyId::new("alpha"))
        .expect("beta joins");

    let mut ctrl_alpha =
        Controller::new(alpha.clone(), ObjectId::new("counter")).timeout(Duration::from_secs(10));
    ctrl_alpha.sync_coord(enc(5)).expect("accepted");
    assert!(beta.wait_until(Duration::from_secs(10), |c| {
        c.agreed_state(&ObjectId::new("counter")) == Some(enc(5))
    }));
    assert_eq!(dec(&ctrl_beta.current_state().unwrap()), 5);

    // beta proposes an invalid decrease: vetoed by alpha.
    let mut ctrl_beta2 =
        Controller::new(beta.clone(), ObjectId::new("counter")).timeout(Duration::from_secs(10));
    assert!(matches!(
        ctrl_beta2.sync_coord(enc(1)),
        Err(CoordError::Invalidated { .. })
    ));
    assert_eq!(dec(&ctrl_alpha.current_state().unwrap()), 5);

    ctrl_beta.disconnect().expect("beta leaves");
    assert!(!beta.read(|c| c.is_member(&ObjectId::new("counter"))));
    net.shutdown();
}

#[test]
fn connect_rejection_status_visible_to_subject() {
    let (a, b) = sim_pair(89);
    a.with(|c, _| {
        struct Closed;
        impl b2b_core::B2BObject for Closed {
            fn get_state(&self) -> Vec<u8> {
                vec![]
            }
            fn apply_state(&mut self, _s: &[u8]) {}
            fn validate_state(&self, _w: &PartyId, _c: &[u8], _p: &[u8]) -> b2b_core::Decision {
                b2b_core::Decision::accept()
            }
            fn validate_connect(&self, _s: &PartyId) -> b2b_core::Decision {
                b2b_core::Decision::reject("closed")
            }
        }
        c.register_object(ObjectId::new("obj"), Box::new(|| Box::new(Closed)))
            .unwrap();
    });
    let ctrl_b = Controller::new(b.clone(), ObjectId::new("obj"));
    assert!(matches!(
        ctrl_b.connect(Box::new(counter_factory), party(0)),
        Err(CoordError::ConnectionRejected)
    ));
    assert_eq!(
        b.with(|c, _| c.connect_status(&ObjectId::new("obj")).cloned()),
        Some(ConnectStatus::Rejected)
    );
}

#[test]
fn sim_wait_times_out_instead_of_spinning_forever() {
    // The simulator's wait interprets the timeout as a virtual-time
    // budget: a predicate that never holds must not spin the event loop
    // forever (retransmission timers can keep the queue alive
    // indefinitely, e.g. across a partition).
    use b2b_core::controller::CoordAccess;
    let (a, b) = sim_pair(90);
    setup_counter(&a, &b);
    let done = a.wait(Duration::from_millis(500), |_c| false);
    assert!(!done, "wait must return false at its deadline");
    // The handles remain usable afterwards.
    let mut ctrl = Controller::new(a, ObjectId::new("counter"));
    ctrl.sync_coord(enc(1)).unwrap();
    drop(b);
}
