//! End-to-end dispute resolution: claims judged against the
//! non-repudiation logs produced by real protocol runs.

mod common;

use b2b_core::{Arbiter, Claim, ObjectId, StateId};
use b2b_crypto::sha256;
use common::*;

fn state_id_of(cluster: &Cluster, who: usize, alias: &str) -> StateId {
    cluster
        .net
        .node(&party(who))
        .agreed_id(&ObjectId::new(alias))
        .unwrap()
}

#[test]
fn proposer_proves_validity_of_installed_state_from_its_own_log() {
    let mut cluster = Cluster::new(3, 90);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(5));
    let state = state_id_of(&cluster, 0, "counter");

    let arbiter = Arbiter::new(cluster.ring.clone());
    let claim = Claim::StateValid {
        object: ObjectId::new("counter"),
        proposer: party(0),
        members: cluster.members(0, "counter"),
        state,
    };
    let ruling = arbiter.judge(&claim, &*cluster.stores[&party(0)]);
    assert!(ruling.is_upheld(), "ruling: {ruling:?}");
}

#[test]
fn recipient_can_also_prove_validity_from_its_log() {
    // The decide aggregation reaches every recipient, so any party can
    // demonstrate validity ("any party can compute the group's decision").
    let mut cluster = Cluster::new(3, 91);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(1, "counter", enc(8));
    let state = state_id_of(&cluster, 2, "counter");

    let arbiter = Arbiter::new(cluster.ring.clone());
    let claim = Claim::StateValid {
        object: ObjectId::new("counter"),
        proposer: party(1),
        members: cluster.members(2, "counter"),
        state,
    };
    assert!(arbiter
        .judge(&claim, &*cluster.stores[&party(2)])
        .is_upheld());
}

#[test]
fn vetoed_state_cannot_be_misrepresented_as_valid() {
    // §4.1: "no party can misrepresent the validity of object state".
    let mut cluster = Cluster::new(2, 92);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(10));
    let run = cluster.propose(1, "counter", enc(2)); // vetoed decrease
    let arbiter = Arbiter::new(cluster.ring.clone());

    // The (dishonest) proposer cannot get the vetoed tuple upheld — even
    // from its own log, which contains the signed rejection.
    let fake_state = StateId {
        seq: 2,
        rand_hash: sha256(b"whatever"),
        state_hash: sha256(&enc(2)),
    };
    let claim = Claim::StateValid {
        object: ObjectId::new("counter"),
        proposer: party(1),
        members: cluster.members(0, "counter"),
        state: fake_state,
    };
    assert!(!arbiter
        .judge(&claim, &*cluster.stores[&party(1)])
        .is_upheld());

    // Conversely the veto itself is provable by either party.
    let veto_claim = Claim::StateVetoed {
        object: ObjectId::new("counter"),
        run,
    };
    assert!(arbiter
        .judge(&veto_claim, &*cluster.stores[&party(0)])
        .is_upheld());
    assert!(arbiter
        .judge(&veto_claim, &*cluster.stores[&party(1)])
        .is_upheld());
}

#[test]
fn valid_state_cannot_be_misrepresented_as_vetoed() {
    let mut cluster = Cluster::new(3, 93);
    cluster.setup_object("counter", counter_factory);
    let run = cluster.propose(0, "counter", enc(5));
    let arbiter = Arbiter::new(cluster.ring.clone());
    for who in 0..3 {
        let claim = Claim::StateVetoed {
            object: ObjectId::new("counter"),
            run,
        };
        assert!(
            !arbiter
                .judge(&claim, &*cluster.stores[&party(who)])
                .is_upheld(),
            "org{who} must not be able to prove a veto of an agreed state"
        );
    }
}

#[test]
fn whole_log_audit_is_clean_after_honest_runs() {
    let mut cluster = Cluster::new(3, 94);
    cluster.setup_object("counter", counter_factory);
    cluster.propose(0, "counter", enc(1));
    cluster.propose(1, "counter", enc(2));
    let auditor =
        b2b_evidence::LogAuditor::new(cluster.ring.clone(), Some(cluster.tsa.public_key()));
    for who in 0..3 {
        let report = auditor.audit(&*cluster.stores[&party(who)]);
        assert!(report.is_clean(), "org{who} log audit: {:?}", report.faults);
        assert!(report.total > 0);
    }
}
