//! `b2b-serve` — stand-alone order-processing daemon.
//!
//! Boots the sharded engine fleet, opens the HTTP listener and serves
//! until the run budget expires (or forever with `--run-secs 0`).
//!
//! ```text
//! b2b-serve [--addr 127.0.0.1:8080] [--orders 256] [--parties 2]
//!           [--shards N] [--http-workers 8] [--run-secs 0]
//! ```

use b2b_core::CoordinatorConfig;
use b2b_crypto::VerifyPool;
use b2b_server::{OrderServer, OrderServerOptions};
use b2b_telemetry::Telemetry;
use std::sync::Arc;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("b2b-serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut opts = OrderServerOptions {
        addr: "127.0.0.1:8080".to_string(),
        orders: 256,
        telemetry: Telemetry::new(),
        verify_pool: Some(Arc::new(VerifyPool::with_default_parallelism())),
        config: CoordinatorConfig::default(),
        ..OrderServerOptions::default()
    };
    let mut run_secs: u64 = 0;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
                .clone()
        };
        match flag {
            "--addr" => opts.addr = value("--addr"),
            "--orders" => {
                opts.orders = value("--orders")
                    .parse()
                    .unwrap_or_else(|_| die("--orders must be an integer"))
            }
            "--parties" => {
                opts.parties = value("--parties")
                    .parse()
                    .unwrap_or_else(|_| die("--parties must be 2 or 4"))
            }
            "--shards" => {
                opts.shards = Some(
                    value("--shards")
                        .parse()
                        .unwrap_or_else(|_| die("--shards must be an integer")),
                )
            }
            "--http-workers" => {
                opts.http_workers = value("--http-workers")
                    .parse()
                    .unwrap_or_else(|_| die("--http-workers must be an integer"))
            }
            "--run-secs" => {
                run_secs = value("--run-secs")
                    .parse()
                    .unwrap_or_else(|_| die("--run-secs must be an integer"))
            }
            "--help" | "-h" => {
                println!(
                    "usage: b2b-serve [--addr A] [--orders N] [--parties 2|4] \
                     [--shards S] [--http-workers W] [--run-secs T]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    eprintln!(
        "b2b-serve: provisioning {} orders x {} parties...",
        opts.orders, opts.parties
    );
    let server = OrderServer::start(opts).unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    println!("b2b-serve: listening on http://{}", server.addr());
    println!("b2b-serve: try  curl -X POST http://{}/orders", server.addr());

    if run_secs == 0 {
        // Serve until killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(run_secs));
    let (clean, records) = server.audit();
    eprintln!("b2b-serve: shutting down (evidence audit clean={clean}, {records} records)");
    server.shutdown();
}
