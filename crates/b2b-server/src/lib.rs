#![warn(missing_docs)]

//! An HTTP/JSON order-processing service on the sharded B2BObjects
//! runtime.
//!
//! This crate is the paper's second application — inter-organisational
//! **order processing** (§5.2) — served for real: one process hosts
//! thousands of concurrent orders, each order its own coordination group
//! on the sharded runtime ([`b2b_net::shard`]), every mutation a signed,
//! non-repudiable state-coordination round between the organisations
//! holding a role on the order.
//!
//! The HTTP surface maps one-to-one onto the middleware's §3/§5
//! operations:
//!
//! | Endpoint | Middleware operation |
//! |---|---|
//! | `POST /orders` | provision a sharing group (customer registers, peers join sponsored) |
//! | `GET /orders/:id` | read the agreed state |
//! | `POST /orders/:id/lines` | customer adds/changes a line (update coordination) |
//! | `POST /orders/:id/price` | supplier prices a line |
//! | `POST /orders/:id/approve` | approver sanctions a line (four-party) |
//! | `POST /orders/:id/ship` | dispatcher commits delivery terms (four-party) |
//! | `POST /orders/:id/bulk` | a window of updates in one signed batched round |
//! | `POST /orders/:id/enter` … `/leave` | explicit §5 state-access scoping |
//! | `GET /tickets/:id` | idempotent deferred/async completion poll |
//! | `GET /tickets?ids=a,b,…` | one poll covering a whole ticket window |
//! | `GET /metrics` | live Prometheus exposition of the fleet registry |
//!
//! Every mutating request picks a communication mode (§3.3) with
//! `?mode=sync|deferred|async`: synchronous calls block until the round
//! completes (a veto is `409` with the vetoers' reasons), the other two
//! answer `202` with a ticket for `/tickets/:id`. Both ticket endpoints
//! accept `?wait_ms=N` to long-poll: the request parks on the group's
//! condvar until the ticket(s) turn terminal or the budget expires, so a
//! closed-loop client spends one round-trip per outcome instead of
//! spinning. When an order's pending-update queue is at
//! `pending_updates_max`, the coordinator's backpressure surfaces as
//! `429` — overload degrades gracefully instead of queueing unboundedly.

use b2b_apps::{Order, OrderObject, OrderRoles, OrderUpdate};
use b2b_core::controller::Mode;
use b2b_core::{
    Controller, CoordError, CoordTicket, Coordinator, CoordinatorConfig, ObjectId, TicketId,
    TicketStatus,
};
use b2b_crypto::{KeyPair, KeyRing, PartyId, Signer, VerifyPool};
use b2b_evidence::{LogAuditor, MemStore};
use b2b_net::{GroupHandle, GroupId, HttpHandler, HttpRequest, HttpResponse, HttpServer, ShardedNet};
use b2b_telemetry::{names, Telemetry};
use serde::Deserialize;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Role names, in join order; index = party index. Two-party orders use
/// the first two, four-party orders all four.
pub const ROLES: [&str; 4] = ["customer", "supplier", "approver", "dispatcher"];

/// Construction knobs for an [`OrderServer`].
pub struct OrderServerOptions {
    /// Listen address (`"127.0.0.1:0"` for an ephemeral port).
    pub addr: String,
    /// Orders provisioned at startup — the capacity of `POST /orders`.
    /// Each order is one coordination group; the groups (and their
    /// membership rounds) are brought up before the listener opens, so
    /// order creation is O(1) at request time.
    pub orders: usize,
    /// Organisations per order: 2 (customer/supplier) or 4 (+ approver,
    /// dispatcher).
    pub parties: usize,
    /// Worker-pool size of the sharded runtime; `None` = one per CPU.
    pub shards: Option<usize>,
    /// HTTP worker threads (each may block on a synchronous round).
    pub http_workers: usize,
    /// Per-coordinator configuration (batching, `pending_updates_max`…).
    pub config: CoordinatorConfig,
    /// Fleet-wide telemetry handle, served live on `/metrics`.
    pub telemetry: Telemetry,
    /// Shared signature-verification pool, if any.
    pub verify_pool: Option<Arc<VerifyPool>>,
    /// How long synchronous requests (and `leave` commits) block before
    /// answering `504`.
    pub sync_timeout: Duration,
}

impl Default for OrderServerOptions {
    fn default() -> OrderServerOptions {
        OrderServerOptions {
            addr: "127.0.0.1:0".to_string(),
            orders: 64,
            parties: 2,
            shards: None,
            http_workers: 8,
            config: CoordinatorConfig::default(),
            telemetry: Telemetry::new(),
            verify_pool: None,
            sync_timeout: Duration::from_secs(10),
        }
    }
}

/// Where a public ticket points, plus whether its terminal outcome has
/// been counted into the `serve_installed`/`serve_vetoed` metrics.
struct TicketRef {
    group: usize,
    party: usize,
    ticket: TicketId,
    counted: bool,
}

/// One open §5 state-access scope, pinned to an (order, party) pair
/// across HTTP requests.
struct Session {
    ctrl: Controller<GroupHandle<Coordinator>>,
    depth: u32,
}

/// Request body accepted by every mutating endpoint. Only the fields an
/// action needs are read; `op` selects the action on scope `update`.
#[derive(Deserialize, Default)]
struct ActionBody {
    op: Option<String>,
    item: Option<String>,
    qty: Option<u32>,
    unit_price: Option<u32>,
    terms: Option<String>,
}

/// Request body of `POST /orders/:id/bulk`: several actions submitted
/// in one request, each element an [`ActionBody`] whose `op` field
/// names the action (`line`, `price`, `approve`, `ship`).
#[derive(Deserialize)]
struct BulkBody {
    ops: Vec<ActionBody>,
}

/// Largest accepted bulk batch — aligned with the coordinator's own
/// `batch_max` scale so one request maps onto a handful of rounds at
/// most.
const BULK_MAX: usize = 64;

struct Core {
    handles: Vec<Vec<GroupHandle<Coordinator>>>,
    stores: Vec<Vec<Arc<MemStore>>>,
    ring: Arc<KeyRing>,
    parties: Vec<PartyId>,
    object: ObjectId,
    orders: usize,
    allocated: AtomicU64,
    next_ticket: AtomicU64,
    tickets: Mutex<HashMap<u64, TicketRef>>,
    sessions: Mutex<HashMap<(usize, usize), Session>>,
    telemetry: Telemetry,
    sync_timeout: Duration,
}

/// The running order service: sharded engine fleet + HTTP front-end.
pub struct OrderServer {
    core: Arc<Core>,
    http: Option<HttpServer>,
    net: Option<ShardedNet<Coordinator>>,
}

impl OrderServer {
    /// Brings up the engine fleet (all groups joined, all evidence
    /// stores attached), then opens the HTTP listener.
    pub fn start(opts: OrderServerOptions) -> io::Result<OrderServer> {
        assert!(
            opts.parties == 2 || opts.parties == 4,
            "orders are two-party or four-party"
        );
        assert!(opts.orders > 0, "provision at least one order");

        let party_ids: Vec<PartyId> = ROLES[..opts.parties]
            .iter()
            .map(|r| PartyId::new(*r))
            .collect();
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for (i, id) in party_ids.iter().enumerate() {
            let kp = KeyPair::generate_from_seed(2000 + i as u64);
            ring.register(id.clone(), kp.public_key());
            keys.push(kp);
        }
        let ring = Arc::new(ring);
        let object = ObjectId::new("order");

        let mut stores: Vec<Vec<Arc<MemStore>>> = Vec::with_capacity(opts.orders);
        let mut builder = ShardedNet::builder().telemetry(opts.telemetry.clone());
        if let Some(shards) = opts.shards {
            builder = builder.shards(shards);
        }
        for g in 0..opts.orders {
            let mut group_stores = Vec::with_capacity(opts.parties);
            let nodes = (0..opts.parties)
                .map(|i| {
                    let store = Arc::new(MemStore::default());
                    group_stores.push(Arc::clone(&store));
                    let mut b = Coordinator::builder(party_ids[i].clone(), keys[i].clone())
                        .shared_ring(Arc::clone(&ring))
                        .config(opts.config.clone())
                        .store(store)
                        .seed(10 + (g * opts.parties + i) as u64)
                        .telemetry(opts.telemetry.clone());
                    if let Some(pool) = &opts.verify_pool {
                        b = b.verify_pool(Arc::clone(pool));
                    }
                    b.build()
                })
                .collect();
            stores.push(group_stores);
            builder = builder.add_group(GroupId(g as u64), nodes);
        }
        let net = builder.spawn()?;

        let handles: Vec<Vec<GroupHandle<Coordinator>>> = (0..opts.orders)
            .map(|g| {
                (0..opts.parties)
                    .map(|i| net.handle(GroupId(g as u64), &party_ids[i]))
                    .collect()
            })
            .collect();

        // Provision every group: the customer registers the order object
        // (roles derived from the fleet's party names), the remaining
        // roles join through the §4.5 sponsored-connect protocol. Joins
        // are pipelined across groups, so bring-up costs `parties`
        // round-trips, not `orders × parties`.
        let roles = order_roles(&party_ids);
        for g in 0..opts.orders {
            let oid = object.clone();
            let roles = roles.clone();
            handles[g][0].invoke(move |c, _| {
                c.register_object(oid, Box::new(move || factory(&roles)))
                    .expect("register order object");
            });
        }
        for j in 1..opts.parties {
            for g in 0..opts.orders {
                let oid = object.clone();
                let roles = roles.clone();
                let sponsor = party_ids[j - 1].clone();
                handles[g][j].invoke(move |c, ctx| {
                    c.request_connect(oid, Box::new(move || factory(&roles)), sponsor, ctx)
                        .expect("request connect");
                });
            }
            for (g, group) in handles.iter().enumerate() {
                let oid = object.clone();
                assert!(
                    group[j].wait_until(Duration::from_secs(120), move |c| c.is_member(&oid)),
                    "{} of order {g} failed to join",
                    party_ids[j]
                );
            }
        }

        let core = Arc::new(Core {
            handles,
            stores,
            ring,
            parties: party_ids,
            object,
            orders: opts.orders,
            allocated: AtomicU64::new(0),
            next_ticket: AtomicU64::new(1),
            tickets: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            telemetry: opts.telemetry,
            sync_timeout: opts.sync_timeout,
        });
        let handler_core = Arc::clone(&core);
        let handler: HttpHandler = Arc::new(move |req| handler_core.route(req));
        let http = HttpServer::bind(&opts.addr, opts.http_workers, handler)?;

        Ok(OrderServer {
            core,
            http: Some(http),
            net: Some(net),
        })
    }

    /// The bound HTTP address.
    pub fn addr(&self) -> SocketAddr {
        self.http.as_ref().expect("server running").addr()
    }

    /// The fleet-wide telemetry handle (the same registry `/metrics`
    /// serves).
    pub fn telemetry(&self) -> &Telemetry {
        &self.core.telemetry
    }

    /// Orders created so far via `POST /orders`.
    pub fn allocated(&self) -> usize {
        (self.core.allocated.load(Ordering::SeqCst) as usize).min(self.core.orders)
    }

    /// Direct engine handle for tests and harnesses (order `g`, party
    /// index `p` in [`ROLES`] order).
    pub fn handle(&self, g: usize, p: usize) -> GroupHandle<Coordinator> {
        self.core.handles[g][p].clone()
    }

    /// Audits every party's evidence store across all provisioned
    /// orders. Returns `(all_clean, total_records)`.
    pub fn audit(&self) -> (bool, usize) {
        let auditor = LogAuditor::new((*self.core.ring).clone(), None);
        let mut clean = true;
        let mut total = 0usize;
        for group in &self.core.stores {
            for store in group {
                let report = auditor.audit(store.as_ref());
                clean &= report.is_clean();
                total += report.total;
            }
        }
        (clean, total)
    }

    /// Blocks until every allocated order has drained its pending queues
    /// and all member replicas agree on the same state bytes. Returns
    /// `false` on timeout.
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        for g in 0..self.allocated() {
            for h in &self.core.handles[g] {
                let oid = self.core.object.clone();
                let left = deadline.saturating_duration_since(Instant::now());
                if !h.wait_until(left, move |c| {
                    c.pending_update_count(&oid) == 0 && !c.is_busy(&oid)
                }) {
                    return false;
                }
            }
            loop {
                let states: Vec<Option<Vec<u8>>> = self.core.handles[g]
                    .iter()
                    .map(|h| {
                        let oid = self.core.object.clone();
                        h.read(move |c| c.agreed_state(&oid))
                    })
                    .collect();
                if states.iter().all(|s| s.is_some() && *s == states[0]) {
                    break;
                }
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        true
    }

    /// Stops the HTTP front-end and the engine fleet, joining every
    /// thread.
    pub fn shutdown(mut self) {
        if let Some(http) = self.http.take() {
            http.shutdown();
        }
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
    }
}

/// Builds the role assignment for a fleet's party list.
fn order_roles(parties: &[PartyId]) -> OrderRoles {
    if parties.len() >= 4 {
        OrderRoles::four_party(
            parties[0].clone(),
            parties[1].clone(),
            parties[2].clone(),
            parties[3].clone(),
        )
    } else {
        OrderRoles::two_party(parties[0].clone(), parties[1].clone())
    }
}

/// The object factory every member runs: a fresh [`OrderObject`] wired
/// to the shared role assignment.
fn factory(roles: &OrderRoles) -> Box<dyn b2b_core::B2BObject> {
    Box::new(OrderObject::new(roles.clone()))
}

/// JSON-escapes a string (via the vendored encoder).
fn js(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| "\"\"".to_string())
}

fn vetoers_json(vetoers: &[(PartyId, String)]) -> String {
    let items: Vec<String> = vetoers
        .iter()
        .map(|(p, r)| format!("{{\"party\":{},\"reason\":{}}}", js(p.as_str()), js(r)))
        .collect();
    format!("[{}]", items.join(","))
}

impl Core {
    fn route(&self, req: &HttpRequest) -> HttpResponse {
        self.telemetry.add(names::SERVE_REQUESTS, 1);
        let segments = req.segments();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => HttpResponse::text(200, "ok\n"),
            ("GET", ["metrics"]) => HttpResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                body: self
                    .telemetry
                    .metrics()
                    .snapshot()
                    .to_prometheus()
                    .into_bytes(),
            },
            ("POST", ["orders"]) => self.create_order(),
            ("GET", ["orders", id]) => match self.order_index(id) {
                Ok(g) => self.get_order(g),
                Err(resp) => resp,
            },
            ("POST", ["orders", id, action]) => match self.order_index(id) {
                Ok(g) => self.order_action(g, action, req),
                Err(resp) => resp,
            },
            ("GET", ["tickets"]) => self.tickets_status(req),
            ("GET", ["tickets", id]) => self.ticket_status(id, req),
            _ => HttpResponse::json(404, "{\"error\":\"no such resource\"}"),
        }
    }

    fn create_order(&self) -> HttpResponse {
        let g = self.allocated.fetch_add(1, Ordering::SeqCst) as usize;
        if g >= self.orders {
            self.allocated.store(self.orders as u64, Ordering::SeqCst);
            return HttpResponse::json(
                503,
                format!(
                    "{{\"error\":\"order capacity exhausted\",\"capacity\":{}}}",
                    self.orders
                ),
            );
        }
        let parties: Vec<String> = self.parties.iter().map(|p| js(p.as_str())).collect();
        HttpResponse::json(
            201,
            format!("{{\"order\":{},\"parties\":[{}]}}", g, parties.join(",")),
        )
    }

    /// Resolves an order id path segment to an *allocated* group.
    fn order_index(&self, id: &str) -> Result<usize, HttpResponse> {
        let g: usize = id
            .parse()
            .map_err(|_| HttpResponse::json(400, "{\"error\":\"order id must be an integer\"}"))?;
        let allocated = (self.allocated.load(Ordering::SeqCst) as usize).min(self.orders);
        if g >= allocated {
            return Err(HttpResponse::json(404, "{\"error\":\"no such order\"}"));
        }
        Ok(g)
    }

    fn get_order(&self, g: usize) -> HttpResponse {
        let oid = self.object.clone();
        match self.handles[g][0].read(move |c| c.agreed_state(&oid)) {
            Some(bytes) => HttpResponse {
                status: 200,
                content_type: "application/json".into(),
                body: bytes,
            },
            None => HttpResponse::json(404, "{\"error\":\"no such order\"}"),
        }
    }

    /// Resolves `?as=` (defaulting per action) to a party index.
    fn party_index(&self, req: &HttpRequest, default_role: &str) -> Result<usize, HttpResponse> {
        let role = req.query_param("as").unwrap_or(default_role);
        self.parties
            .iter()
            .position(|p| p.as_str() == role)
            .ok_or_else(|| {
                HttpResponse::json(
                    400,
                    format!("{{\"error\":\"no party {} on this order\"}}", js(role)),
                )
            })
    }

    fn mode_of(&self, req: &HttpRequest) -> Result<Mode, HttpResponse> {
        match req.query_param("mode").unwrap_or("sync") {
            "sync" => Ok(Mode::Synchronous),
            "deferred" => Ok(Mode::DeferredSynchronous),
            "async" => Ok(Mode::Asynchronous),
            other => Err(HttpResponse::json(
                400,
                format!("{{\"error\":\"unknown mode {}\"}}", js(other)),
            )),
        }
    }

    fn body_of(&self, req: &HttpRequest) -> Result<ActionBody, HttpResponse> {
        if req.body.is_empty() {
            return Ok(ActionBody::default());
        }
        serde_json::from_slice(&req.body)
            .map_err(|e| HttpResponse::json(400, format!("{{\"error\":{}}}", js(&e.to_string()))))
    }

    fn order_action(&self, g: usize, action: &str, req: &HttpRequest) -> HttpResponse {
        match action {
            "lines" | "price" | "approve" | "ship" => self.direct_mutation(g, action, req),
            "bulk" => self.bulk_mutation(g, req),
            "enter" | "examine" | "update" | "leave" => self.scope_call(g, action, req),
            _ => HttpResponse::json(404, "{\"error\":\"no such action\"}"),
        }
    }

    /// Applies `body` as the `op` action to `order`; `op` defaults from
    /// the endpoint name for the direct-mutation routes.
    fn apply_action(op: &str, body: &ActionBody, order: &mut Order) -> Result<(), String> {
        match op {
            "lines" | "line" => {
                let item = body.item.as_deref().ok_or("missing field: item")?;
                order.set_quantity(item, body.qty.ok_or("missing field: qty")?);
                Ok(())
            }
            "price" => {
                let item = body.item.as_deref().ok_or("missing field: item")?;
                let price = body.unit_price.ok_or("missing field: unit_price")?;
                if !order.set_price(item, price) {
                    return Err(format!("no line for item {item}"));
                }
                Ok(())
            }
            "approve" => {
                let item = body.item.as_deref().ok_or("missing field: item")?;
                if !order.approve(item) {
                    return Err(format!("no line for item {item}"));
                }
                Ok(())
            }
            "ship" => {
                order.delivery_terms =
                    Some(body.terms.as_deref().ok_or("missing field: terms")?.to_string());
                Ok(())
            }
            other => Err(format!("unknown op {other}")),
        }
    }

    fn default_role(action: &str) -> &'static str {
        match action {
            "price" => "supplier",
            "approve" => "approver",
            "ship" => "dispatcher",
            _ => "customer",
        }
    }

    /// Translates a direct-mutation action into an [`OrderUpdate`]
    /// delta for coordination.
    fn action_delta(op: &str, body: &ActionBody) -> Result<OrderUpdate, String> {
        match op {
            "lines" | "line" => Ok(OrderUpdate::SetQuantity {
                item: body.item.clone().ok_or("missing field: item")?,
                qty: body.qty.ok_or("missing field: qty")?,
            }),
            "price" => Ok(OrderUpdate::SetPrice {
                item: body.item.clone().ok_or("missing field: item")?,
                unit_price: body.unit_price.ok_or("missing field: unit_price")?,
            }),
            "approve" => Ok(OrderUpdate::Approve {
                item: body.item.clone().ok_or("missing field: item")?,
            }),
            "ship" => Ok(OrderUpdate::SetDeliveryTerms {
                terms: body.terms.clone().ok_or("missing field: terms")?,
            }),
            other => Err(format!("unknown op {other}")),
        }
    }

    /// The one-shot mutation path: parse the action into an
    /// [`OrderUpdate`] delta and submit it. The delta replays against
    /// whatever state the group agrees on when its round runs, so
    /// concurrent compatible actions compose — while rule violations
    /// are vetoed by the peers' validators, never silently merged.
    fn direct_mutation(&self, g: usize, action: &str, req: &HttpRequest) -> HttpResponse {
        let p = match self.party_index(req, Self::default_role(action)) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let mode = match self.mode_of(req) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let body = match self.body_of(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let delta = match Self::action_delta(action, &body) {
            Ok(d) => d,
            Err(msg) => return HttpResponse::json(400, format!("{{\"error\":{}}}", js(&msg))),
        };
        let handle = &self.handles[g][p];
        let oid = self.object.clone();
        // Fast-fail requests that cannot apply to the agreed state (e.g.
        // pricing an item never ordered) — the round would abort them
        // anyway; this answers 400 without spending one. The replica
        // answering may lag the round that makes a delta applicable by
        // one message delivery, so give it a short grace to catch up.
        let applies = handle.wait_until(self.sync_timeout.min(Duration::from_millis(500)), {
            let oid = oid.clone();
            let delta = delta.clone();
            move |c| {
                c.agreed_state(&oid)
                    .and_then(|cur| Order::from_bytes(&cur))
                    .map(|mut o| delta.apply(&mut o).is_ok())
                    .unwrap_or(false)
            }
        });
        if !applies {
            let Some(current) = handle.read({
                let oid = oid.clone();
                move |c| c.agreed_state(&oid)
            }) else {
                return HttpResponse::json(404, "{\"error\":\"no such order\"}");
            };
            let Some(mut order) = Order::from_bytes(&current) else {
                return HttpResponse::json(500, "{\"error\":\"undecodable agreed state\"}");
            };
            if let Err(msg) = delta.apply(&mut order) {
                return HttpResponse::json(400, format!("{{\"error\":{}}}", js(&msg)));
            }
        }
        let proposed = delta.to_bytes();
        let submitted = handle.invoke(move |c, ctx| c.submit_update(&oid, proposed, ctx));
        match submitted {
            Ok(ticket) => self.conclude(g, p, ticket, mode),
            Err(CoordError::Busy { .. }) => self.backpressure(),
            Err(e) => HttpResponse::json(
                500,
                format!("{{\"error\":{}}}", js(&format!("{e}"))),
            ),
        }
    }

    /// `POST /orders/:id/bulk` — several deltas in one request, each
    /// individually ticketed. The submissions land in the pending queue
    /// together, so the coordinator coalesces them into batched signed
    /// rounds (§3.3) instead of paying one HTTP round-trip *and* one
    /// coordination round per delta. Synchronous calls block until every
    /// ticket is terminal; deferred/async answer `202` with one public
    /// ticket per accepted delta. Admission is all-or-nothing: a bulk
    /// that does not fit under `pending_updates_max` answers `429`
    /// without enqueueing anything.
    fn bulk_mutation(&self, g: usize, req: &HttpRequest) -> HttpResponse {
        let p = match self.party_index(req, "customer") {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let mode = match self.mode_of(req) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let bulk: BulkBody = match serde_json::from_slice(&req.body) {
            Ok(b) => b,
            Err(e) => {
                return HttpResponse::json(400, format!("{{\"error\":{}}}", js(&e.to_string())))
            }
        };
        if bulk.ops.is_empty() {
            return HttpResponse::json(400, "{\"error\":\"ops must not be empty\"}");
        }
        if bulk.ops.len() > BULK_MAX {
            return HttpResponse::json(
                400,
                format!("{{\"error\":\"at most {BULK_MAX} ops per bulk request\"}}"),
            );
        }
        let mut deltas: Vec<OrderUpdate> = Vec::with_capacity(bulk.ops.len());
        for (i, elem) in bulk.ops.iter().enumerate() {
            let op = match elem.op.as_deref() {
                Some(op) => op,
                None => {
                    return HttpResponse::json(
                        400,
                        format!("{{\"error\":\"missing field: op\",\"index\":{i}}}"),
                    )
                }
            };
            match Self::action_delta(op, elem) {
                Ok(d) => deltas.push(d),
                Err(msg) => {
                    return HttpResponse::json(
                        400,
                        format!("{{\"error\":{},\"index\":{i}}}", js(&msg)),
                    )
                }
            }
        }
        let handle = &self.handles[g][p];
        let oid = self.object.clone();
        // Cumulative applicability pre-check with the same replica-lag
        // grace as the single-delta path: the whole batch must fold over
        // the agreed state.
        let applies = handle.wait_until(self.sync_timeout.min(Duration::from_millis(500)), {
            let oid = oid.clone();
            let deltas = deltas.clone();
            move |c| {
                c.agreed_state(&oid)
                    .and_then(|cur| Order::from_bytes(&cur))
                    .map(|mut o| deltas.iter().all(|d| d.apply(&mut o).is_ok()))
                    .unwrap_or(false)
            }
        });
        if !applies {
            let Some(current) = handle.read({
                let oid = oid.clone();
                move |c| c.agreed_state(&oid)
            }) else {
                return HttpResponse::json(404, "{\"error\":\"no such order\"}");
            };
            let Some(mut order) = Order::from_bytes(&current) else {
                return HttpResponse::json(500, "{\"error\":\"undecodable agreed state\"}");
            };
            for (i, d) in deltas.iter().enumerate() {
                if let Err(msg) = d.apply(&mut order) {
                    return HttpResponse::json(
                        400,
                        format!("{{\"error\":{},\"index\":{i}}}", js(&msg)),
                    );
                }
            }
        }
        // One enqueue-then-dispatch: the whole bulk lands in the pending
        // queue before the first round goes out, so it coalesces into
        // `batch_max`-sized rounds. Admission is all-or-nothing against
        // `pending_updates_max` (`429` when the bulk does not fit).
        let submitted = handle.invoke({
            let oid = oid.clone();
            move |c, ctx| {
                let bytes = deltas.iter().map(|d| d.to_bytes()).collect();
                c.submit_updates(&oid, bytes, ctx)
            }
        });
        let tickets = match submitted {
            Ok(tickets) => tickets,
            Err(CoordError::Busy { .. }) => return self.backpressure(),
            Err(e) => {
                return HttpResponse::json(500, format!("{{\"error\":{}}}", js(&format!("{e}"))))
            }
        };
        match mode {
            Mode::Synchronous => {
                let waiting = tickets.clone();
                let done = handle.wait_until(self.sync_timeout, move |c| {
                    waiting.iter().all(|t| c.outcome_of_ticket(t).is_some())
                });
                if !done {
                    return HttpResponse::json(504, "{\"error\":\"coordination timed out\"}");
                }
                let ctrl = Controller::new(handle.clone(), self.object.clone());
                let mut last_seq = 0;
                for &ticket in &tickets {
                    match ctrl.poll_status(CoordTicket { ticket }) {
                        TicketStatus::Installed { state } => {
                            self.telemetry.add(names::SERVE_INSTALLED, 1);
                            last_seq = state.seq;
                        }
                        TicketStatus::Invalidated { vetoers } => {
                            self.telemetry.add(names::SERVE_VETOED, 1);
                            return HttpResponse::json(
                                409,
                                format!(
                                    "{{\"outcome\":\"invalidated\",\"vetoers\":{}}}",
                                    vetoers_json(&vetoers)
                                ),
                            );
                        }
                        TicketStatus::Aborted { reason } => {
                            self.telemetry.add(names::SERVE_VETOED, 1);
                            return HttpResponse::json(
                                409,
                                format!("{{\"outcome\":\"aborted\",\"reason\":{}}}", js(&reason)),
                            );
                        }
                        other => {
                            return HttpResponse::json(
                                500,
                                format!(
                                    "{{\"error\":{}}}",
                                    js(&format!("unexpected ticket status {other:?}"))
                                ),
                            )
                        }
                    }
                }
                HttpResponse::json(
                    200,
                    format!(
                        "{{\"outcome\":\"installed\",\"ops\":{},\"seq\":{last_seq}}}",
                        tickets.len(),
                    ),
                )
            }
            Mode::DeferredSynchronous | Mode::Asynchronous => {
                let mut publics = Vec::with_capacity(tickets.len());
                {
                    let mut map = self.tickets.lock().expect("tickets");
                    for &ticket in &tickets {
                        let public = self.next_ticket.fetch_add(1, Ordering::SeqCst);
                        map.insert(
                            public,
                            TicketRef {
                                group: g,
                                party: p,
                                ticket,
                                counted: false,
                            },
                        );
                        publics.push(public);
                    }
                }
                let list = publics
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                HttpResponse::json(202, format!("{{\"tickets\":[{list}]}}"))
            }
        }
    }

    fn backpressure(&self) -> HttpResponse {
        self.telemetry.add(names::SERVE_BACKPRESSURE_429, 1);
        HttpResponse::json(
            429,
            "{\"error\":\"pending updates at capacity, retry later\"}",
        )
    }

    /// Finishes a submitted update according to the request's mode:
    /// block for the outcome (sync) or hand out a pollable ticket.
    fn conclude(&self, g: usize, p: usize, ticket: TicketId, mode: Mode) -> HttpResponse {
        match mode {
            Mode::Synchronous => {
                let handle = &self.handles[g][p];
                let done = handle.wait_until(self.sync_timeout, move |c| {
                    c.outcome_of_ticket(&ticket).is_some()
                });
                if !done {
                    return HttpResponse::json(504, "{\"error\":\"coordination timed out\"}");
                }
                let ctrl = Controller::new(handle.clone(), self.object.clone());
                match ctrl.poll_status(CoordTicket { ticket }) {
                    TicketStatus::Installed { state } => {
                        self.telemetry.add(names::SERVE_INSTALLED, 1);
                        HttpResponse::json(
                            200,
                            format!("{{\"outcome\":\"installed\",\"seq\":{}}}", state.seq),
                        )
                    }
                    TicketStatus::Invalidated { vetoers } => {
                        self.telemetry.add(names::SERVE_VETOED, 1);
                        HttpResponse::json(
                            409,
                            format!(
                                "{{\"outcome\":\"invalidated\",\"vetoers\":{}}}",
                                vetoers_json(&vetoers)
                            ),
                        )
                    }
                    TicketStatus::Aborted { reason } => {
                        self.telemetry.add(names::SERVE_VETOED, 1);
                        HttpResponse::json(
                            409,
                            format!("{{\"outcome\":\"aborted\",\"reason\":{}}}", js(&reason)),
                        )
                    }
                    other => HttpResponse::json(
                        500,
                        format!(
                            "{{\"error\":{}}}",
                            js(&format!("unexpected ticket status {other:?}"))
                        ),
                    ),
                }
            }
            Mode::DeferredSynchronous | Mode::Asynchronous => {
                let public = self.next_ticket.fetch_add(1, Ordering::SeqCst);
                self.tickets.lock().expect("tickets").insert(
                    public,
                    TicketRef {
                        group: g,
                        party: p,
                        ticket,
                        counted: false,
                    },
                );
                HttpResponse::json(202, format!("{{\"ticket\":{public}}}"))
            }
        }
    }

    /// `GET /tickets/:id` — idempotent status poll, veto reasons
    /// included ([`Controller::poll_status`] semantics over HTTP). With
    /// `?wait_ms=N` the request long-polls: it blocks on the group's
    /// condvar (capped at the server's sync timeout) until the ticket
    /// turns terminal, so pollers ride the same wakeup path as
    /// synchronous calls instead of hammering the coordinator with
    /// busy re-reads.
    fn ticket_status(&self, id: &str, req: &HttpRequest) -> HttpResponse {
        let Ok(public) = id.parse::<u64>() else {
            return HttpResponse::json(400, "{\"error\":\"ticket id must be an integer\"}");
        };
        let wait_ms: u64 = req
            .query_param("wait_ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        // Copy the reference out and drop the map lock before touching
        // the coordinator: `poll_status` waits on the group's slot, and
        // holding the global ticket map across that wait would convoy
        // every other poll and every deferred submit behind one slow
        // group.
        let (group, party, ticket) = {
            let tickets = self.tickets.lock().expect("tickets");
            let Some(entry) = tickets.get(&public) else {
                return HttpResponse::json(404, "{\"status\":\"unknown\"}");
            };
            (entry.group, entry.party, entry.ticket)
        };
        let handle = &self.handles[group][party];
        let ctrl = Controller::new(handle.clone(), self.object.clone());
        let status = if wait_ms > 0 {
            let budget = Duration::from_millis(wait_ms).min(self.sync_timeout);
            ctrl.wait_terminal(CoordTicket { ticket }, budget)
        } else {
            ctrl.poll_status(CoordTicket { ticket })
        };
        self.count_terminal(public, &status);
        if matches!(status, TicketStatus::Unknown) {
            return HttpResponse::json(404, "{\"status\":\"unknown\"}");
        }
        HttpResponse::json(200, Self::status_json(&status))
    }

    /// `GET /tickets?ids=a,b,c` — several tickets in one request;
    /// `?wait_ms=N` long-polls until **all** are terminal (one overall
    /// budget, capped at the sync timeout). One response entry per id,
    /// in request order — this is how a windowed deferred client drains
    /// a whole batch for the price of a single round-trip.
    fn tickets_status(&self, req: &HttpRequest) -> HttpResponse {
        let Some(ids) = req.query_param("ids") else {
            return HttpResponse::json(400, "{\"error\":\"ids query parameter required\"}");
        };
        let publics: Vec<u64> = ids.split(',').filter_map(|s| s.trim().parse().ok()).collect();
        if publics.is_empty() || publics.len() > BULK_MAX {
            return HttpResponse::json(
                400,
                format!("{{\"error\":\"between 1 and {BULK_MAX} ticket ids\"}}"),
            );
        }
        let wait_ms: u64 = req
            .query_param("wait_ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let deadline = Instant::now() + Duration::from_millis(wait_ms).min(self.sync_timeout);
        let mut entries = Vec::with_capacity(publics.len());
        for &public in &publics {
            let found = {
                let tickets = self.tickets.lock().expect("tickets");
                tickets
                    .get(&public)
                    .map(|e| (e.group, e.party, e.ticket))
            };
            let Some((group, party, ticket)) = found else {
                entries.push(format!("{{\"ticket\":{public},\"status\":\"unknown\"}}"));
                continue;
            };
            let ctrl = Controller::new(self.handles[group][party].clone(), self.object.clone());
            let budget = deadline.saturating_duration_since(Instant::now());
            let status = if budget.is_zero() {
                ctrl.poll_status(CoordTicket { ticket })
            } else {
                // Sequential waits share one deadline; tickets resolve
                // concurrently in their groups regardless of the order
                // this loop visits them.
                ctrl.wait_terminal(CoordTicket { ticket }, budget)
            };
            self.count_terminal(public, &status);
            let inner = Self::status_json(&status);
            entries.push(format!(
                "{{\"ticket\":{public},{}",
                inner.strip_prefix('{').unwrap_or(&inner)
            ));
        }
        HttpResponse::json(200, format!("{{\"tickets\":[{}]}}", entries.join(",")))
    }

    /// Counts a ticket's first observed terminal status into the
    /// `serve_installed`/`serve_vetoed` counters (idempotent per
    /// ticket).
    fn count_terminal(&self, public: u64, status: &TicketStatus) {
        if !status.is_terminal() {
            return;
        }
        let mut tickets = self.tickets.lock().expect("tickets");
        if let Some(entry) = tickets.get_mut(&public) {
            if !entry.counted {
                entry.counted = true;
                match status {
                    TicketStatus::Installed { .. } => {
                        self.telemetry.add(names::SERVE_INSTALLED, 1)
                    }
                    _ => self.telemetry.add(names::SERVE_VETOED, 1),
                }
            }
        }
    }

    /// The status object every ticket endpoint answers with.
    fn status_json(status: &TicketStatus) -> String {
        match status {
            TicketStatus::Unknown => "{\"status\":\"unknown\"}".to_string(),
            TicketStatus::Pending { run } => format!(
                "{{\"status\":\"pending\",\"dispatched\":{}}}",
                run.is_some()
            ),
            TicketStatus::Installed { state } => {
                format!("{{\"status\":\"installed\",\"seq\":{}}}", state.seq)
            }
            TicketStatus::Invalidated { vetoers } => format!(
                "{{\"status\":\"invalidated\",\"vetoers\":{}}}",
                vetoers_json(vetoers)
            ),
            TicketStatus::Aborted { reason } => {
                format!("{{\"status\":\"aborted\",\"reason\":{}}}", js(reason))
            }
        }
    }

    /// The explicit §5 scoping surface: `enter`/`examine`/`update`/
    /// `leave` on a session pinned to the (order, party) pair. The
    /// working copy lives server-side across requests; the outermost
    /// `leave` initiates coordination in the session's mode.
    fn scope_call(&self, g: usize, action: &str, req: &HttpRequest) -> HttpResponse {
        let p = match self.party_index(req, "customer") {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let mut sessions = self.sessions.lock().expect("sessions");
        match action {
            "enter" => {
                let mode = match self.mode_of(req) {
                    Ok(m) => m,
                    Err(resp) => return resp,
                };
                let session = sessions.entry((g, p)).or_insert_with(|| Session {
                    ctrl: Controller::new(self.handles[g][p].clone(), self.object.clone())
                        .mode(mode)
                        .timeout(self.sync_timeout),
                    depth: 0,
                });
                if let Err(e) = session.ctrl.enter() {
                    sessions.remove(&(g, p));
                    return HttpResponse::json(
                        404,
                        format!("{{\"error\":{}}}", js(&format!("{e}"))),
                    );
                }
                session.depth += 1;
                let state = session.ctrl.state().map(|s| s.to_vec()).unwrap_or_default();
                HttpResponse {
                    status: 200,
                    content_type: "application/json".into(),
                    body: state,
                }
            }
            "examine" => {
                let Some(session) = sessions.get_mut(&(g, p)) else {
                    return HttpResponse::json(409, "{\"error\":\"no open scope\"}");
                };
                if let Err(e) = session.ctrl.examine() {
                    return HttpResponse::json(
                        409,
                        format!("{{\"error\":{}}}", js(&format!("{e}"))),
                    );
                }
                let state = session.ctrl.state().map(|s| s.to_vec()).unwrap_or_default();
                HttpResponse {
                    status: 200,
                    content_type: "application/json".into(),
                    body: state,
                }
            }
            "update" => {
                let body = match self.body_of(req) {
                    Ok(b) => b,
                    Err(resp) => return resp,
                };
                let Some(session) = sessions.get_mut(&(g, p)) else {
                    return HttpResponse::json(409, "{\"error\":\"no open scope\"}");
                };
                let Ok(working) = session.ctrl.state() else {
                    return HttpResponse::json(409, "{\"error\":\"no working state\"}");
                };
                let Some(mut order) = Order::from_bytes(working) else {
                    return HttpResponse::json(500, "{\"error\":\"undecodable working state\"}");
                };
                let op = body.op.clone().unwrap_or_else(|| "line".to_string());
                if let Err(msg) = Self::apply_action(&op, &body, &mut order) {
                    return HttpResponse::json(400, format!("{{\"error\":{}}}", js(&msg)));
                }
                let bytes = order.to_bytes();
                // Keep the working copy current AND mark the scope as an
                // update-kind access carrying the latest whole state.
                if let Err(e) = session
                    .ctrl
                    .set_state(bytes.clone())
                    .and_then(|()| session.ctrl.update(bytes))
                {
                    return HttpResponse::json(
                        409,
                        format!("{{\"error\":{}}}", js(&format!("{e}"))),
                    );
                }
                HttpResponse::json(200, "{\"ok\":true}")
            }
            "leave" => {
                // Take the session out of the map before leaving: a
                // synchronous leave blocks for the whole coordination
                // round, and other sessions must stay serviceable.
                let Some(mut session) = sessions.remove(&(g, p)) else {
                    return HttpResponse::json(409, "{\"error\":\"no open scope\"}");
                };
                drop(sessions);
                session.depth = session.depth.saturating_sub(1);
                let outermost = session.depth == 0;
                let result = session.ctrl.leave();
                if !outermost {
                    self.sessions
                        .lock()
                        .expect("sessions")
                        .insert((g, p), session);
                }
                match result {
                    Ok(None) => HttpResponse::json(200, "{\"outcome\":\"none\"}"),
                    Ok(Some(ticket)) => {
                        if !outermost {
                            // Inner leave never coordinates; outer-only.
                            return HttpResponse::json(200, "{\"outcome\":\"none\"}");
                        }
                        // A synchronous leave has already committed inside
                        // Controller::leave — its outcome is known; the
                        // other modes hand out a pollable ticket.
                        match self.handles[g][p].read({
                            let t = ticket.ticket;
                            move |c| c.outcome_of_ticket(&t)
                        }) {
                            Some(outcome) if outcome.is_installed() => {
                                self.telemetry.add(names::SERVE_INSTALLED, 1);
                                HttpResponse::json(200, "{\"outcome\":\"installed\"}")
                            }
                            _ => {
                                let public = self.next_ticket.fetch_add(1, Ordering::SeqCst);
                                self.tickets.lock().expect("tickets").insert(
                                    public,
                                    TicketRef {
                                        group: g,
                                        party: p,
                                        ticket: ticket.ticket,
                                        counted: false,
                                    },
                                );
                                HttpResponse::json(202, format!("{{\"ticket\":{public}}}"))
                            }
                        }
                    }
                    Err(CoordError::Invalidated { vetoers }) => {
                        self.telemetry.add(names::SERVE_VETOED, 1);
                        HttpResponse::json(
                            409,
                            format!(
                                "{{\"outcome\":\"invalidated\",\"vetoers\":{}}}",
                                vetoers_json(&vetoers)
                            ),
                        )
                    }
                    Err(CoordError::Busy { .. }) => self.backpressure(),
                    Err(CoordError::Timeout(_)) => {
                        HttpResponse::json(504, "{\"error\":\"coordination timed out\"}")
                    }
                    Err(e) => HttpResponse::json(
                        500,
                        format!("{{\"error\":{}}}", js(&format!("{e}"))),
                    ),
                }
            }
            _ => unreachable!("routed actions only"),
        }
    }
}
