//! Multi-client integration tests: concurrent conflicting updates on one
//! order exercise the validation-veto race over real HTTP, and the
//! fleet converges with a clean evidence audit.

use b2b_core::CoordinatorConfig;
use b2b_net::HttpClient;
use b2b_server::{OrderServer, OrderServerOptions};
use b2b_telemetry::Telemetry;
use std::time::Duration;

fn boot(orders: usize) -> OrderServer {
    OrderServer::start(OrderServerOptions {
        orders,
        parties: 2,
        shards: Some(2),
        http_workers: 8,
        config: CoordinatorConfig::default(),
        telemetry: Telemetry::new(),
        sync_timeout: Duration::from_secs(30),
        ..OrderServerOptions::default()
    })
    .expect("server boots")
}

/// Pulls the integer value of `"key":<n>` out of a JSON body.
fn int_field(body: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = body.find(&tag)? + tag.len();
    let digits: String = body[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[test]
fn scope_roundtrip_over_http() {
    // The README quickstart, as a test: enter → update → leave in
    // synchronous mode installs the line at both organisations.
    let server = boot(2);
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    let (status, body) = client.post("/orders", "").expect("create");
    assert_eq!(status, 201, "{body}");
    let order = int_field(&body, "order").expect("order id");

    let (status, body) = client
        .post(&format!("/orders/{order}/enter?as=customer&mode=sync"), "")
        .expect("enter");
    assert_eq!(status, 200, "{body}");

    let (status, body) = client
        .post(
            &format!("/orders/{order}/update?as=customer"),
            "{\"op\":\"line\",\"item\":\"widget1\",\"qty\":2}",
        )
        .expect("update");
    assert_eq!(status, 200, "{body}");

    let (status, body) = client
        .post(&format!("/orders/{order}/leave?as=customer"), "")
        .expect("leave");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("installed"), "{body}");

    let (status, body) = client
        .get(&format!("/orders/{order}"))
        .expect("read back");
    assert_eq!(status, 200);
    assert!(body.contains("widget1"), "{body}");

    // The supplier prices it through the one-shot endpoint.
    let (status, body) = client
        .post(
            &format!("/orders/{order}/price"),
            "{\"item\":\"widget1\",\"unit_price\":10}",
        )
        .expect("price");
    assert_eq!(status, 200, "{body}");

    let (clean, records) = server.audit();
    assert!(clean, "evidence audit must be clean");
    assert!(records > 0);
    server.shutdown();
}

#[test]
fn stale_scope_leave_is_vetoed_and_ticket_poll_is_idempotent() {
    // Deterministic veto: a scoped customer session snapshots the empty
    // order, a concurrent direct update installs widget1, then the stale
    // session proposes its own first line — rename from the peers' view,
    // vetoed with the validator's reason. Polling the ticket twice must
    // answer identically (idempotency over HTTP).
    let server = boot(2);
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    let (status, body) = client.post("/orders", "").expect("create");
    assert_eq!(status, 201, "{body}");
    let order = int_field(&body, "order").expect("order id");

    // Open a deferred-mode scope — working copy snapshots the EMPTY order.
    let (status, _) = client
        .post(&format!("/orders/{order}/enter?mode=deferred"), "")
        .expect("enter");
    assert_eq!(status, 200);

    // A concurrent client (same customer org, no scope) installs widget1.
    let (status, body) = client
        .post(
            &format!("/orders/{order}/lines?mode=sync"),
            "{\"item\":\"widget1\",\"qty\":2}",
        )
        .expect("direct line");
    assert_eq!(status, 200, "{body}");

    // The stale session adds a DIFFERENT first line and leaves: its
    // proposal says lines[0] = widget9 where the group agreed widget1.
    let (status, body) = client
        .post(
            &format!("/orders/{order}/update"),
            "{\"op\":\"line\",\"item\":\"widget9\",\"qty\":1}",
        )
        .expect("stale update");
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .post(&format!("/orders/{order}/leave"), "")
        .expect("stale leave");
    assert_eq!(status, 202, "deferred leave hands out a ticket: {body}");
    let ticket = int_field(&body, "ticket").expect("ticket id");

    // Poll to terminal.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let first = loop {
        let (status, body) = client
            .get(&format!("/tickets/{ticket}"))
            .expect("poll ticket");
        assert_eq!(status, 200, "{body}");
        if !body.contains("pending") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ticket never reached a terminal status"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(first.contains("invalidated"), "{first}");
    assert!(
        first.contains("items may not be renamed"),
        "veto reason must surface in the poll body: {first}"
    );
    assert!(first.contains("supplier"), "vetoer named: {first}");

    // Idempotency: the SAME body on every subsequent poll.
    for _ in 0..2 {
        let (status, again) = client
            .get(&format!("/tickets/{ticket}"))
            .expect("re-poll ticket");
        assert_eq!(status, 200);
        assert_eq!(again, first, "terminal ticket status must not change");
    }

    // The agreed order still carries widget1 — the stale proposal never
    // installed.
    let (_, body) = client.get(&format!("/orders/{order}")).expect("read");
    assert!(body.contains("widget1"), "{body}");
    assert!(!body.contains("widget9"), "{body}");

    assert!(server.wait_converged(Duration::from_secs(30)));
    let (clean, _) = server.audit();
    assert!(clean, "evidence audit must be clean after a veto");
    server.shutdown();
}

#[test]
fn concurrent_conflicting_updates_converge_with_clean_audit() {
    // The race itself: several client threads hammer ONE order from both
    // roles in mixed modes. Outcomes per request may install or veto —
    // the invariants are: every ticket resolves, no replica diverges,
    // the audit stays clean, and backpressure (429) never loses a
    // request silently.
    let server = boot(2);
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).expect("connect");
    let (status, body) = client.post("/orders", "").expect("create");
    assert_eq!(status, 201);
    let order = int_field(&body, "order").expect("order id");

    // Seed lines the supplier can price.
    for i in 0..4 {
        let (status, body) = client
            .post(
                &format!("/orders/{order}/lines?mode=sync"),
                &format!("{{\"item\":\"seed{i}\",\"qty\":1}}"),
            )
            .expect("seed line");
        assert_eq!(status, 200, "{body}");
    }

    let threads: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut tickets = Vec::new();
                let mut installed = 0u64;
                let mut vetoed = 0u64;
                for i in 0..10 {
                    // Even threads act as the customer adding/amending
                    // lines; odd threads as the supplier pricing seeds.
                    let (path, body) = if t % 2 == 0 {
                        (
                            format!("/orders/{order}/lines?mode={}", ["sync", "deferred", "async"][i % 3]),
                            format!("{{\"item\":\"t{t}i{i}\",\"qty\":{}}}", i + 1),
                        )
                    } else {
                        (
                            format!("/orders/{order}/price?mode={}", ["sync", "deferred", "async"][i % 3]),
                            format!("{{\"item\":\"seed{}\",\"unit_price\":{}}}", i % 4, 10 + i),
                        )
                    };
                    loop {
                        let (status, body) = client.post(&path, &body).expect("request");
                        match status {
                            200 => {
                                installed += 1;
                                break;
                            }
                            409 => {
                                vetoed += 1;
                                break;
                            }
                            202 => {
                                tickets.push(
                                    int_field(&body, "ticket").expect("ticket id in 202"),
                                );
                                break;
                            }
                            429 => std::thread::sleep(Duration::from_millis(5)),
                            other => panic!("unexpected status {other}: {body}"),
                        }
                    }
                }
                // Drain every deferred/async ticket to a terminal status.
                let deadline = std::time::Instant::now() + Duration::from_secs(60);
                for ticket in tickets {
                    loop {
                        let (status, body) = client
                            .get(&format!("/tickets/{ticket}"))
                            .expect("poll");
                        assert_eq!(status, 200, "{body}");
                        if body.contains("installed") {
                            installed += 1;
                            break;
                        }
                        if body.contains("invalidated") || body.contains("aborted") {
                            vetoed += 1;
                            break;
                        }
                        assert!(
                            std::time::Instant::now() < deadline,
                            "ticket {ticket} never resolved"
                        );
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                (installed, vetoed)
            })
        })
        .collect();

    let mut installed = 0u64;
    let mut vetoed = 0u64;
    for t in threads {
        let (i, v) = t.join().expect("client thread");
        installed += i;
        vetoed += v;
    }
    assert_eq!(installed + vetoed, 60, "every request reached an outcome");
    assert!(installed > 0, "some updates must install under the race");

    // Convergence: replicas agree, queues drained.
    assert!(server.wait_converged(Duration::from_secs(60)));

    // Non-repudiation survives the race: every store audits clean.
    let (clean, records) = server.audit();
    assert!(clean, "evidence audit must be clean after the race");
    assert!(records > 0);
    server.shutdown();
}
