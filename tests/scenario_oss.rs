//! §2 scenario 2 end-to-end: dispersal of OSS — customer and provider
//! share the service configuration, each controlling their own aspects,
//! jointly working the fault queue.

mod common;

use b2bobjects::apps::oss::{OssObject, ServiceConfig};
use b2bobjects::core::Outcome;
use b2bobjects::crypto::PartyId;
use common::World;

fn factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(OssObject::new(
        PartyId::new("customer"),
        PartyId::new("telco"),
    ))
}

#[test]
fn dispersed_oss_roles_enforced_end_to_end() {
    let mut world = World::new(&["telco", "customer"], 160);
    world.share("svc", "telco", &["customer"], factory);

    // The customer tailors its own aspects.
    let mut cfg = ServiceConfig::from_bytes(&world.state("customer", "svc")).unwrap();
    cfg.features.insert("voicemail".into(), true);
    cfg.routing_policy = "least-cost".into();
    assert!(world
        .propose("customer", "svc", cfg.to_bytes())
        .1
        .is_installed());

    // The provider provisions capacity.
    let mut cfg = ServiceConfig::from_bytes(&world.state("telco", "svc")).unwrap();
    cfg.capacity = 500;
    assert!(world
        .propose("telco", "svc", cfg.to_bytes())
        .1
        .is_installed());

    // The provider reaching into customer-controlled aspects is vetoed —
    // the autonomy boundary §2 demands.
    let before = world.state("customer", "svc");
    let mut cfg = ServiceConfig::from_bytes(&world.state("telco", "svc")).unwrap();
    cfg.features.insert("voicemail".into(), false);
    let (_, outcome) = world.propose("telco", "svc", cfg.to_bytes());
    match outcome {
        Outcome::Invalidated { vetoers } => assert_eq!(vetoers[0].0, PartyId::new("customer")),
        other => panic!("expected veto, got {other:?}"),
    }
    assert_eq!(world.state("customer", "svc"), before);

    // Fault handling: customer opens, provider resolves; both replicated.
    let mut cfg = ServiceConfig::from_bytes(&world.state("customer", "svc")).unwrap();
    let id = cfg.open_ticket("intermittent packet loss");
    assert!(world
        .propose("customer", "svc", cfg.to_bytes())
        .1
        .is_installed());
    let mut cfg = ServiceConfig::from_bytes(&world.state("telco", "svc")).unwrap();
    assert!(cfg.resolve_ticket(id, "replaced faulty linecard"));
    assert!(world
        .propose("telco", "svc", cfg.to_bytes())
        .1
        .is_installed());

    let final_cfg = ServiceConfig::from_bytes(&world.state("customer", "svc")).unwrap();
    assert_eq!(final_cfg.capacity, 500);
    assert_eq!(final_cfg.features.get("voicemail"), Some(&true));
    assert_eq!(
        final_cfg.tickets[0].resolution.as_deref(),
        Some("replaced faulty linecard")
    );
    assert_eq!(world.state("telco", "svc"), world.state("customer", "svc"));
}
