//! Figure 1b: indirect interaction through trusted agents with
//! *conditional state disclosure* — the agent relays only what the
//! disclosure policy allows between two sharing groups.

mod common;

use b2bobjects::apps::order::{Order, OrderObject, OrderRoles};
use b2bobjects::apps::ttp::BridgeAgent;
use b2bobjects::core::{ObjectId, SharedCell};
use b2bobjects::crypto::PartyId;
use common::World;

#[test]
fn agent_relays_validated_state_with_conditional_disclosure() {
    // org1 shares a full order with the agent; org3 receives, via the
    // agent, only the *totals view* (item names and quantities — never
    // prices), in a second sharing group.
    let mut world = World::new(&["org1", "agent", "org3"], 140);

    let roles = OrderRoles::two_party(PartyId::new("org1"), PartyId::new("agent"));
    let order_factory = move || -> Box<dyn b2bobjects::core::B2BObject> {
        Box::new(OrderObject::new(roles.clone()))
    };
    world.share("full-order", "org1", &["agent"], order_factory);

    // The disclosed view is an unconstrained cell owned by the agent side.
    let view_factory = || -> Box<dyn b2bobjects::core::B2BObject> {
        Box::new(SharedCell::new(Vec::<(String, u32)>::new()))
    };
    world.net.invoke(&PartyId::new("agent"), move |c, _| {
        c.register_object(ObjectId::new("disclosed-view"), Box::new(view_factory))
            .unwrap();
    });
    world.join_with("disclosed-view", "org3", "agent", view_factory);

    // org1 places an order with prices.
    let mut order = Order::from_bytes(&world.state("org1", "full-order")).unwrap();
    order.set_quantity("widget", 3);
    assert!(world
        .propose("org1", "full-order", order.to_bytes())
        .1
        .is_installed());
    let mut order = Order::from_bytes(&world.state("agent", "full-order")).unwrap();
    order.set_price("widget", 10);
    // The agent itself is the "supplier" role in this pairing.
    assert!(world
        .propose("agent", "full-order", order.to_bytes())
        .1
        .is_installed());

    // The agent relays through its disclosure filter: quantities only.
    let bridge = BridgeAgent::new(
        ObjectId::new("full-order"),
        ObjectId::new("disclosed-view"),
        |full| {
            let order = Order::from_bytes(full)?;
            let view: Vec<(String, u32)> = order
                .lines
                .iter()
                .map(|l| (l.item.clone(), l.qty))
                .collect();
            serde_json::to_vec(&view).ok()
        },
    );
    let pumped = world.net.invoke(&PartyId::new("agent"), move |c, ctx| {
        bridge.pump_with(c, ctx).unwrap()
    });
    assert!(pumped);
    world.run();

    // org3 sees the quantities, and only the quantities.
    let view: Vec<(String, u32)> =
        serde_json::from_slice(&world.state("org3", "disclosed-view")).unwrap();
    assert_eq!(view, vec![("widget".to_string(), 3)]);
    let raw = String::from_utf8(world.state("org3", "disclosed-view")).unwrap();
    assert!(!raw.contains("10"), "prices are never disclosed to org3");
}

#[test]
fn agent_withholds_disclosure_when_filter_declines() {
    let mut world = World::new(&["org1", "agent", "org3"], 141);
    let cell_factory =
        || -> Box<dyn b2bobjects::core::B2BObject> { Box::new(SharedCell::new(String::new())) };
    world.share("src", "org1", &["agent"], cell_factory);
    world.net.invoke(&PartyId::new("agent"), move |c, _| {
        c.register_object(ObjectId::new("dst"), Box::new(cell_factory))
            .unwrap();
    });
    world.join_with("dst", "org3", "agent", cell_factory);

    let secret = serde_json::to_vec(&"SECRET: do not disclose".to_string()).unwrap();
    assert!(world.propose("org1", "src", secret).1.is_installed());

    let bridge = BridgeAgent::new(ObjectId::new("src"), ObjectId::new("dst"), |bytes| {
        let text: String = serde_json::from_slice(bytes).ok()?;
        if text.contains("SECRET") {
            None // disclosure withheld
        } else {
            Some(bytes.to_vec())
        }
    });
    let pumped = world.net.invoke(&PartyId::new("agent"), move |c, ctx| {
        bridge.pump_with(c, ctx).unwrap()
    });
    assert!(!pumped, "the filter withheld disclosure");
    world.run();
    let dst: String = serde_json::from_slice(&world.state("org3", "dst")).unwrap();
    assert_eq!(dst, "", "org3 never sees the withheld state");
}
