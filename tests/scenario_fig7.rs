//! Reproduction of **Figure 7**: the order-processing application.
//!
//! Script from §5.2: "the customer orders 2 widget1s. This is a valid
//! entry. The supplier then prices widget1 at 10 per unit … The customer
//! then amends the order for the supply of 10 widget2s … Then the supplier
//! attempts to both price widget2 (a valid action) and change the quantity
//! required (an invalid action). This update to the order is rejected and
//! is not reflected in the customer's copy."

mod common;

use b2bobjects::apps::order::{Order, OrderObject, OrderRoles};
use b2bobjects::core::Outcome;
use b2bobjects::crypto::PartyId;
use common::World;

fn roles() -> OrderRoles {
    OrderRoles::two_party(PartyId::new("customer"), PartyId::new("supplier"))
}

fn order_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(OrderObject::new(roles()))
}

#[test]
fn figure7_invalid_supplier_update_not_reflected_at_customer() {
    let mut world = World::new(&["customer", "supplier"], 110);
    world.share("order", "customer", &["supplier"], order_factory);

    // Customer orders 2 widget1s: valid.
    let mut order = Order::from_bytes(&world.state("customer", "order")).unwrap();
    order.set_quantity("widget1", 2);
    let (_, outcome) = world.propose("customer", "order", order.to_bytes());
    assert!(outcome.is_installed());

    // Supplier prices widget1 at 10: valid, reflected at the customer.
    let mut order = Order::from_bytes(&world.state("supplier", "order")).unwrap();
    assert!(order.set_price("widget1", 10));
    let (_, outcome) = world.propose("supplier", "order", order.to_bytes());
    assert!(outcome.is_installed());
    let at_customer = Order::from_bytes(&world.state("customer", "order")).unwrap();
    assert_eq!(at_customer.line("widget1").unwrap().unit_price, Some(10));

    // Customer orders 10 widget2s: valid, reflected at the supplier.
    let mut order = Order::from_bytes(&world.state("customer", "order")).unwrap();
    order.set_quantity("widget2", 10);
    let (_, outcome) = world.propose("customer", "order", order.to_bytes());
    assert!(outcome.is_installed());
    let at_supplier = Order::from_bytes(&world.state("supplier", "order")).unwrap();
    assert_eq!(at_supplier.line("widget2").unwrap().qty, 10);

    // Supplier prices widget2 (valid) AND changes the quantity (invalid):
    // the whole update is rejected.
    let before = world.state("customer", "order");
    let mut order = Order::from_bytes(&world.state("supplier", "order")).unwrap();
    assert!(order.set_price("widget2", 7));
    order.set_quantity("widget2", 99);
    let (_, outcome) = world.propose("supplier", "order", order.to_bytes());
    match outcome {
        Outcome::Invalidated { vetoers } => {
            assert_eq!(vetoers[0].0, PartyId::new("customer"));
        }
        other => panic!("expected veto, got {other:?}"),
    }
    // "…and is not reflected in the customer's copy."
    assert_eq!(world.state("customer", "order"), before);
    let final_order = Order::from_bytes(&world.state("supplier", "order")).unwrap();
    assert_eq!(final_order.line("widget2").unwrap().qty, 10);
    assert_eq!(final_order.line("widget2").unwrap().unit_price, None);
}

#[test]
fn four_party_order_with_approver_and_dispatcher() {
    // §5.2's alternative instantiation: "an approver to sanction the items
    // ordered by the customer and a dispatcher to commit to delivery
    // terms. The order object would then be shared between four parties."
    let roles = OrderRoles::four_party(
        PartyId::new("customer"),
        PartyId::new("supplier"),
        PartyId::new("approver"),
        PartyId::new("dispatcher"),
    );
    let factory = move || -> Box<dyn b2bobjects::core::B2BObject> {
        Box::new(OrderObject::new(roles.clone()))
    };
    let mut world = World::new(&["customer", "supplier", "approver", "dispatcher"], 111);
    world.share(
        "order",
        "customer",
        &["supplier", "approver", "dispatcher"],
        factory,
    );

    // Customer orders.
    let mut order = Order::from_bytes(&world.state("customer", "order")).unwrap();
    order.set_quantity("gadget", 4);
    assert!(world
        .propose("customer", "order", order.to_bytes())
        .1
        .is_installed());

    // Approver sanctions the line.
    let mut order = Order::from_bytes(&world.state("approver", "order")).unwrap();
    assert!(order.approve("gadget"));
    assert!(world
        .propose("approver", "order", order.to_bytes())
        .1
        .is_installed());

    // Supplier prices it.
    let mut order = Order::from_bytes(&world.state("supplier", "order")).unwrap();
    assert!(order.set_price("gadget", 25));
    assert!(world
        .propose("supplier", "order", order.to_bytes())
        .1
        .is_installed());

    // Dispatcher commits delivery terms.
    let mut order = Order::from_bytes(&world.state("dispatcher", "order")).unwrap();
    order.delivery_terms = Some("rail freight, 5 days".into());
    assert!(world
        .propose("dispatcher", "order", order.to_bytes())
        .1
        .is_installed());

    // A supplier attempt to self-approve is vetoed by the other three.
    let mut order = Order::from_bytes(&world.state("supplier", "order")).unwrap();
    order.set_quantity("extra", 1); // suppliers cannot add items either
    let (_, outcome) = world.propose("supplier", "order", order.to_bytes());
    assert!(!outcome.is_installed());

    // All four replicas agree on the final order.
    let reference = world.state("customer", "order");
    for who in ["supplier", "approver", "dispatcher"] {
        assert_eq!(world.state(who, "order"), reference);
    }
    let final_order = Order::from_bytes(&reference).unwrap();
    assert_eq!(final_order.line("gadget").unwrap().unit_price, Some(25));
    assert!(final_order.line("gadget").unwrap().approved);
    assert_eq!(
        final_order.delivery_terms.as_deref(),
        Some("rail freight, 5 days")
    );
}
