//! A single-group run on the **sharded multi-group runtime** is
//! indistinguishable — at the evidence layer and in the causal trace
//! DAG — from the same script on the legacy fabrics.
//!
//! The sharded runtime multiplexes group event loops over a fixed worker
//! pool and wraps every frame in a group envelope, so this is the parity
//! claim that licenses running thousands of groups per process: the
//! envelope and the shard scheduler must be invisible to the protocol.
//! The tests drive the Figure-5 scenario with identical key material,
//! seeds and script on (a) the virtual-time simulator, (b) real TCP
//! loopback and (c) the sharded runtime, then compare:
//!
//! * per-party **evidence projections** (the signed log minus the two
//!   time-dependent fields) — byte-identical across all three fabrics;
//! * the sorted set of **canonical trace DAGs** (timestamps and concrete
//!   span ids normalised away) — structurally identical;
//! * protocol-semantic **counters** (transport-dependent ones like
//!   retransmits excluded) — exactly equal.
//!
//! A final test exercises crash-recovery mid-round on the sharded
//! runtime: a member is down while a round is in flight, recovers from
//! its evidence store, and the round still completes everywhere.

mod common;

use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::core::{Outcome, SharedCell};
use b2bobjects::crypto::PartyId;
use b2bobjects::telemetry::{assemble, names, MetricsSnapshot, RingRecorder, Telemetry, TraceSink};
use common::{
    evidence_projection, EvidenceProjection, ShardedWorld, TcpWorld, World, SHARD_GROUP, TCP_STEP,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Counters pinned by the protocol script, not the transport (same
/// whitelist as `telemetry_parity.rs`).
const PARITY_COUNTERS: &[&str] = &[
    names::ROUNDS_STARTED,
    names::ROUNDS_COMMITTED,
    names::ROUNDS_ABORTED,
    names::VOTES_VALID,
    names::VOTES_INVALID,
    names::MEMBERSHIP_CHANGES,
    names::EVIDENCE_RECORDS_APPENDED,
];

fn game_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(GameObject::new(Players {
        cross: PartyId::new("cross"),
        nought: PartyId::new("nought"),
    }))
}

fn recorded_telemetry(n: usize) -> (Arc<RingRecorder>, Vec<Telemetry>) {
    let recorder = Arc::new(RingRecorder::new(65_536));
    let telemetry = (0..n)
        .map(|_| Telemetry::with_sink(recorder.clone() as Arc<dyn TraceSink>))
        .collect();
    (recorder, telemetry)
}

fn harvest(recorder: &RingRecorder, telemetry: &[Telemetry]) -> (Vec<String>, MetricsSnapshot) {
    let mut dags: Vec<String> = assemble(&recorder.events())
        .iter()
        .map(|t| t.canonical_dag())
        .collect();
    dags.sort();
    let mut merged = MetricsSnapshot::default();
    for t in telemetry {
        merged.merge(&t.metrics().snapshot());
    }
    (dags, merged)
}

/// What one fabric run leaves behind: per-party evidence projections,
/// canonical trace DAGs and the merged counter snapshot.
struct RunArtifacts {
    evidence: BTreeMap<PartyId, EvidenceProjection>,
    dags: Vec<String>,
    counters: MetricsSnapshot,
}

/// The Figure-5 move script: three legal moves, then Cross's cheating
/// move, which Nought vetoes. Works against any of the three worlds —
/// they expose the same `share`/`state`/`propose` surface.
macro_rules! play_figure5 {
    ($world:expr) => {{
        $world.share("game", "cross", &["nought"], game_factory);
        for (who, mark, row, col) in [
            ("cross", Mark::X, 1, 1),
            ("nought", Mark::O, 0, 0),
            ("cross", Mark::X, 1, 2),
        ] {
            let mut board = Board::from_bytes(&$world.state(who, "game")).unwrap();
            board.play(mark, row, col).unwrap();
            let (_, outcome) = $world.propose(who, "game", board.to_bytes());
            assert!(outcome.is_installed(), "{who}'s legal move installs");
        }
        let mut cheat = Board::from_bytes(&$world.state("cross", "game")).unwrap();
        cheat.cheat_set(Mark::O, 2, 1);
        let (_, outcome) = $world.propose("cross", "game", cheat.to_bytes());
        assert!(
            matches!(outcome, Outcome::Invalidated { .. }),
            "the cheat is vetoed on every fabric"
        );
    }};
}

/// Collects the artifacts of a finished run from its stores and recorder.
macro_rules! collect {
    ($world:expr, $recorder:expr, $telemetry:expr) => {{
        let evidence = $world
            .stores
            .iter()
            .map(|(p, s)| (p.clone(), evidence_projection(s)))
            .collect();
        let (dags, counters) = harvest(&$recorder, &$telemetry);
        RunArtifacts {
            evidence,
            dags,
            counters,
        }
    }};
}

fn sim_run() -> RunArtifacts {
    let (recorder, telemetry) = recorded_telemetry(2);
    let mut world = World::with_telemetry(&["cross", "nought"], 100, telemetry.clone());
    play_figure5!(world);
    collect!(world, recorder, telemetry)
}

fn tcp_run() -> RunArtifacts {
    let (recorder, telemetry) = recorded_telemetry(2);
    let mut world = TcpWorld::with_telemetry(&["cross", "nought"], 100, telemetry.clone());
    play_figure5!(world);
    let out = collect!(world, recorder, telemetry);
    world.net.shutdown();
    out
}

fn sharded_run() -> RunArtifacts {
    let (recorder, telemetry) = recorded_telemetry(2);
    let mut world = ShardedWorld::with_telemetry(&["cross", "nought"], 100, telemetry.clone());
    play_figure5!(world);
    let out = collect!(world, recorder, telemetry);
    world.net.shutdown();
    out
}

fn sharded_tcp_run() -> RunArtifacts {
    let (recorder, telemetry) = recorded_telemetry(2);
    let mut world = ShardedWorld::with_telemetry_tcp(&["cross", "nought"], 100, telemetry.clone());
    play_figure5!(world);
    let out = collect!(world, recorder, telemetry);
    world.net.shutdown();
    out
}

fn assert_parity(reference: &RunArtifacts, sharded: &RunArtifacts, fabric: &str) {
    for (party, projection) in &reference.evidence {
        assert_eq!(
            projection, &sharded.evidence[party],
            "{party}'s evidence log must be byte-identical on {fabric} and sharded runs"
        );
    }
    assert_eq!(
        reference.dags, sharded.dags,
        "{fabric} and sharded runs must reconstruct identical causal DAGs"
    );
    for name in PARITY_COUNTERS {
        assert_eq!(
            reference.counters.counter(name),
            sharded.counters.counter(name),
            "counter {name} must agree between {fabric} and sharded runs"
        );
    }
}

#[test]
fn single_group_sharded_run_matches_sim_evidence_and_traces() {
    let sim = sim_run();
    let sharded = sharded_run();
    // The script pins the trace-set shape: one sponsored connection round
    // plus four state runs (three installs, one veto).
    assert_eq!(
        sharded.dags.len(),
        5,
        "one membership and four state traces"
    );
    assert_eq!(
        sharded
            .dags
            .iter()
            .filter(|d| d.contains("state_run/rollback"))
            .count(),
        1,
        "exactly one round rolls back: Nought's veto of the cheat"
    );
    assert_parity(&sim, &sharded, "sim");
}

#[test]
fn single_group_sharded_run_matches_tcp_evidence_and_traces() {
    let tcp = tcp_run();
    let sharded = sharded_run();
    assert_parity(&tcp, &sharded, "TCP");
}

#[test]
fn single_group_sharded_tcp_run_matches_sim_evidence_and_traces() {
    // The multiplexed-socket fabric must be just as invisible to the
    // protocol as the in-process one: identical evidence bytes, DAGs
    // and counters against the virtual-time reference.
    let sim = sim_run();
    let mux = sharded_tcp_run();
    assert_eq!(mux.dags.len(), 5, "one membership and four state traces");
    assert_parity(&sim, &mux, "sim-vs-sharded-TCP");
}

#[test]
fn sharded_tcp_and_sharded_inproc_runs_are_indistinguishable() {
    let inproc = sharded_run();
    let mux = sharded_tcp_run();
    assert_parity(&inproc, &mux, "sharded-inproc-vs-sharded-TCP");
}

fn cell_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(SharedCell::new(0u64))
}

/// `SharedCell` states are serde_json bytes; a `u64`'s are just digits.
fn enc(v: u64) -> Vec<u8> {
    v.to_string().into_bytes()
}

#[test]
fn sharded_member_crashing_mid_round_recovers_and_round_completes() {
    let world = {
        let mut w = ShardedWorld::new(&["a", "b", "c"], 42);
        w.share("cell", "a", &["b", "c"], cell_factory);
        w
    };
    let c = PartyId::new("c");
    // Take c down, then start a round: the proposal reaches a and b but
    // stalls mid-round — the unanimous rule cannot decide without c's
    // vote, and the reliable layer keeps retransmitting into the void.
    world.net.crash(SHARD_GROUP, &c);
    let run = world.propose_async("a", "cell", enc(7));
    std::thread::sleep(Duration::from_millis(400));
    {
        let r = run.clone();
        assert!(
            world.handle("a").read(move |n| n.outcome_of(&r).is_none()),
            "the round must stall while c is down"
        );
    }
    // Recovery replays the evidence store (membership, checkpoints) and
    // the next retransmission completes the round everywhere.
    world.net.recover(SHARD_GROUP, &c);
    for who in ["a", "b", "c"] {
        let r = run.clone();
        assert!(
            world
                .handle(who)
                .wait_until(TCP_STEP, move |n| n.outcome_of(&r).is_some()),
            "{who} never learned the outcome after c recovered"
        );
        let r = run.clone();
        let o = world.handle(who).read(move |n| n.outcome_of(&r).cloned());
        assert!(
            o.as_ref().unwrap().is_installed(),
            "{who} must see the round install, got {o:?}"
        );
        assert_eq!(world.state(who, "cell"), enc(7), "{who} converged");
    }
    world.net.shutdown();
}

#[test]
fn killing_the_multiplexed_socket_mid_round_recovers_and_round_completes() {
    // The one socket pair between a and b carries *every* group the two
    // parties share. Killing it mid-round drops whatever frames were in
    // flight; the reliable layer's retransmission must ride the
    // reconnect and complete the round with nothing lost at the
    // protocol layer.
    let world = {
        let mut w = ShardedWorld::new_tcp(&["a", "b", "c"], 42);
        w.share("cell", "a", &["b", "c"], cell_factory);
        w
    };
    let a = PartyId::new("a");
    let b = PartyId::new("b");
    let run = world.propose_async("a", "cell", enc(9));
    // Cut the a<->b socket pair immediately, while the round's frames
    // are (with high probability) still crossing it.
    world.net.kill_connection(&a, &b);
    for who in ["a", "b", "c"] {
        let r = run.clone();
        assert!(
            world
                .handle(who)
                .wait_until(TCP_STEP, move |n| n.outcome_of(&r).is_some()),
            "{who} never learned the outcome after the socket was killed"
        );
        let r = run.clone();
        let o = world.handle(who).read(move |n| n.outcome_of(&r).cloned());
        assert!(
            o.as_ref().unwrap().is_installed(),
            "{who} must see the round install, got {o:?}"
        );
        assert_eq!(world.state(who, "cell"), enc(9), "{who} converged");
    }
    world.net.shutdown();
}
