//! The distributed auction service of §2, scenario 3: four auction houses
//! jointly operating a regulated market place, "the same chance of a
//! successful outcome irrespective of which individual server is used".

mod common;

use b2bobjects::apps::auction::{Auction, AuctionObject};
use b2bobjects::core::Outcome;
use b2bobjects::crypto::PartyId;
use common::World;

fn factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(AuctionObject::new(Auction::open(
        "painting",
        PartyId::new("house0"),
        100,
    )))
}

#[test]
fn bids_from_any_house_are_equally_validated() {
    let houses = ["house0", "house1", "house2", "house3"];
    let mut world = World::new(&houses, 130);
    world.share("lot-42", "house0", &houses[1..], factory);

    // Clients bid through different houses; all must beat the best bid.
    let bids = [
        ("house1", "alice", 100u64, true),
        ("house3", "bob", 150, true),
        ("house2", "carol", 150, false), // does not beat bob
        ("house0", "dave", 200, true),
        ("house2", "erin", 90, false), // below best (and reserve logic)
    ];
    for (house, bidder, amount, should_install) in bids {
        let mut auction = Auction::from_bytes(&world.state(house, "lot-42")).unwrap();
        auction.place_bid(bidder, PartyId::new(house), amount);
        let (_, outcome) = world.propose(house, "lot-42", auction.to_bytes());
        assert_eq!(
            outcome.is_installed(),
            should_install,
            "bid {amount} by {bidder} via {house}"
        );
    }

    // Only the opening house may close.
    let mut closed = Auction::from_bytes(&world.state("house2", "lot-42")).unwrap();
    closed.closed = true;
    let (_, outcome) = world.propose("house2", "lot-42", closed.to_bytes());
    assert!(!outcome.is_installed(), "house2 cannot close");

    let mut closed = Auction::from_bytes(&world.state("house0", "lot-42")).unwrap();
    closed.closed = true;
    let (_, outcome) = world.propose("house0", "lot-42", closed.to_bytes());
    assert!(outcome.is_installed());

    // Every house sees the same winner — the TTP-like guarantee the
    // collaborating houses provide to their clients.
    for house in houses {
        let auction = Auction::from_bytes(&world.state(house, "lot-42")).unwrap();
        let winner = auction.winner().expect("closed with winner");
        assert_eq!(winner.bidder, "dave");
        assert_eq!(winner.amount, 200);
    }
}

#[test]
fn dishonest_house_cannot_rewrite_bid_history() {
    let houses = ["house0", "house1", "house2"];
    let mut world = World::new(&houses, 131);
    world.share("lot-7", "house0", &houses[1..], factory);

    let mut auction = Auction::from_bytes(&world.state("house1", "lot-7")).unwrap();
    auction.place_bid("alice", PartyId::new("house1"), 120);
    assert!(world
        .propose("house1", "lot-7", auction.to_bytes())
        .1
        .is_installed());

    // house2 tries to demote alice's bid while inserting its client's.
    let mut rigged = Auction::from_bytes(&world.state("house2", "lot-7")).unwrap();
    rigged.bids[0].amount = 1;
    rigged.place_bid("mallory", PartyId::new("house2"), 2);
    let (_, outcome) = world.propose("house2", "lot-7", rigged.to_bytes());
    match outcome {
        Outcome::Invalidated { vetoers } => assert!(!vetoers.is_empty()),
        other => panic!("expected veto, got {other:?}"),
    }
    let auction = Auction::from_bytes(&world.state("house0", "lot-7")).unwrap();
    assert_eq!(auction.best_bid().unwrap().bidder, "alice");
    assert_eq!(auction.best_bid().unwrap().amount, 120);
}
