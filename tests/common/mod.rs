//! Shared harness for the cross-crate scenario tests: a simulated network
//! of coordinators driven through the public facade API.

#![allow(dead_code)]

use b2bobjects::core::{B2BObject, Coordinator, ObjectId, Outcome, RunId};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs, TimeStampAuthority};
use b2bobjects::evidence::{EvidenceStore, MemStore};
use b2bobjects::net::{
    GroupHandle, GroupId, NodeHandle, ShardedNet, ShardedTcpConfig, ShardedTcpNet, SimNet,
    TcpConfig, TcpNet,
};
use b2bobjects::telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

pub const QUIET: TimeMs = TimeMs(600_000);

/// Real-clock deadline for TCP scenario steps: generous enough that a
/// healthy run never approaches it (conditions are polled, not slept on).
pub const TCP_STEP: Duration = Duration::from_secs(30);

pub struct World {
    pub net: SimNet<Coordinator>,
    pub parties: Vec<PartyId>,
    pub stores: HashMap<PartyId, Arc<MemStore>>,
    pub ring: KeyRing,
}

impl World {
    /// Builds coordinators named after `names` on a perfect network.
    pub fn new(names: &[&str], seed: u64) -> World {
        let telemetry = names.iter().map(|_| Telemetry::new()).collect();
        World::with_telemetry(names, seed, telemetry)
    }

    /// [`World::new`] with one caller-supplied telemetry handle per party
    /// — attach trace sinks before construction to flight-record the
    /// whole scenario, bring-up included.
    pub fn with_telemetry(names: &[&str], seed: u64, telemetry: Vec<Telemetry>) -> World {
        assert_eq!(names.len(), telemetry.len());
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let kp = KeyPair::generate_from_seed(500 + i as u64);
            ring.register(PartyId::new(*name), kp.public_key());
            keys.push((PartyId::new(*name), kp));
        }
        let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(777));
        let mut net = SimNet::new(seed);
        let mut stores = HashMap::new();
        for (i, ((id, kp), tel)) in keys.into_iter().zip(telemetry).enumerate() {
            let store = Arc::new(MemStore::new());
            stores.insert(id.clone(), store.clone());
            net.add_node(
                Coordinator::builder(id, kp)
                    .ring(ring.clone())
                    .tsa(tsa.clone())
                    .store(store)
                    .seed(seed + i as u64)
                    .telemetry(tel)
                    .build(),
            );
        }
        World {
            net,
            parties: names.iter().map(|n| PartyId::new(*n)).collect(),
            stores,
            ring,
        }
    }

    pub fn run(&mut self) {
        self.net.run_until_quiet(QUIET);
    }

    /// Registers an object at `owner` and joins the remaining `joiners` in
    /// order, each sponsored by the previously joined member.
    pub fn share<F>(&mut self, alias: &str, owner: &str, joiners: &[&str], factory: F)
    where
        F: Fn() -> Box<dyn B2BObject> + Clone + Send + 'static,
    {
        let f = factory.clone();
        self.net.invoke(&PartyId::new(owner), move |c, _| {
            c.register_object(ObjectId::new(alias.to_string()), Box::new(f))
                .unwrap();
        });
        let mut sponsor = PartyId::new(owner);
        let alias = alias.to_string();
        for joiner in joiners {
            let f = factory.clone();
            let s = sponsor.clone();
            let a = alias.clone();
            self.net.invoke(&PartyId::new(*joiner), move |c, ctx| {
                c.request_connect(ObjectId::new(a), Box::new(f), s, ctx)
                    .unwrap();
            });
            self.run();
            assert!(
                self.net
                    .node(&PartyId::new(*joiner))
                    .is_member(&ObjectId::new(alias.clone())),
                "{joiner} failed to join {alias}"
            );
            sponsor = PartyId::new(*joiner);
        }
    }

    /// Joins with a party-specific factory (e.g. a TTP holding different
    /// rules than the players).
    pub fn join_with(
        &mut self,
        alias: &str,
        joiner: &str,
        sponsor: &str,
        factory: impl Fn() -> Box<dyn B2BObject> + Send + 'static,
    ) {
        let s = PartyId::new(sponsor);
        let a = alias.to_string();
        self.net.invoke(&PartyId::new(joiner), move |c, ctx| {
            c.request_connect(ObjectId::new(a), Box::new(factory), s, ctx)
                .unwrap();
        });
        self.run();
        assert!(self
            .net
            .node(&PartyId::new(joiner))
            .is_member(&ObjectId::new(alias)));
    }

    /// Proposes `state` on `alias` from `who`; drives to quiescence and
    /// returns the run and its outcome at the proposer.
    pub fn propose(&mut self, who: &str, alias: &str, state: Vec<u8>) -> (RunId, Outcome) {
        let a = ObjectId::new(alias);
        let run = self.net.invoke(&PartyId::new(who), move |c, ctx| {
            c.propose_overwrite(&a, state, ctx).unwrap()
        });
        self.run();
        let outcome = self
            .net
            .node(&PartyId::new(who))
            .outcome_of(&run)
            .cloned()
            .expect("run completed");
        (run, outcome)
    }

    pub fn state(&self, who: &str, alias: &str) -> Vec<u8> {
        self.net
            .node(&PartyId::new(who))
            .agreed_state(&ObjectId::new(alias))
            .expect("state present")
    }
}

/// The evidence a log holds, minus the two time-dependent fields (TSA
/// token, local append time). Two runs of the same scenario script produce
/// identical projections regardless of the transport underneath.
pub type EvidenceProjection = Vec<(
    String,
    String,
    String,
    PartyId,
    Vec<u8>,
    Option<b2bobjects::crypto::Signature>,
)>;

pub fn evidence_projection(store: &MemStore) -> EvidenceProjection {
    store
        .records()
        .into_iter()
        .map(|r| {
            (
                r.kind.name().to_string(),
                r.object,
                r.run,
                r.origin,
                r.payload,
                r.signature,
            )
        })
        .collect()
}

/// The [`World`] harness over real loopback sockets: identical key
/// material, seeds and script driving, with real-clock condition waits in
/// place of virtual-time quiescence.
pub struct TcpWorld {
    pub net: TcpNet<Coordinator>,
    pub parties: Vec<PartyId>,
    pub stores: HashMap<PartyId, Arc<MemStore>>,
    pub ring: KeyRing,
}

impl TcpWorld {
    /// Builds coordinators named after `names`, each listening on an
    /// ephemeral loopback port. Key material and coordinator seeds match
    /// [`World::new`] exactly, so the two transports produce the same
    /// evidence for the same script.
    pub fn new(names: &[&str], seed: u64) -> TcpWorld {
        let telemetry = names.iter().map(|_| Telemetry::new()).collect();
        TcpWorld::with_telemetry(names, seed, telemetry)
    }

    /// [`TcpWorld::new`] with one caller-supplied telemetry handle per
    /// party, mirroring [`World::with_telemetry`].
    pub fn with_telemetry(names: &[&str], seed: u64, telemetry: Vec<Telemetry>) -> TcpWorld {
        assert_eq!(names.len(), telemetry.len());
        let mut ring = KeyRing::new();
        let mut keys = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let kp = KeyPair::generate_from_seed(500 + i as u64);
            ring.register(PartyId::new(*name), kp.public_key());
            keys.push((PartyId::new(*name), kp));
        }
        let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(777));
        let mut stores = HashMap::new();
        let mut nodes = Vec::new();
        for (i, ((id, kp), tel)) in keys.into_iter().zip(telemetry).enumerate() {
            let store = Arc::new(MemStore::new());
            stores.insert(id.clone(), store.clone());
            nodes.push(
                Coordinator::builder(id, kp)
                    .ring(ring.clone())
                    .tsa(tsa.clone())
                    .store(store)
                    .seed(seed + i as u64)
                    .telemetry(tel)
                    .build(),
            );
        }
        let net = TcpNet::spawn_loopback_with(nodes, TcpConfig::default())
            .expect("bind loopback listeners");
        TcpWorld {
            net,
            parties: names.iter().map(|n| PartyId::new(*n)).collect(),
            stores,
            ring,
        }
    }

    pub fn handle(&self, who: &str) -> &NodeHandle<Coordinator> {
        self.net.handle(&PartyId::new(who))
    }

    /// Registers an object at `owner` and joins the remaining `joiners` in
    /// order, each sponsored by the previously joined member.
    pub fn share<F>(&mut self, alias: &str, owner: &str, joiners: &[&str], factory: F)
    where
        F: Fn() -> Box<dyn B2BObject> + Clone + Send + 'static,
    {
        let f = factory.clone();
        self.handle(owner).invoke(move |c, _| {
            c.register_object(ObjectId::new(alias.to_string()), Box::new(f))
                .unwrap();
        });
        let mut sponsor = PartyId::new(owner);
        let alias = alias.to_string();
        for joiner in joiners {
            let f = factory.clone();
            let s = sponsor.clone();
            let a = alias.clone();
            self.handle(joiner).invoke(move |c, ctx| {
                c.request_connect(ObjectId::new(a), Box::new(f), s, ctx)
                    .unwrap();
            });
            let a = ObjectId::new(alias.clone());
            assert!(
                self.handle(joiner)
                    .wait_until(TCP_STEP, |c| c.is_member(&a)),
                "{joiner} failed to join {alias} over TCP"
            );
            // The sponsor has installed before it sends the welcome; wait
            // for its queue to drain all the same so the next step starts
            // from an idle group.
            let a = ObjectId::new(alias.clone());
            let sp = sponsor.clone();
            assert!(
                self.net
                    .handle(&sp)
                    .wait_until(TCP_STEP, |c| !c.is_busy(&a)),
                "sponsor {sp} still busy after admitting {joiner}"
            );
            sponsor = PartyId::new(*joiner);
        }
        // A join round touches every existing member, not just the
        // sponsor — the owner can still be installing the final
        // membership change when the last welcome lands. Drain every
        // member so the caller's first proposal starts from an idle
        // group.
        let a = ObjectId::new(alias);
        for p in &self.parties {
            let h = self.net.handle(p);
            if !h.read(|c| c.is_member(&a)) {
                continue;
            }
            assert!(
                h.wait_until(TCP_STEP, |c| !c.is_busy(&a)),
                "{p} still busy on {a:?} after the join chain settled"
            );
        }
    }

    /// Proposes `state` on `alias` from `who`; waits until every member
    /// has recorded the run's outcome and returns it as seen by the
    /// proposer.
    pub fn propose(&mut self, who: &str, alias: &str, state: Vec<u8>) -> (RunId, Outcome) {
        let a = ObjectId::new(alias);
        let run = self
            .handle(who)
            .invoke(move |c, ctx| c.propose_overwrite(&a, state, ctx).unwrap());
        let oid = ObjectId::new(alias);
        for p in &self.parties {
            let h = self.net.handle(p);
            if !h.read(|c| c.is_member(&oid)) {
                continue;
            }
            assert!(
                h.wait_until(TCP_STEP, |c| c.outcome_of(&run).is_some()),
                "{p} never recorded the outcome of {who}'s run"
            );
        }
        let outcome = self
            .handle(who)
            .read(|c| c.outcome_of(&run).cloned())
            .expect("run completed");
        (run, outcome)
    }

    pub fn state(&self, who: &str, alias: &str) -> Vec<u8> {
        self.handle(who)
            .read(|c| c.agreed_state(&ObjectId::new(alias)))
            .expect("state present")
    }
}

/// The [`World`] harness on the sharded multi-group runtime, pinned to a
/// single group: identical key material, seeds and script driving as
/// [`World`] and [`TcpWorld`], so a one-group sharded run must produce
/// the same evidence projection and the same canonical trace DAGs as the
/// legacy fabrics.
/// The socket fabric a [`ShardedWorld`] runs its worker pool over.
pub enum ShardFabric {
    /// In-process delivery between slots (the default).
    Inproc(ShardedNet<Coordinator>),
    /// One multiplexed loopback TCP socket pair per party pair.
    Tcp(ShardedTcpNet<Coordinator>),
}

impl ShardFabric {
    pub fn handle(&self, gid: GroupId, party: &PartyId) -> GroupHandle<Coordinator> {
        match self {
            ShardFabric::Inproc(net) => net.handle(gid, party),
            ShardFabric::Tcp(net) => net.handle(gid, party),
        }
    }

    pub fn crash(&self, gid: GroupId, party: &PartyId) {
        match self {
            ShardFabric::Inproc(net) => net.crash(gid, party),
            ShardFabric::Tcp(net) => net.crash(gid, party),
        }
    }

    pub fn recover(&self, gid: GroupId, party: &PartyId) {
        match self {
            ShardFabric::Inproc(net) => net.recover(gid, party),
            ShardFabric::Tcp(net) => net.recover(gid, party),
        }
    }

    /// Drops both directions of the TCP socket pair between two parties.
    /// No-op on the in-process fabric, which has no connections to kill.
    pub fn kill_connection(&self, a: &PartyId, b: &PartyId) {
        if let ShardFabric::Tcp(net) = self {
            net.kill_connection(a, b);
        }
    }

    pub fn shutdown(self) {
        match self {
            ShardFabric::Inproc(net) => net.shutdown(),
            ShardFabric::Tcp(net) => net.shutdown(),
        }
    }
}

pub struct ShardedWorld {
    pub net: ShardFabric,
    pub parties: Vec<PartyId>,
    pub stores: HashMap<PartyId, Arc<MemStore>>,
    pub ring: KeyRing,
}

/// Builds the coordinator set every [`ShardedWorld`] fabric shares: key
/// material, TSA and per-coordinator seeds match [`World::new`] exactly,
/// so evidence is byte-comparable across fabrics.
fn sharded_nodes(
    names: &[&str],
    seed: u64,
    telemetry: Vec<Telemetry>,
) -> (
    Vec<Coordinator>,
    Vec<PartyId>,
    HashMap<PartyId, Arc<MemStore>>,
    KeyRing,
) {
    assert_eq!(names.len(), telemetry.len());
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let kp = KeyPair::generate_from_seed(500 + i as u64);
        ring.register(PartyId::new(*name), kp.public_key());
        keys.push((PartyId::new(*name), kp));
    }
    let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(777));
    let mut stores = HashMap::new();
    let mut nodes = Vec::new();
    for (i, ((id, kp), tel)) in keys.into_iter().zip(telemetry).enumerate() {
        let store = Arc::new(MemStore::new());
        stores.insert(id.clone(), store.clone());
        nodes.push(
            Coordinator::builder(id, kp)
                .ring(ring.clone())
                .tsa(tsa.clone())
                .store(store)
                .seed(seed + i as u64)
                .telemetry(tel)
                .build(),
        );
    }
    let parties = names.iter().map(|n| PartyId::new(*n)).collect();
    (nodes, parties, stores, ring)
}

/// The single group a [`ShardedWorld`] runs.
pub const SHARD_GROUP: GroupId = GroupId(0);

impl ShardedWorld {
    /// Builds coordinators named after `names` inside one group on a
    /// small fixed worker pool. Key material and coordinator seeds match
    /// [`World::new`] exactly.
    pub fn new(names: &[&str], seed: u64) -> ShardedWorld {
        let telemetry = names.iter().map(|_| Telemetry::new()).collect();
        ShardedWorld::with_telemetry(names, seed, telemetry)
    }

    /// [`ShardedWorld::new`] over multiplexed loopback TCP sockets: same
    /// coordinators, same seeds, but every inter-party frame crosses a
    /// real socket.
    pub fn new_tcp(names: &[&str], seed: u64) -> ShardedWorld {
        let telemetry = names.iter().map(|_| Telemetry::new()).collect();
        ShardedWorld::with_telemetry_tcp(names, seed, telemetry)
    }

    /// [`ShardedWorld::with_telemetry`] with one caller-supplied telemetry
    /// handle per party, mirroring [`World::with_telemetry`].
    pub fn with_telemetry(names: &[&str], seed: u64, telemetry: Vec<Telemetry>) -> ShardedWorld {
        let (nodes, parties, stores, ring) = sharded_nodes(names, seed, telemetry);
        let net = ShardedNet::builder()
            .shards(2)
            .add_group(SHARD_GROUP, nodes)
            .spawn()
            .expect("spawn worker pool");
        ShardedWorld {
            net: ShardFabric::Inproc(net),
            parties,
            stores,
            ring,
        }
    }

    /// [`ShardedWorld::new_tcp`] with caller-supplied telemetry.
    pub fn with_telemetry_tcp(
        names: &[&str],
        seed: u64,
        telemetry: Vec<Telemetry>,
    ) -> ShardedWorld {
        let (nodes, parties, stores, ring) = sharded_nodes(names, seed, telemetry);
        let net = ShardedTcpNet::spawn_loopback_with(
            vec![(SHARD_GROUP, nodes)],
            ShardedTcpConfig::new().shards(2),
        )
        .expect("spawn TCP worker pool");
        ShardedWorld {
            net: ShardFabric::Tcp(net),
            parties,
            stores,
            ring,
        }
    }

    pub fn handle(&self, who: &str) -> GroupHandle<Coordinator> {
        self.net.handle(SHARD_GROUP, &PartyId::new(who))
    }

    /// Registers an object at `owner` and joins the remaining `joiners`
    /// in order, each sponsored by the previously joined member.
    pub fn share<F>(&mut self, alias: &str, owner: &str, joiners: &[&str], factory: F)
    where
        F: Fn() -> Box<dyn B2BObject> + Clone + Send + 'static,
    {
        let f = factory.clone();
        self.handle(owner).invoke(move |c, _| {
            c.register_object(ObjectId::new(alias.to_string()), Box::new(f))
                .unwrap();
        });
        let mut sponsor = PartyId::new(owner);
        let alias = alias.to_string();
        for joiner in joiners {
            let f = factory.clone();
            let s = sponsor.clone();
            let a = alias.clone();
            self.handle(joiner).invoke(move |c, ctx| {
                c.request_connect(ObjectId::new(a), Box::new(f), s, ctx)
                    .unwrap();
            });
            let a = ObjectId::new(alias.clone());
            assert!(
                self.handle(joiner)
                    .wait_until(TCP_STEP, move |c| c.is_member(&a)),
                "{joiner} failed to join {alias} on the sharded runtime"
            );
            let a = ObjectId::new(alias.clone());
            let sp = sponsor.clone();
            assert!(
                self.net
                    .handle(SHARD_GROUP, &sp)
                    .wait_until(TCP_STEP, move |c| !c.is_busy(&a)),
                "sponsor {sp} still busy after admitting {joiner}"
            );
            sponsor = PartyId::new(*joiner);
        }
        // A join round touches every existing member, not just the
        // sponsor — the owner can still be installing the final
        // membership change when the last welcome lands. Drain every
        // member so the caller's first proposal starts from an idle
        // group.
        let a = ObjectId::new(alias);
        for p in &self.parties {
            let h = self.net.handle(SHARD_GROUP, p);
            if !h.read(|c| c.is_member(&a)) {
                continue;
            }
            assert!(
                h.wait_until(TCP_STEP, |c| !c.is_busy(&a)),
                "{p} still busy on {a:?} after the join chain settled"
            );
        }
    }

    /// Proposes `state` on `alias` from `who`; waits until every member
    /// has recorded the run's outcome and returns it as seen by the
    /// proposer.
    pub fn propose(&mut self, who: &str, alias: &str, state: Vec<u8>) -> (RunId, Outcome) {
        let run = self.propose_async(who, alias, state);
        let oid = ObjectId::new(alias);
        for p in &self.parties {
            let h = self.net.handle(SHARD_GROUP, p);
            let o = oid.clone();
            if !h.read(move |c| c.is_member(&o)) {
                continue;
            }
            let r = run.clone();
            assert!(
                h.wait_until(TCP_STEP, move |c| c.outcome_of(&r).is_some()),
                "{p} never recorded the outcome of {who}'s run"
            );
        }
        let r = run.clone();
        let outcome = self
            .handle(who)
            .read(move |c| c.outcome_of(&r).cloned())
            .expect("run completed");
        (run, outcome)
    }

    /// Submits the proposal without waiting for its outcome — the hook
    /// for crash-in-flight tests that need to act mid-round.
    pub fn propose_async(&self, who: &str, alias: &str, state: Vec<u8>) -> RunId {
        let a = ObjectId::new(alias);
        self.handle(who)
            .invoke(move |c, ctx| c.propose_overwrite(&a, state, ctx).unwrap())
    }

    pub fn state(&self, who: &str, alias: &str) -> Vec<u8> {
        let a = ObjectId::new(alias);
        self.handle(who)
            .read(move |c| c.agreed_state(&a))
            .expect("state present")
    }
}
