//! The Figure 5 (Tic-Tac-Toe) and Figure 7 (order processing) scenario
//! scripts replayed over `b2b-net::tcp` on loopback sockets.
//!
//! Beyond the scripts completing, each test replays the *same* script with
//! the *same* seeds on the deterministic simulator and asserts the
//! evidence logs are identical modulo the two time-dependent fields (TSA
//! token, local append time): the transport underneath changes nothing
//! about the evidence the parties accumulate — which is the paper's
//! layering claim (§4.2) made checkable.

mod common;

use b2bobjects::apps::order::{Order, OrderObject, OrderRoles};
use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::core::{ObjectId, Outcome};
use b2bobjects::crypto::PartyId;
use b2bobjects::net::poll::wait_for;
use common::{evidence_projection, TcpWorld, World, TCP_STEP};
use std::time::Duration;

fn players() -> Players {
    Players {
        cross: PartyId::new("cross"),
        nought: PartyId::new("nought"),
    }
}

fn game_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(GameObject::new(players()))
}

fn order_roles() -> OrderRoles {
    OrderRoles::two_party(PartyId::new("customer"), PartyId::new("supplier"))
}

fn order_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(OrderObject::new(order_roles()))
}

/// Drives the Figure 5 script (three legal moves, then Cross's cheat) on
/// any harness through the closures; returns nothing — the caller reads
/// the stores.
macro_rules! figure5_script {
    ($world:expr) => {{
        $world.share("game", "cross", &["nought"], game_factory);
        let moves = [
            ("cross", Mark::X, 1, 1),
            ("nought", Mark::O, 0, 0),
            ("cross", Mark::X, 1, 2),
        ];
        for (who, mark, row, col) in moves {
            let mut board = Board::from_bytes(&$world.state(who, "game")).unwrap();
            board.play(mark, row, col).unwrap();
            let (_, outcome) = $world.propose(who, "game", board.to_bytes());
            assert!(outcome.is_installed(), "{who}'s legal move installs");
        }
        let before_cheat = $world.state("nought", "game");
        let mut cheat = Board::from_bytes(&$world.state("cross", "game")).unwrap();
        cheat.cheat_set(Mark::O, 2, 1);
        let (_, outcome) = $world.propose("cross", "game", cheat.to_bytes());
        match outcome {
            Outcome::Invalidated { vetoers } => {
                assert_eq!(vetoers[0].0, PartyId::new("nought"));
            }
            other => panic!("expected veto, got {other:?}"),
        }
        assert_eq!($world.state("nought", "game"), before_cheat);
        assert_eq!($world.state("cross", "game"), before_cheat);
    }};
}

/// The Figure 7 script: two valid updates each way, then the supplier's
/// mixed valid/invalid update that the customer vetoes.
macro_rules! figure7_script {
    ($world:expr) => {{
        $world.share("order", "customer", &["supplier"], order_factory);

        let mut order = Order::from_bytes(&$world.state("customer", "order")).unwrap();
        order.set_quantity("widget1", 2);
        assert!($world
            .propose("customer", "order", order.to_bytes())
            .1
            .is_installed());

        let mut order = Order::from_bytes(&$world.state("supplier", "order")).unwrap();
        assert!(order.set_price("widget1", 10));
        assert!($world
            .propose("supplier", "order", order.to_bytes())
            .1
            .is_installed());

        let mut order = Order::from_bytes(&$world.state("customer", "order")).unwrap();
        order.set_quantity("widget2", 10);
        assert!($world
            .propose("customer", "order", order.to_bytes())
            .1
            .is_installed());

        let before = $world.state("customer", "order");
        let mut order = Order::from_bytes(&$world.state("supplier", "order")).unwrap();
        assert!(order.set_price("widget2", 7));
        order.set_quantity("widget2", 99);
        let (_, outcome) = $world.propose("supplier", "order", order.to_bytes());
        assert!(!outcome.is_installed(), "mixed update must be vetoed");
        assert_eq!($world.state("customer", "order"), before);
    }};
}

#[test]
fn figure5_over_tcp_matches_inproc_evidence() {
    // Reference run on the deterministic simulator.
    let mut sim = World::new(&["cross", "nought"], 100);
    figure5_script!(sim);

    // The same script over real loopback sockets, same seeds.
    let mut tcp = TcpWorld::new(&["cross", "nought"], 100);
    figure5_script!(tcp);

    for who in ["cross", "nought"] {
        let id = PartyId::new(who);
        let want = evidence_projection(&sim.stores[&id]);
        // The last protocol message may still be in flight when the script
        // returns; poll until the logs agree rather than sleeping.
        let store = tcp.stores[&id].clone();
        assert!(
            wait_for(TCP_STEP, || evidence_projection(&store) == want),
            "{who}'s evidence over TCP diverges from the in-proc run:\n\
             tcp has {} records, sim has {}",
            evidence_projection(&tcp.stores[&id]).len(),
            want.len()
        );
    }
    tcp.net.shutdown();
}

#[test]
fn figure7_over_tcp_matches_inproc_evidence() {
    let mut sim = World::new(&["customer", "supplier"], 110);
    figure7_script!(sim);

    let mut tcp = TcpWorld::new(&["customer", "supplier"], 110);
    figure7_script!(tcp);

    for who in ["customer", "supplier"] {
        let id = PartyId::new(who);
        let want = evidence_projection(&sim.stores[&id]);
        let store = tcp.stores[&id].clone();
        assert!(
            wait_for(TCP_STEP, || evidence_projection(&store) == want),
            "{who}'s evidence over TCP diverges from the in-proc run:\n\
             tcp has {} records, sim has {}",
            evidence_projection(&tcp.stores[&id]).len(),
            want.len()
        );
    }
    tcp.net.shutdown();
}

#[test]
fn killed_connection_mid_run_completes_via_reconnect() {
    let mut tcp = TcpWorld::new(&["cross", "nought"], 120);
    tcp.share("game", "cross", &["nought"], game_factory);
    let cross = PartyId::new("cross");
    let nought = PartyId::new("nought");

    // First move installs over healthy connections.
    let mut board = Board::from_bytes(&tcp.state("cross", "game")).unwrap();
    board.play(Mark::X, 1, 1).unwrap();
    let (_, outcome) = tcp.propose("cross", "game", board.to_bytes());
    assert!(outcome.is_installed());

    // Sever both directions, then immediately propose: whichever protocol
    // frames the reset swallows, retransmission re-sends and the writer
    // reconnects — the run must still complete exactly once.
    tcp.net.kill_connection(&cross, &nought);
    let mut board = Board::from_bytes(&tcp.state("nought", "game")).unwrap();
    board.play(Mark::O, 0, 0).unwrap();
    let oid = ObjectId::new("game");
    let state = board.to_bytes();
    let run = tcp
        .handle("nought")
        .invoke(move |c, ctx| c.propose_overwrite(&oid, state, ctx).unwrap());
    assert!(
        tcp.handle("nought")
            .wait_until(Duration::from_secs(60), |c| c
                .outcome_of(&run)
                .is_some_and(|o| o.is_installed())),
        "run must complete despite the severed connection"
    );
    let oid = ObjectId::new("game");
    assert!(
        tcp.handle("cross")
            .wait_until(TCP_STEP, |c| c.outcome_of(&run).is_some()),
        "the peer also sees the run complete"
    );
    let final_board = Board::from_bytes(&tcp.state("cross", "game")).unwrap();
    assert_eq!(final_board.at(0, 0), Some(Mark::O));
    assert_eq!(tcp.state("cross", "game"), tcp.state("nought", "game"));
    assert!(tcp.handle("cross").read(|c| c.is_member(&oid)));

    // At least one side had to re-establish its link.
    let stats = tcp.net.stats();
    assert!(
        stats.reconnects >= 1,
        "expected a reconnect, stats: {stats:?}"
    );
    tcp.net.shutdown();
}
