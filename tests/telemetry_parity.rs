//! The Figure-5 scenario reconstructs the **same causal DAG** regardless
//! of the fabric underneath.
//!
//! Trace roots are content-derived (run-id digests, membership request
//! digests) and span links are carried in the wire frames, so the
//! distributed traces assembled from the flight recorders of a simulated
//! run and a real TCP-loopback run of the same script must be
//! structurally identical once wall-clock time is normalised away —
//! which is exactly what [`canonical_dag`] does: it omits timestamps,
//! details and concrete span ids and keeps only parties, span names and
//! parent/child edges.
//!
//! Counters are compared over a whitelist of protocol-semantic names:
//! transport-dependent counters (retransmits, dedup drops, `tcp_*`) are
//! legitimately different across fabrics and stay out of the comparison.
//!
//! [`canonical_dag`]: b2bobjects::telemetry::DistributedTrace::canonical_dag

mod common;

use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::core::Outcome;
use b2bobjects::crypto::PartyId;
use b2bobjects::telemetry::{assemble, names, MetricsSnapshot, RingRecorder, Telemetry, TraceSink};
use common::{TcpWorld, World};
use std::sync::Arc;

/// Counters whose values are decided by the protocol script, not by the
/// transport: both fabrics deliver every message exactly once to the
/// coordination layer, so these must agree exactly.
const PARITY_COUNTERS: &[&str] = &[
    names::ROUNDS_STARTED,
    names::ROUNDS_COMMITTED,
    names::ROUNDS_ABORTED,
    names::VOTES_VALID,
    names::VOTES_INVALID,
    names::MEMBERSHIP_CHANGES,
    names::EVIDENCE_RECORDS_APPENDED,
];

fn game_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(GameObject::new(Players {
        cross: PartyId::new("cross"),
        nought: PartyId::new("nought"),
    }))
}

/// One fleet-wide flight recorder plus a per-party telemetry handle
/// feeding it.
fn recorded_telemetry(n: usize) -> (Arc<RingRecorder>, Vec<Telemetry>) {
    let recorder = Arc::new(RingRecorder::new(65_536));
    let telemetry = (0..n)
        .map(|_| Telemetry::with_sink(recorder.clone() as Arc<dyn TraceSink>))
        .collect();
    (recorder, telemetry)
}

/// The sorted set of canonical DAGs assembled from a recorder, plus the
/// fleet-merged counter snapshot.
fn harvest(recorder: &RingRecorder, telemetry: &[Telemetry]) -> (Vec<String>, MetricsSnapshot) {
    let mut dags: Vec<String> = assemble(&recorder.events())
        .iter()
        .map(|t| t.canonical_dag())
        .collect();
    dags.sort();
    let mut merged = MetricsSnapshot::default();
    for t in telemetry {
        merged.merge(&t.metrics().snapshot());
    }
    (dags, merged)
}

/// The Figure-5 move script: three legal moves, then Cross's cheating
/// move, which Nought vetoes.
macro_rules! play_figure5 {
    ($world:expr) => {{
        $world.share("game", "cross", &["nought"], game_factory);
        for (who, mark, row, col) in [
            ("cross", Mark::X, 1, 1),
            ("nought", Mark::O, 0, 0),
            ("cross", Mark::X, 1, 2),
        ] {
            let mut board = Board::from_bytes(&$world.state(who, "game")).unwrap();
            board.play(mark, row, col).unwrap();
            let (_, outcome) = $world.propose(who, "game", board.to_bytes());
            assert!(outcome.is_installed(), "{who}'s legal move installs");
        }
        let mut cheat = Board::from_bytes(&$world.state("cross", "game")).unwrap();
        cheat.cheat_set(Mark::O, 2, 1);
        let (_, outcome) = $world.propose("cross", "game", cheat.to_bytes());
        assert!(
            matches!(outcome, Outcome::Invalidated { .. }),
            "the cheat is vetoed on every fabric"
        );
    }};
}

#[test]
fn sim_and_tcp_runs_reconstruct_the_same_causal_dag() {
    let (sim_dags, sim_counters) = {
        let (recorder, telemetry) = recorded_telemetry(2);
        let mut world = World::with_telemetry(&["cross", "nought"], 100, telemetry.clone());
        play_figure5!(world);
        harvest(&recorder, &telemetry)
    };

    let (tcp_dags, tcp_counters) = {
        let (recorder, telemetry) = recorded_telemetry(2);
        let mut world = TcpWorld::with_telemetry(&["cross", "nought"], 100, telemetry.clone());
        play_figure5!(world);
        let out = harvest(&recorder, &telemetry);
        world.net.shutdown();
        out
    };

    // The script pins the shape of the trace set: one sponsored
    // connection round plus four state runs (three installs, one veto).
    assert_eq!(sim_dags.len(), 5, "one membership and four state traces");
    assert_eq!(
        sim_dags
            .iter()
            .filter(|d| d.contains("membership/connect_request"))
            .count(),
        1
    );
    assert_eq!(
        sim_dags
            .iter()
            .filter(|d| d.contains("state_run/propose"))
            .count(),
        4
    );
    assert_eq!(
        sim_dags
            .iter()
            .filter(|d| d.contains("state_run/rollback"))
            .count(),
        1,
        "exactly one round rolls back: Nought's veto of the cheat"
    );
    assert_eq!(
        sim_dags, tcp_dags,
        "sim and TCP must reconstruct identical causal DAGs"
    );
    for name in PARITY_COUNTERS {
        assert_eq!(
            sim_counters.counter(name),
            tcp_counters.counter(name),
            "counter {name} must agree across fabrics"
        );
    }
}
