//! Reproduction of **Figure 6**: Tic-Tac-Toe played through a trusted
//! third party "that validates each player's move", guaranteeing the rules
//! "are encoded and observed correctly" even when a player's own server
//! holds a corrupted (lenient) rule encoding.

mod common;

use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::apps::ttp::lenient_game_object;
use b2bobjects::core::Outcome;
use b2bobjects::crypto::PartyId;
use common::World;

fn players() -> Players {
    Players {
        cross: PartyId::new("cross"),
        nought: PartyId::new("nought"),
    }
}

#[test]
fn ttp_vetoes_cheat_even_when_opponent_server_is_lenient() {
    let mut world = World::new(&["ttp", "cross", "nought"], 120);
    // The TTP holds the reference rules; the players' servers are lenient
    // (their operators could have mis-encoded or corrupted the rules).
    let p = players();
    world.net.invoke(&PartyId::new("ttp"), move |c, _| {
        c.register_object(
            b2bobjects::core::ObjectId::new("game"),
            Box::new(move || Box::new(GameObject::new(p.clone()))),
        )
        .unwrap();
    });
    let p = players();
    world.join_with("game", "cross", "ttp", move || {
        lenient_game_object(p.clone())
    });
    let p = players();
    world.join_with("game", "nought", "cross", move || {
        lenient_game_object(p.clone())
    });

    // A legal opening move passes everyone.
    let mut board = Board::from_bytes(&world.state("cross", "game")).unwrap();
    board.play(Mark::X, 1, 1).unwrap();
    let (_, outcome) = world.propose("cross", "game", board.to_bytes());
    assert!(outcome.is_installed());

    // Nought's lenient server would accept Cross's cheat — only the TTP
    // objects, and its veto protects Nought.
    let mut cheat = Board::from_bytes(&world.state("cross", "game")).unwrap();
    cheat.cheat_set(Mark::O, 2, 1); // Cross plays a zero out of turn
    let before = world.state("nought", "game");
    let (_, outcome) = world.propose("cross", "game", cheat.to_bytes());
    match outcome {
        Outcome::Invalidated { vetoers } => {
            assert_eq!(vetoers.len(), 1, "only the TTP vetoes");
            assert_eq!(vetoers[0].0, PartyId::new("ttp"));
        }
        other => panic!("expected TTP veto, got {other:?}"),
    }
    assert_eq!(world.state("nought", "game"), before);
}

#[test]
fn without_ttp_a_lenient_opponent_would_be_cheated() {
    // The control experiment motivating Figure 6: two lenient servers with
    // no TTP accept the illegal move — the regulated-market guarantee is
    // gone. (Direct interaction, Figure 1a, with broken rule encodings.)
    let mut world = World::new(&["cross", "nought"], 121);
    let p = players();
    world.share("game", "cross", &["nought"], move || {
        lenient_game_object(p.clone())
    });
    let mut cheat = Board::from_bytes(&world.state("cross", "game")).unwrap();
    cheat.cheat_set(Mark::O, 2, 1);
    let (_, outcome) = world.propose("cross", "game", cheat.to_bytes());
    assert!(
        outcome.is_installed(),
        "lenient servers accept the cheat — demonstrating why the TTP matters"
    );
}
