//! Reproduction of **Figure 5**: the Tic-Tac-Toe game in progress, with
//! Cross's cheating move vetoed and "not reflected at Nought's server",
//! Nought holding evidence of the attempt to cheat.
//!
//! Move script from the paper: "Cross claims middle row, centre square;
//! Nought claims top row, left square; Cross claims middle row, right
//! square; then Cross attempts to mark bottom row, centre square with a
//! zero."

mod common;

use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::core::{Arbiter, Claim, ObjectId, Outcome};
use b2bobjects::crypto::PartyId;
use common::World;

fn players() -> Players {
    Players {
        cross: PartyId::new("cross"),
        nought: PartyId::new("nought"),
    }
}

fn game_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(GameObject::new(players()))
}

#[test]
fn figure5_cheating_move_is_vetoed_and_not_reflected() {
    let mut world = World::new(&["cross", "nought"], 100);
    world.share("game", "cross", &["nought"], game_factory);

    // The three legitimate moves of Figure 5.
    let moves = [
        ("cross", Mark::X, 1, 1),  // middle row, centre
        ("nought", Mark::O, 0, 0), // top row, left
        ("cross", Mark::X, 1, 2),  // middle row, right
    ];
    for (who, mark, row, col) in moves {
        let mut board = Board::from_bytes(&world.state(who, "game")).unwrap();
        board.play(mark, row, col).unwrap();
        let (_, outcome) = world.propose(who, "game", board.to_bytes());
        assert!(outcome.is_installed(), "{who}'s legal move installs");
    }
    let agreed_before_cheat = world.state("nought", "game");

    // "The final move is an attempt by Cross to gain advantage by
    // pre-empting Nought's next move": Cross marks bottom-centre with a O.
    let mut cheat = Board::from_bytes(&world.state("cross", "game")).unwrap();
    cheat.cheat_set(Mark::O, 2, 1);
    let (run, outcome) = world.propose("cross", "game", cheat.to_bytes());

    // "The state change is invalid and is not reflected at Nought's
    // server. The agreed state of the game has not been updated."
    match outcome {
        Outcome::Invalidated { vetoers } => {
            assert_eq!(vetoers[0].0, PartyId::new("nought"));
        }
        other => panic!("expected veto, got {other:?}"),
    }
    assert_eq!(world.state("nought", "game"), agreed_before_cheat);
    assert_eq!(world.state("cross", "game"), agreed_before_cheat);

    // "Nought will have evidence of the attempt to cheat": the veto is
    // provable from Nought's log — and Cross cannot prove the cheat valid.
    let arbiter = Arbiter::new(world.ring.clone());
    let veto_claim = Claim::StateVetoed {
        object: ObjectId::new("game"),
        run,
    };
    assert!(arbiter
        .judge(&veto_claim, &*world.stores[&PartyId::new("nought")])
        .is_upheld());

    let board = Board::from_bytes(&agreed_before_cheat).unwrap();
    assert_eq!(board.at(1, 1), Some(Mark::X));
    assert_eq!(board.at(0, 0), Some(Mark::O));
    assert_eq!(board.at(1, 2), Some(Mark::X));
    assert_eq!(board.at(2, 1), None, "the cheat square stays vacant");
}

#[test]
fn the_game_plays_to_a_win_when_honest() {
    let mut world = World::new(&["cross", "nought"], 101);
    world.share("game", "cross", &["nought"], game_factory);
    // X: (1,1) (1,0) (1,2) — middle row win. O: (0,0) (2,2).
    let script = [
        ("cross", Mark::X, 1, 1),
        ("nought", Mark::O, 0, 0),
        ("cross", Mark::X, 1, 0),
        ("nought", Mark::O, 2, 2),
        ("cross", Mark::X, 1, 2),
    ];
    for (who, mark, row, col) in script {
        let mut board = Board::from_bytes(&world.state(who, "game")).unwrap();
        board.play(mark, row, col).unwrap();
        let (_, outcome) = world.propose(who, "game", board.to_bytes());
        assert!(outcome.is_installed());
    }
    let board = Board::from_bytes(&world.state("nought", "game")).unwrap();
    assert_eq!(board.winner(), Some(Mark::X));
    // Any move after the win is vetoed.
    let mut late = board.clone();
    late.cheat_set(Mark::O, 0, 1);
    let (_, outcome) = world.propose("nought", "game", late.to_bytes());
    assert!(!outcome.is_installed());
}
