//! The shared-whiteboard member of §5.1's turn-taking application class,
//! and the composite-object variant §4 mentions ("the use of a composite
//! object to coordinate the states of multiple objects").

mod common;

use b2bobjects::apps::whiteboard::{Stroke, Whiteboard, WhiteboardObject};
use b2bobjects::core::{CompositeObject, Outcome, SharedCell};
use b2bobjects::crypto::PartyId;
use common::World;

fn stroke(author: &str, x: i32) -> Stroke {
    Stroke {
        author: PartyId::new(author),
        points: vec![(x, 0), (x, 10)],
        colour: "black".into(),
    }
}

#[test]
fn round_robin_drawing_with_vetoed_out_of_turn_stroke() {
    let names = ["a", "b", "c"];
    let mut world = World::new(&names, 150);
    let order: Vec<PartyId> = names.iter().map(|n| PartyId::new(*n)).collect();
    let factory = move || -> Box<dyn b2bobjects::core::B2BObject> {
        Box::new(WhiteboardObject::new(order.clone()))
    };
    world.share("board", "a", &["b", "c"], factory);

    // a → b → c draw in turn.
    for (i, who) in names.iter().enumerate() {
        let mut board = Whiteboard::from_bytes(&world.state(who, "board")).unwrap();
        board.draw(stroke(who, i as i32));
        let (_, outcome) = world.propose(who, "board", board.to_bytes());
        assert!(outcome.is_installed(), "{who}'s stroke in turn installs");
    }
    // It is a's turn again; b drawing out of turn is vetoed.
    let mut board = Whiteboard::from_bytes(&world.state("b", "board")).unwrap();
    board.draw(stroke("b", 99));
    let (_, outcome) = world.propose("b", "board", board.to_bytes());
    match outcome {
        Outcome::Invalidated { vetoers } => assert!(!vetoers.is_empty()),
        other => panic!("expected veto, got {other:?}"),
    }
    // All three replicas agree: exactly three strokes.
    for who in names {
        let board = Whiteboard::from_bytes(&world.state(who, "board")).unwrap();
        assert_eq!(board.strokes.len(), 3);
    }
}

#[test]
fn composite_object_coordinates_two_components_atomically() {
    // One coordination event covers a counter and a label; if either
    // component's rule rejects, neither changes.
    let counter_and_label = || -> Box<dyn b2bobjects::core::B2BObject> {
        Box::new(
            CompositeObject::new()
                .with_component(
                    "counter",
                    SharedCell::new(0u64).with_validator(|_w, old, new| {
                        if new >= old {
                            b2bobjects::core::Decision::accept()
                        } else {
                            b2bobjects::core::Decision::reject("counter shrank")
                        }
                    }),
                )
                .with_component("label", SharedCell::new(String::new())),
        )
    };
    let mut world = World::new(&["x", "y"], 151);
    world.share("pair", "x", &["y"], counter_and_label);

    // Build a valid composite transition: bump counter AND set label.
    let cur = world.state("x", "pair");
    let mut map: std::collections::BTreeMap<String, Vec<u8>> =
        serde_json::from_slice(&cur).unwrap();
    map.insert("counter".into(), serde_json::to_vec(&5u64).unwrap());
    map.insert(
        "label".into(),
        serde_json::to_vec(&"five".to_string()).unwrap(),
    );
    let (_, outcome) = world.propose("x", "pair", serde_json::to_vec(&map).unwrap());
    assert!(outcome.is_installed());

    // An invalid transition in ONE component blocks the whole event.
    let cur = world.state("y", "pair");
    let mut map: std::collections::BTreeMap<String, Vec<u8>> =
        serde_json::from_slice(&cur).unwrap();
    map.insert("counter".into(), serde_json::to_vec(&1u64).unwrap()); // shrink!
    map.insert(
        "label".into(),
        serde_json::to_vec(&"one".to_string()).unwrap(),
    );
    let (_, outcome) = world.propose("y", "pair", serde_json::to_vec(&map).unwrap());
    assert!(!outcome.is_installed());

    // Both components kept their previous agreed values, at both parties.
    for who in ["x", "y"] {
        let map: std::collections::BTreeMap<String, Vec<u8>> =
            serde_json::from_slice(&world.state(who, "pair")).unwrap();
        let counter: u64 = serde_json::from_slice(&map["counter"]).unwrap();
        let label: String = serde_json::from_slice(&map["label"]).unwrap();
        assert_eq!(counter, 5);
        assert_eq!(label, "five");
    }
}
