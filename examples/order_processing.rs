//! Figure 7 replay: customer/supplier order processing with asymmetric
//! validation rules, run over the threaded in-process transport using the
//! synchronous controller API — the deployment-shaped way to use the
//! middleware.
//!
//! Run with: `cargo run --example order_processing`

use b2bobjects::apps::order::{Order, OrderObject, OrderRoles};
use b2bobjects::core::{Controller, CoordError, Coordinator, ObjectId};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer};
use b2bobjects::net::ThreadedNet;
use std::time::Duration;

fn main() {
    let customer = PartyId::new("customer");
    let supplier = PartyId::new("supplier");
    let roles = OrderRoles::two_party(customer.clone(), supplier.clone());

    let kp_c = KeyPair::generate_from_seed(1);
    let kp_s = KeyPair::generate_from_seed(2);
    let mut ring = KeyRing::new();
    ring.register(customer.clone(), kp_c.public_key());
    ring.register(supplier.clone(), kp_s.public_key());

    let net = ThreadedNet::spawn(vec![
        Coordinator::builder(customer.clone(), kp_c)
            .ring(ring.clone())
            .seed(1)
            .build(),
        Coordinator::builder(supplier.clone(), kp_s)
            .ring(ring)
            .seed(2)
            .build(),
    ]);

    // The customer creates the order object; the supplier connects.
    let r = roles.clone();
    net.handle(&customer).invoke(move |c, _| {
        c.register_object(
            ObjectId::new("order-1001"),
            Box::new(move || Box::new(OrderObject::new(r.clone()))),
        )
        .unwrap();
    });
    let supplier_ctrl = Controller::new(net.handle(&supplier).clone(), ObjectId::new("order-1001"))
        .timeout(Duration::from_secs(10));
    let r = roles;
    supplier_ctrl
        .connect(
            Box::new(move || Box::new(OrderObject::new(r.clone()))),
            customer.clone(),
        )
        .expect("supplier joins the order");

    let mut customer_ctrl =
        Controller::new(net.handle(&customer).clone(), ObjectId::new("order-1001"))
            .timeout(Duration::from_secs(10));
    let mut supplier_ctrl2 =
        Controller::new(net.handle(&supplier).clone(), ObjectId::new("order-1001"))
            .timeout(Duration::from_secs(10));

    let step = |ctrl: &mut Controller<_>, describe: &str, mutate: &dyn Fn(&mut Order)| {
        // A peer's synchronous call can return while this replica is still
        // installing the same run; wait for the object to go idle first.
        ctrl.wait_idle().unwrap();
        // The paper's wrapper pattern: enter → overwrite → mutate → leave.
        ctrl.enter().unwrap();
        ctrl.overwrite().unwrap();
        let mut order = Order::from_bytes(ctrl.state().unwrap()).unwrap();
        mutate(&mut order);
        ctrl.set_state(order.to_bytes()).unwrap();
        println!("== {describe}");
        match ctrl.leave() {
            Ok(_) => {
                let agreed = Order::from_bytes(&ctrl.current_state().unwrap()).unwrap();
                println!("   accepted; agreed order now:\n{agreed}");
            }
            Err(CoordError::Invalidated { vetoers }) => {
                println!("   REJECTED by {} — \"{}\"", vetoers[0].0, vetoers[0].1);
            }
            Err(e) => println!("   error: {e}"),
        }
    };

    step(&mut customer_ctrl, "customer orders 2 × widget1", &|o| {
        o.set_quantity("widget1", 2)
    });
    step(&mut supplier_ctrl2, "supplier prices widget1 at 10", &|o| {
        o.set_price("widget1", 10);
    });
    step(&mut customer_ctrl, "customer orders 10 × widget2", &|o| {
        o.set_quantity("widget2", 10)
    });
    step(
        &mut supplier_ctrl2,
        "supplier prices widget2 AND changes its quantity (invalid)",
        &|o| {
            o.set_price("widget2", 7);
            o.set_quantity("widget2", 99);
        },
    );

    // Wait for the customer's replica to hold the final agreed order.
    let final_order = Order::from_bytes(&customer_ctrl.current_state().unwrap()).unwrap();
    println!("final agreed order at the customer:\n{final_order}");
    net.shutdown();
}
