//! Quickstart: two organisations share a grow-only counter.
//!
//! Demonstrates the minimal B2BObjects lifecycle — register, connect,
//! coordinate a valid change, watch an invalid change get vetoed — on the
//! deterministic simulator.
//!
//! Run with: `cargo run --example quickstart`

use b2bobjects::core::{Coordinator, Decision, ObjectId, Outcome, SharedCell};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
use b2bobjects::net::SimNet;

fn counter() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(SharedCell::new(0u64).with_validator(|_who, old, new| {
        if new >= old {
            Decision::accept()
        } else {
            Decision::reject("the counter may not decrease")
        }
    }))
}

fn main() {
    // Every party has a signing key; the shared ring lets each verify the
    // others' signatures (paper §4.2).
    let (alice, bob) = (PartyId::new("alice-corp"), PartyId::new("bob-ltd"));
    let kp_a = KeyPair::generate_from_seed(1);
    let kp_b = KeyPair::generate_from_seed(2);
    let mut ring = KeyRing::new();
    ring.register(alice.clone(), kp_a.public_key());
    ring.register(bob.clone(), kp_b.public_key());

    let mut net = SimNet::new(42);
    net.add_node(
        Coordinator::builder(alice.clone(), kp_a)
            .ring(ring.clone())
            .seed(1)
            .build(),
    );
    net.add_node(
        Coordinator::builder(bob.clone(), kp_b)
            .ring(ring)
            .seed(2)
            .build(),
    );

    // alice-corp creates the shared object; bob-ltd joins via the
    // connection protocol (§4.5), sponsored by alice-corp.
    net.invoke(&alice, |c, _| {
        c.register_object(ObjectId::new("contract-counter"), Box::new(counter))
            .unwrap();
    });
    let sponsor = alice.clone();
    net.invoke(&bob, move |c, ctx| {
        c.request_connect(
            ObjectId::new("contract-counter"),
            Box::new(counter),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    net.run_until_quiet(TimeMs(60_000));
    println!(
        "members: {:?}",
        net.node(&alice)
            .members(&ObjectId::new("contract-counter"))
            .unwrap()
    );

    // A valid increase: unanimously agreed and installed at both replicas.
    let oid = ObjectId::new("contract-counter");
    let run = net.invoke(&bob, move |c, ctx| {
        c.propose_overwrite(&oid, serde_json::to_vec(&10u64).unwrap(), ctx)
            .unwrap()
    });
    net.run_until_quiet(TimeMs(60_000));
    println!(
        "bob proposes 10 → {:?}",
        net.node(&bob).outcome_of(&run).unwrap()
    );

    // An invalid decrease: vetoed by alice-corp's local policy, with
    // non-repudiable evidence of the veto at both parties.
    let oid = ObjectId::new("contract-counter");
    let run = net.invoke(&bob, move |c, ctx| {
        c.propose_overwrite(&oid, serde_json::to_vec(&3u64).unwrap(), ctx)
            .unwrap()
    });
    net.run_until_quiet(TimeMs(60_000));
    match net.node(&bob).outcome_of(&run).unwrap() {
        Outcome::Invalidated { vetoers } => {
            println!(
                "bob proposes 3 → vetoed by {} ({})",
                vetoers[0].0, vetoers[0].1
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    let state: u64 = serde_json::from_slice(
        &net.node(&alice)
            .agreed_state(&ObjectId::new("contract-counter"))
            .unwrap(),
    )
    .unwrap();
    println!("agreed counter value at both parties: {state}");
    println!(
        "evidence records held by alice-corp: {}",
        b2bobjects::evidence::EvidenceStore::len(net.node(&alice).evidence())
    );
}
