//! Figure 5 replay over `b2b-net::tcp` — the same Tic-Tac-Toe script as
//! `examples/tictactoe.rs`, but with each organisation's coordinator
//! reachable over a real OS socket, so the two servers can live in two
//! different processes (or hosts).
//!
//! Single process, loopback sockets (default):
//!
//! ```text
//! cargo run --example tcp_tictactoe
//! ```
//!
//! Two OS processes — run each line in its own terminal (order does not
//! matter; the transport reconnects until the peer is up):
//!
//! ```text
//! cargo run --example tcp_tictactoe -- cross  127.0.0.1:7401 127.0.0.1:7402
//! cargo run --example tcp_tictactoe -- nought 127.0.0.1:7402 127.0.0.1:7401
//! ```
//!
//! Arguments are `<role> <my-listen-addr> <peer-addr>`. Both processes
//! derive the same deterministic demo keys, so no key exchange is needed.
//! The party flows below are the *same functions* in both modes — where a
//! coordinator runs is a deployment decision, not a protocol one.

use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::core::{Coordinator, ObjectId, Outcome};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer};
use b2bobjects::evidence::{EvidenceStore, MemStore};
use b2bobjects::net::poll::wait_for;
use b2bobjects::net::{NodeHandle, TcpConfig, TcpEndpoint, TcpNet};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Deadline for in-game steps (sub-millisecond on loopback in practice).
const STEP: Duration = Duration::from_secs(30);
/// Deadline for the initial join — generous because in two-process mode a
/// human may take a while to start the second terminal.
const JOIN: Duration = Duration::from_secs(600);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => run_loopback(),
        [role, listen, peer] => run_party(role, listen, peer),
        _ => {
            eprintln!("usage: tcp_tictactoe [<cross|nought> <listen-addr> <peer-addr>]");
            std::process::exit(2);
        }
    }
}

fn players() -> Players {
    Players {
        cross: PartyId::new("cross"),
        nought: PartyId::new("nought"),
    }
}

fn game_factory() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(GameObject::new(players()))
}

/// Builds one party's coordinator with the shared demo key material.
fn build_node(role: &str) -> (Coordinator, Arc<MemStore>) {
    // Both processes generate *both* keys from fixed seeds, so each can
    // verify the other without an exchange step. A deployment would load
    // certified keys instead (paper §4.1).
    let kp_c = KeyPair::generate_from_seed(1);
    let kp_n = KeyPair::generate_from_seed(2);
    let mut ring = KeyRing::new();
    ring.register(PartyId::new("cross"), kp_c.public_key());
    ring.register(PartyId::new("nought"), kp_n.public_key());
    let (kp, seed) = match role {
        "cross" => (kp_c, 1),
        "nought" => (kp_n, 2),
        other => panic!("unknown role {other:?}: expected cross or nought"),
    };
    let store = Arc::new(MemStore::new());
    let node = Coordinator::builder(PartyId::new(role), kp)
        .ring(ring)
        .store(store.clone())
        .seed(seed)
        .build();
    (node, store)
}

/// Proposes a mutated board and waits for the group's verdict.
fn play(handle: &NodeHandle<Coordinator>, mutate: impl Fn(&mut Board)) -> Outcome {
    let oid = ObjectId::new("game");
    handle.wait_until(STEP, |c| !c.is_busy(&oid));
    let state = handle
        .read(|c| c.agreed_state(&ObjectId::new("game")))
        .expect("board present");
    let mut board = Board::from_bytes(&state).unwrap();
    mutate(&mut board);
    let bytes = board.to_bytes();
    let run = handle.invoke(move |c, ctx| {
        c.propose_overwrite(&ObjectId::new("game"), bytes, ctx)
            .unwrap()
    });
    assert!(
        handle.wait_until(STEP, |c| c.outcome_of(&run).is_some()),
        "no outcome within {STEP:?}"
    );
    handle.read(|c| c.outcome_of(&run).cloned()).unwrap()
}

/// Blocks until the agreed board shows `mark` at (`row`, `col`) — the
/// peer's move has been installed here.
fn wait_mark(handle: &NodeHandle<Coordinator>, deadline: Duration, mark: Mark, row: u8, col: u8) {
    assert!(
        handle.wait_until(deadline, move |c| {
            c.agreed_state(&ObjectId::new("game"))
                .and_then(|s| Board::from_bytes(&s))
                .is_some_and(|b| b.at(row as usize, col as usize) == Some(mark))
        }),
        "peer's move never arrived within {deadline:?}"
    );
}

fn show(handle: &NodeHandle<Coordinator>) -> Board {
    Board::from_bytes(
        &handle
            .read(|c| c.agreed_state(&ObjectId::new("game")))
            .unwrap(),
    )
    .unwrap()
}

/// Cross's whole game: create the object, wait for Nought, play the
/// Figure 5 sequence ending with the cheating move.
fn drive_cross(handle: NodeHandle<Coordinator>, store: Arc<MemStore>) {
    let oid = ObjectId::new("game");
    handle.invoke(|c, _| {
        c.register_object(ObjectId::new("game"), Box::new(game_factory))
            .unwrap();
    });
    println!("[cross] game registered; waiting for nought to connect...");
    assert!(
        handle.wait_until(JOIN, |c| c.members(&oid).is_some_and(|m| m.len() == 2)),
        "nought never joined"
    );
    println!("[cross] nought joined the game");

    assert!(play(&handle, |b| b.play(Mark::X, 1, 1).unwrap()).is_installed());
    println!("[cross] played X at centre; waiting for nought's move");
    wait_mark(&handle, STEP, Mark::O, 0, 0);
    assert!(play(&handle, |b| b.play(Mark::X, 1, 2).unwrap()).is_installed());
    println!("[cross] played X middle-right; now attempting the Figure 5 cheat");

    match play(&handle, |b| b.cheat_set(Mark::O, 2, 1)) {
        Outcome::Invalidated { vetoers } => {
            println!(
                "[cross] cheat VETOED by {} — \"{}\"",
                vetoers[0].0, vetoers[0].1
            );
        }
        other => panic!("cheat should have been vetoed, got {other:?}"),
    }
    println!(
        "[cross] final board:\n{}\n[cross] evidence log holds {} signed records",
        show(&handle),
        store.records().len()
    );
    // Linger so the reliable layer can finish acknowledging the last
    // protocol frames to the peer before this process exits.
    handle.wait_until(STEP, |c| !c.is_busy(&oid));
    std::thread::sleep(Duration::from_secs(1));
}

/// Nought's whole game: join, answer Cross's moves, veto the cheat.
fn drive_nought(handle: NodeHandle<Coordinator>, store: Arc<MemStore>) {
    let oid = ObjectId::new("game");
    handle.invoke(|c, ctx| {
        c.request_connect(
            ObjectId::new("game"),
            Box::new(game_factory),
            PartyId::new("cross"),
            ctx,
        )
        .unwrap();
    });
    println!("[nought] connection requested (sponsor: cross); waiting for admission...");
    assert!(
        handle.wait_until(JOIN, |c| c.is_member(&oid)),
        "never admitted to the game"
    );
    println!("[nought] admitted; waiting for cross's opening move");

    wait_mark(&handle, STEP, Mark::X, 1, 1);
    assert!(play(&handle, |b| b.play(Mark::O, 0, 0).unwrap()).is_installed());
    println!("[nought] played O top-left; waiting for cross");
    wait_mark(&handle, STEP, Mark::X, 1, 2);

    // Cross's cheating proposal is next. This replica's validator vetoes
    // it, so the agreed board never changes — the attempt is visible only
    // in the evidence log, which is exactly the paper's point.
    let before = store.records().len();
    let board_before = show(&handle);
    if wait_for(STEP, || store.records().len() > before) {
        handle.wait_until(STEP, |c| !c.is_busy(&oid));
        println!("[nought] vetoed cross's invalid move; board unchanged:");
    } else {
        println!("[nought] no further proposals arrived; board:");
    }
    assert_eq!(show(&handle).to_bytes(), board_before.to_bytes());
    println!(
        "{}\n[nought] evidence log holds {} signed records of the game,\n\
         [nought] including cross's signed cheat proposal — forfeit provable offline",
        show(&handle),
        store.records().len()
    );
    std::thread::sleep(Duration::from_secs(1));
}

/// Default mode: both parties in this process, real loopback sockets,
/// each driven from its own thread by the same flows used cross-process.
fn run_loopback() {
    let (cross_node, cross_store) = build_node("cross");
    let (nought_node, nought_store) = build_node("nought");
    let net = TcpNet::spawn_loopback(vec![cross_node, nought_node]).expect("bind loopback");
    println!(
        "loopback mode: cross on {}, nought on {}",
        net.endpoint(&PartyId::new("cross")).local_addr(),
        net.endpoint(&PartyId::new("nought")).local_addr()
    );
    let cross_handle = net.handle(&PartyId::new("cross")).clone();
    let t = std::thread::spawn(move || drive_cross(cross_handle, cross_store));
    drive_nought(net.handle(&PartyId::new("nought")).clone(), nought_store);
    t.join().unwrap();
    net.shutdown();
}

/// Two-process mode: this process hosts one party and dials the other.
fn run_party(role: &str, listen: &str, peer: &str) {
    let peer_addr: SocketAddr = peer.parse().expect("peer address like 127.0.0.1:7402");
    let peer_id = PartyId::new(if role == "cross" { "nought" } else { "cross" });
    let (node, store) = build_node(role);
    let mut endpoint = TcpEndpoint::spawn(
        node,
        listen,
        vec![(peer_id, peer_addr)],
        TcpConfig::default(),
    )
    .expect("bind listen address");
    endpoint.start();
    println!(
        "[{role}] listening on {}, peer at {peer_addr}",
        endpoint.local_addr()
    );
    let handle = endpoint.handle().clone();
    match role {
        "cross" => drive_cross(handle, store),
        _ => drive_nought(handle, store),
    }
    let stats = endpoint.stats();
    println!(
        "[{role}] transport: {} frames / {} bytes sent, {} connects ({} reconnects)",
        stats.sent, stats.bytes_sent, stats.connects, stats.reconnects
    );
    endpoint.shutdown();
}
