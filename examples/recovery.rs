//! Crash recovery demo (§3 check-pointing): a party crashes mid-run,
//! recovers from its on-disk write-ahead log, and the run completes —
//! evidence and checkpoints surviving on real files.
//!
//! Run with: `cargo run --example recovery`

use b2bobjects::core::{Coordinator, Decision, ObjectId, SharedCell};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
use b2bobjects::evidence::{EvidenceStore, FileStore};
use b2bobjects::net::{FaultPlan, SimNet};
use std::sync::Arc;

fn counter() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(SharedCell::new(0u64).with_validator(|_w, old, new| {
        if new >= old {
            Decision::accept()
        } else {
            Decision::reject("no decreases")
        }
    }))
}

fn main() {
    let dir = std::env::temp_dir().join(format!("b2b-recovery-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("write-ahead logs under {}", dir.display());

    let alice = PartyId::new("alice");
    let bob = PartyId::new("bob");
    let kp_a = KeyPair::generate_from_seed(1);
    let kp_b = KeyPair::generate_from_seed(2);
    let mut ring = KeyRing::new();
    ring.register(alice.clone(), kp_a.public_key());
    ring.register(bob.clone(), kp_b.public_key());

    let store_a = Arc::new(FileStore::open(dir.join("alice")).unwrap());
    let store_b = Arc::new(FileStore::open(dir.join("bob")).unwrap());

    let mut net = SimNet::new(1);
    net.set_default_plan(FaultPlan::new().delay(TimeMs(10), TimeMs(10)));
    net.add_node(
        Coordinator::builder(alice.clone(), kp_a)
            .ring(ring.clone())
            .store(store_a)
            .seed(1)
            .build(),
    );
    net.add_node(
        Coordinator::builder(bob.clone(), kp_b)
            .ring(ring)
            .store(store_b.clone())
            .seed(2)
            .build(),
    );

    net.invoke(&alice, |c, _| {
        c.register_object(ObjectId::new("ledger"), Box::new(counter))
            .unwrap();
    });
    let sponsor = alice.clone();
    net.invoke(&bob, move |c, ctx| {
        c.request_connect(ObjectId::new("ledger"), Box::new(counter), sponsor, ctx)
            .unwrap();
    });
    net.run_until_quiet(TimeMs(60_000));
    println!(
        "group formed: {:?}",
        net.node(&alice).members(&ObjectId::new("ledger")).unwrap()
    );

    // Crash bob right as a run starts; recover him 3 seconds later.
    let t0 = net.now();
    net.crash_at(t0 + TimeMs(15), bob.clone());
    net.recover_at(t0 + TimeMs(3_000), bob.clone());
    println!("bob will crash at t+15ms and recover at t+3000ms");

    let oid = ObjectId::new("ledger");
    let run = net.invoke(&alice, move |c, ctx| {
        c.propose_overwrite(&oid, serde_json::to_vec(&42u64).unwrap(), ctx)
            .unwrap()
    });
    net.run_until_quiet(TimeMs(600_000));

    println!(
        "run outcome at alice: {:?}",
        net.node(&alice).outcome_of(&run).unwrap()
    );
    let bob_state: u64 = serde_json::from_slice(
        &net.node(&bob)
            .agreed_state(&ObjectId::new("ledger"))
            .unwrap(),
    )
    .unwrap();
    println!("bob's state after recovering from its WAL: {bob_state}");
    println!(
        "bob's on-disk evidence log holds {} records (replayed on recovery)",
        store_b.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
