//! Distributed auction (§2 scenario 3): three auction houses operate one
//! regulated market place; clients bid through whichever house they use
//! and get the same guarantees.
//!
//! Run with: `cargo run --example auction`

use b2bobjects::apps::auction::{Auction, AuctionObject};
use b2bobjects::core::{Coordinator, ObjectId, Outcome};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
use b2bobjects::net::SimNet;

fn main() {
    let houses: Vec<PartyId> = (0..3).map(|i| PartyId::new(format!("house{i}"))).collect();
    let mut ring = KeyRing::new();
    let mut keys = Vec::new();
    for (i, h) in houses.iter().enumerate() {
        let kp = KeyPair::generate_from_seed(i as u64 + 1);
        ring.register(h.clone(), kp.public_key());
        keys.push(kp);
    }
    let mut net = SimNet::new(99);
    for (h, kp) in houses.iter().zip(keys) {
        net.add_node(
            Coordinator::builder(h.clone(), kp)
                .ring(ring.clone())
                .seed(3)
                .build(),
        );
    }

    let opener = houses[0].clone();
    let factory = move || -> Box<dyn b2bobjects::core::B2BObject> {
        Box::new(AuctionObject::new(Auction::open(
            "vintage-guitar",
            PartyId::new("house0"),
            500,
        )))
    };
    let f = factory;
    net.invoke(&opener, move |c, _| {
        c.register_object(ObjectId::new("lot-1"), Box::new(f))
            .unwrap();
    });
    for i in 1..3 {
        let f = factory;
        let sponsor = houses[i - 1].clone();
        net.invoke(&houses[i], move |c, ctx| {
            c.request_connect(ObjectId::new("lot-1"), Box::new(f), sponsor, ctx)
                .unwrap();
        });
        net.run_until_quiet(TimeMs(60_000));
    }
    println!(
        "auction houses sharing lot-1: {:?}",
        net.node(&opener).members(&ObjectId::new("lot-1")).unwrap()
    );

    let mut bid = |house: usize, bidder: &str, amount: u64| {
        let h = houses[house].clone();
        let state = net.node(&h).agreed_state(&ObjectId::new("lot-1")).unwrap();
        let mut auction = Auction::from_bytes(&state).unwrap();
        auction.place_bid(bidder, h.clone(), amount);
        let oid = ObjectId::new("lot-1");
        let bytes = auction.to_bytes();
        let run = net.invoke(&h, move |c, ctx| {
            c.propose_overwrite(&oid, bytes, ctx).unwrap()
        });
        net.run_until_quiet(TimeMs(60_000));
        match net.node(&h).outcome_of(&run).unwrap() {
            Outcome::Installed { .. } => {
                println!("  {bidder} bids {amount} via house{house}: ACCEPTED")
            }
            Outcome::Invalidated { vetoers } => println!(
                "  {bidder} bids {amount} via house{house}: rejected ({})",
                vetoers[0].1
            ),
            other => println!("  {other:?}"),
        }
    };

    bid(1, "alice", 500);
    bid(2, "bob", 650);
    bid(0, "carol", 600); // does not beat bob
    bid(1, "alice", 700);
    bid(2, "dave", 400); // below the running best

    // Only the opening house may close.
    let state = net
        .node(&opener)
        .agreed_state(&ObjectId::new("lot-1"))
        .unwrap();
    let mut auction = Auction::from_bytes(&state).unwrap();
    auction.closed = true;
    let oid = ObjectId::new("lot-1");
    let bytes = auction.to_bytes();
    net.invoke(&opener, move |c, ctx| {
        c.propose_overwrite(&oid, bytes, ctx).unwrap();
    });
    net.run_until_quiet(TimeMs(60_000));

    for h in &houses {
        let auction =
            Auction::from_bytes(&net.node(h).agreed_state(&ObjectId::new("lot-1")).unwrap())
                .unwrap();
        println!("{h} sees: {auction}");
    }
}
