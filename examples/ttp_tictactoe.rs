//! Figure 6 replay: Tic-Tac-Toe played *through a trusted third party*
//! that validates each move before it takes effect — protecting an honest
//! player even when both player servers hold broken rule encodings.
//!
//! Run with: `cargo run --example ttp_tictactoe`

use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::apps::ttp::lenient_game_object;
use b2bobjects::core::{Coordinator, ObjectId, Outcome};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
use b2bobjects::net::SimNet;

fn main() {
    let ttp = PartyId::new("ttp");
    let cross = PartyId::new("cross");
    let nought = PartyId::new("nought");
    let players = Players {
        cross: cross.clone(),
        nought: nought.clone(),
    };

    let mut ring = KeyRing::new();
    let kps: Vec<KeyPair> = (0..3).map(|i| KeyPair::generate_from_seed(i + 1)).collect();
    for (p, kp) in [&ttp, &cross, &nought].into_iter().zip(&kps) {
        ring.register(p.clone(), kp.public_key());
    }
    let mut net = SimNet::new(5);
    for (p, kp) in [&ttp, &cross, &nought].into_iter().zip(kps) {
        net.add_node(
            Coordinator::builder(p.clone(), kp)
                .ring(ring.clone())
                .seed(9)
                .build(),
        );
    }

    // The TTP holds the REFERENCE rules; the players' servers are lenient
    // (imagine mis-encoded or tampered game logic at the player side).
    let p = players.clone();
    net.invoke(&ttp, move |c, _| {
        c.register_object(
            ObjectId::new("game"),
            Box::new(move || Box::new(GameObject::new(p.clone()))),
        )
        .unwrap();
    });
    for (joiner, sponsor) in [(&cross, &ttp), (&nought, &cross)] {
        let p = players.clone();
        let s = sponsor.clone();
        net.invoke(joiner, move |c, ctx| {
            c.request_connect(
                ObjectId::new("game"),
                Box::new(move || lenient_game_object(p.clone())),
                s,
                ctx,
            )
            .unwrap();
        });
        net.run_until_quiet(TimeMs(60_000));
    }
    println!(
        "group: {:?}",
        net.node(&ttp).members(&ObjectId::new("game")).unwrap()
    );

    let mut attempt = |who: &PartyId, describe: &str, mutate: &dyn Fn(&mut Board)| {
        let state = net.node(who).agreed_state(&ObjectId::new("game")).unwrap();
        let mut board = Board::from_bytes(&state).unwrap();
        mutate(&mut board);
        let oid = ObjectId::new("game");
        let bytes = board.to_bytes();
        let run = net.invoke(who, move |c, ctx| {
            c.propose_overwrite(&oid, bytes, ctx).unwrap()
        });
        net.run_until_quiet(TimeMs(60_000));
        println!("== {describe}");
        match net.node(who).outcome_of(&run).unwrap() {
            Outcome::Installed { .. } => println!("   validated by the TTP and installed"),
            Outcome::Invalidated { vetoers } => {
                println!("   VETOED by {} — \"{}\"", vetoers[0].0, vetoers[0].1)
            }
            other => println!("   {other:?}"),
        }
    };

    attempt(&cross, "Cross plays centre (legal)", &|b| {
        b.play(Mark::X, 1, 1).unwrap()
    });
    attempt(&nought, "Nought plays top-left (legal)", &|b| {
        b.play(Mark::O, 0, 0).unwrap()
    });
    attempt(
        &cross,
        "Cross writes a ZERO out of turn — Nought's lenient server would allow it",
        &|b| b.cheat_set(Mark::O, 2, 1),
    );

    let board = Board::from_bytes(
        &net.node(&nought)
            .agreed_state(&ObjectId::new("game"))
            .unwrap(),
    )
    .unwrap();
    println!("agreed board after the vetoed cheat:\n{board}");
    println!("only the TTP needed correct rules — Figure 6's point.");
}
