//! Dispute resolution from non-repudiation logs (§4.1 / §4.4): after a
//! vetoed cheat, the honest party proves the veto to an offline arbiter —
//! and the cheat cannot be passed off as agreed.
//!
//! Run with: `cargo run --example dispute`

use b2bobjects::core::{
    Arbiter, Claim, Coordinator, Decision, ObjectId, Outcome, SharedCell, StateId,
};
use b2bobjects::crypto::{sha256, KeyPair, KeyRing, PartyId, Signer, TimeMs, TimeStampAuthority};
use b2bobjects::evidence::{EvidenceStore, LogAuditor, MemStore};
use b2bobjects::net::SimNet;
use std::sync::Arc;

fn counter() -> Box<dyn b2bobjects::core::B2BObject> {
    Box::new(SharedCell::new(0u64).with_validator(|_w, old, new| {
        if new >= old {
            Decision::accept()
        } else {
            Decision::reject("the counter may not decrease")
        }
    }))
}

fn main() {
    let honest = PartyId::new("honest-org");
    let shady = PartyId::new("shady-org");
    let kp_h = KeyPair::generate_from_seed(1);
    let kp_s = KeyPair::generate_from_seed(2);
    let mut ring = KeyRing::new();
    ring.register(honest.clone(), kp_h.public_key());
    ring.register(shady.clone(), kp_s.public_key());
    let tsa = TimeStampAuthority::new(KeyPair::generate_from_seed(9));

    let store_h = Arc::new(MemStore::new());
    let store_s = Arc::new(MemStore::new());
    let mut net = SimNet::new(3);
    net.add_node(
        Coordinator::builder(honest.clone(), kp_h)
            .ring(ring.clone())
            .tsa(tsa.clone())
            .store(store_h.clone())
            .seed(1)
            .build(),
    );
    net.add_node(
        Coordinator::builder(shady.clone(), kp_s)
            .ring(ring.clone())
            .tsa(tsa.clone())
            .store(store_s.clone())
            .seed(2)
            .build(),
    );

    net.invoke(&honest, |c, _| {
        c.register_object(ObjectId::new("balance"), Box::new(counter))
            .unwrap();
    });
    let sponsor = honest.clone();
    net.invoke(&shady, move |c, ctx| {
        c.request_connect(ObjectId::new("balance"), Box::new(counter), sponsor, ctx)
            .unwrap();
    });
    net.run_until_quiet(TimeMs(60_000));

    // A legitimate agreed value, then a shady attempt to shrink it.
    let oid = ObjectId::new("balance");
    net.invoke(&shady, move |c, ctx| {
        c.propose_overwrite(&oid, serde_json::to_vec(&100u64).unwrap(), ctx)
            .unwrap();
    });
    net.run_until_quiet(TimeMs(60_000));
    let oid = ObjectId::new("balance");
    let cheat_run = net.invoke(&shady, move |c, ctx| {
        c.propose_overwrite(&oid, serde_json::to_vec(&1u64).unwrap(), ctx)
            .unwrap()
    });
    net.run_until_quiet(TimeMs(60_000));
    match net.node(&shady).outcome_of(&cheat_run).unwrap() {
        Outcome::Invalidated { vetoers } => {
            println!(
                "shady-org proposed 1 (down from 100): vetoed by {}",
                vetoers[0].0
            )
        }
        other => println!("unexpected: {other:?}"),
    }

    // --- arbitration, offline, from the logs alone ---
    let arbiter = Arbiter::new(ring.clone());
    let members = net
        .node(&honest)
        .members(&ObjectId::new("balance"))
        .unwrap();

    // 1. honest-org proves the veto from ITS OWN log.
    let veto_claim = Claim::StateVetoed {
        object: ObjectId::new("balance"),
        run: cheat_run,
    };
    println!(
        "arbiter on honest-org's log, claim \"run was vetoed\": {:?}",
        arbiter.judge(&veto_claim, &*store_h)
    );

    // 2. shady-org cannot get the cheat upheld as valid — not even from
    //    its own log, which contains honest-org's signed rejection.
    let bogus = Claim::StateValid {
        object: ObjectId::new("balance"),
        proposer: shady.clone(),
        members: members.clone(),
        state: StateId {
            seq: 2,
            rand_hash: sha256(b"anything"),
            state_hash: sha256(&serde_json::to_vec(&1u64).unwrap()),
        },
    };
    println!(
        "arbiter on shady-org's log, claim \"cheat state is valid\": {:?}",
        arbiter.judge(&bogus, &*store_s)
    );

    // 3. the agreed value 100 IS provably valid, from either log.
    let agreed = net
        .node(&honest)
        .agreed_id(&ObjectId::new("balance"))
        .unwrap();
    let valid = Claim::StateValid {
        object: ObjectId::new("balance"),
        proposer: shady,
        members,
        state: agreed,
    };
    println!(
        "arbiter on honest-org's log, claim \"value 100 was agreed\": {:?}",
        arbiter.judge(&valid, &*store_h)
    );

    // 4. full cryptographic audit of both logs.
    let auditor = LogAuditor::new(ring, Some(tsa.public_key()));
    for (name, store) in [("honest-org", &store_h), ("shady-org", &store_s)] {
        let report = auditor.audit(&**store);
        println!(
            "{name}: {} evidence records, {} verified, clean={}",
            report.total,
            report.valid,
            report.is_clean()
        );
    }
    println!(
        "(evidence record count includes proposals, responses, decides, checkpoints: {})",
        store_h.len()
    );
}
