//! §2 scenario 2: dispersal of Operational Support Systems — a telco and
//! its customer share the service configuration, each controlling the
//! aspects that logically belong to them.
//!
//! Run with: `cargo run --example oss_dispersal`

use b2bobjects::apps::oss::{OssObject, ServiceConfig};
use b2bobjects::core::{Coordinator, ObjectId, Outcome};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
use b2bobjects::net::SimNet;

fn main() {
    let telco = PartyId::new("telco");
    let customer = PartyId::new("customer");
    let kp_t = KeyPair::generate_from_seed(1);
    let kp_c = KeyPair::generate_from_seed(2);
    let mut ring = KeyRing::new();
    ring.register(telco.clone(), kp_t.public_key());
    ring.register(customer.clone(), kp_c.public_key());

    let mut net = SimNet::new(11);
    net.add_node(
        Coordinator::builder(telco.clone(), kp_t)
            .ring(ring.clone())
            .seed(1)
            .build(),
    );
    net.add_node(
        Coordinator::builder(customer.clone(), kp_c)
            .ring(ring)
            .seed(2)
            .build(),
    );

    let factory = {
        let t = telco.clone();
        let c = customer.clone();
        move || -> Box<dyn b2bobjects::core::B2BObject> {
            Box::new(OssObject::new(c.clone(), t.clone()))
        }
    };
    let f = factory.clone();
    net.invoke(&telco, move |c, _| {
        c.register_object(ObjectId::new("svc-1042"), Box::new(f))
            .unwrap();
    });
    let sponsor = telco.clone();
    net.invoke(&customer, move |c, ctx| {
        c.request_connect(ObjectId::new("svc-1042"), Box::new(factory), sponsor, ctx)
            .unwrap();
    });
    net.run_until_quiet(TimeMs(60_000));

    let mut act = |who: &PartyId, describe: &str, mutate: &dyn Fn(&mut ServiceConfig)| {
        let state = net
            .node(who)
            .agreed_state(&ObjectId::new("svc-1042"))
            .unwrap();
        let mut cfg = ServiceConfig::from_bytes(&state).unwrap();
        mutate(&mut cfg);
        let oid = ObjectId::new("svc-1042");
        let bytes = cfg.to_bytes();
        let run = net.invoke(who, move |c, ctx| {
            c.propose_overwrite(&oid, bytes, ctx).unwrap()
        });
        net.run_until_quiet(TimeMs(60_000));
        match net.node(who).outcome_of(&run).unwrap() {
            Outcome::Installed { .. } => println!("✓ {describe}"),
            Outcome::Invalidated { vetoers } => {
                println!(
                    "✗ {describe} — VETOED by {}: {}",
                    vetoers[0].0, vetoers[0].1
                )
            }
            other => println!("? {describe}: {other:?}"),
        }
    };

    act(
        &customer,
        "customer enables call-forwarding and picks low-latency routing",
        &|c| {
            c.features.insert("call-forwarding".into(), true);
            c.routing_policy = "low-latency".into();
        },
    );
    act(&telco, "telco provisions 200 capacity units", &|c| {
        c.capacity = 200;
    });
    act(
        &telco,
        "telco tries to flip the customer's feature toggle",
        &|c| {
            c.features.insert("call-forwarding".into(), false);
        },
    );
    act(&customer, "customer opens a fault ticket", &|c| {
        c.open_ticket("SIP registrations flapping");
    });
    act(
        &customer,
        "customer tries to resolve its own ticket",
        &|c| {
            c.resolve_ticket(1, "self-declared fixed");
        },
    );
    act(&telco, "telco resolves the ticket", &|c| {
        c.resolve_ticket(1, "re-homed to a healthy SBC");
    });

    let final_cfg = ServiceConfig::from_bytes(
        &net.node(&customer)
            .agreed_state(&ObjectId::new("svc-1042"))
            .unwrap(),
    )
    .unwrap();
    println!(
        "\nagreed configuration: features={:?} routing={} capacity={} tickets={}",
        final_cfg.features,
        final_cfg.routing_policy,
        final_cfg.capacity,
        final_cfg.tickets.len()
    );
    println!(
        "ticket #1: {} → {:?}",
        final_cfg.tickets[0].description, final_cfg.tickets[0].resolution
    );
}
