//! Figure 5 replay: the Tic-Tac-Toe game, including Cross's cheating move
//! being vetoed and "not reflected at Nought's server".
//!
//! Both coordinators share a telemetry handle with a ring-buffer flight
//! recorder, so each move prints the protocol rounds behind it (propose →
//! vote-collect → decide → install) and the run ends with the merged
//! metrics table.
//!
//! Run with: `cargo run --example tictactoe`

use b2bobjects::apps::tictactoe::{Board, GameObject, Mark, Players};
use b2bobjects::core::{Coordinator, ObjectId, Outcome};
use b2bobjects::crypto::{KeyPair, KeyRing, PartyId, Signer, TimeMs};
use b2bobjects::net::SimNet;
use b2bobjects::telemetry::{RingRecorder, Telemetry};
use std::sync::Arc;

fn main() {
    let cross = PartyId::new("cross");
    let nought = PartyId::new("nought");
    let players = Players {
        cross: cross.clone(),
        nought: nought.clone(),
    };

    let kp_c = KeyPair::generate_from_seed(1);
    let kp_n = KeyPair::generate_from_seed(2);
    let mut ring = KeyRing::new();
    ring.register(cross.clone(), kp_c.public_key());
    ring.register(nought.clone(), kp_n.public_key());

    let flight = Arc::new(RingRecorder::new(4096));
    let telemetry = Telemetry::with_sink(flight.clone());
    let mut net = SimNet::new(7);
    net.set_telemetry(telemetry.clone());
    net.add_node(
        Coordinator::builder(cross.clone(), kp_c)
            .ring(ring.clone())
            .seed(1)
            .telemetry(telemetry.clone())
            .build(),
    );
    net.add_node(
        Coordinator::builder(nought.clone(), kp_n)
            .ring(ring)
            .seed(2)
            .telemetry(telemetry.clone())
            .build(),
    );

    let p = players.clone();
    net.invoke(&cross, move |c, _| {
        c.register_object(
            ObjectId::new("game"),
            Box::new(move || Box::new(GameObject::new(p.clone()))),
        )
        .unwrap();
    });
    let p = players;
    let sponsor = cross.clone();
    net.invoke(&nought, move |c, ctx| {
        c.request_connect(
            ObjectId::new("game"),
            Box::new(move || Box::new(GameObject::new(p.clone()))),
            sponsor,
            ctx,
        )
        .unwrap();
    });
    net.run_until_quiet(TimeMs(60_000));

    // Protocol-level events only; the `net` span (send/deliver/retransmit)
    // is recorded too but would drown the per-move story.
    let mut seen = 0usize;
    let print_round_trace = |seen: &mut usize| {
        let events = flight.events();
        for event in &events[*seen..] {
            if event.span != "net" {
                println!("   {}", event.render_line());
            }
        }
        *seen = events.len();
    };
    println!("== Nought joins the game (sponsored by Cross)");
    print_round_trace(&mut seen);

    let mut play = |who: &PartyId, describe: &str, mutate: &dyn Fn(&mut Board)| {
        let state = net.node(who).agreed_state(&ObjectId::new("game")).unwrap();
        let mut board = Board::from_bytes(&state).unwrap();
        mutate(&mut board);
        let oid = ObjectId::new("game");
        let bytes = board.to_bytes();
        let run = net.invoke(who, move |c, ctx| {
            c.propose_overwrite(&oid, bytes, ctx).unwrap()
        });
        net.run_until_quiet(TimeMs(60_000));
        println!("== {describe}");
        match net.node(who).outcome_of(&run).unwrap() {
            Outcome::Installed { .. } => {
                let b = Board::from_bytes(
                    &net.node(&PartyId::new("nought"))
                        .agreed_state(&ObjectId::new("game"))
                        .unwrap(),
                )
                .unwrap();
                println!("   agreed at both servers:\n{b}");
            }
            Outcome::Invalidated { vetoers } => {
                println!("   VETOED by {} — \"{}\"", vetoers[0].0, vetoers[0].1);
                let b = Board::from_bytes(
                    &net.node(&PartyId::new("nought"))
                        .agreed_state(&ObjectId::new("game"))
                        .unwrap(),
                )
                .unwrap();
                println!("   Nought's server still shows:\n{b}");
            }
            other => println!("   {other:?}"),
        }
        print_round_trace(&mut seen);
    };

    // The Figure 5 move sequence.
    play(&cross, "Cross claims middle row, centre square", &|b| {
        b.play(Mark::X, 1, 1).unwrap()
    });
    play(&nought, "Nought claims top row, left square", &|b| {
        b.play(Mark::O, 0, 0).unwrap()
    });
    play(&cross, "Cross claims middle row, right square", &|b| {
        b.play(Mark::X, 1, 2).unwrap()
    });
    play(
        &cross,
        "Cross attempts to mark bottom row, centre square with a ZERO (cheat!)",
        &|b| b.cheat_set(Mark::O, 2, 1),
    );
    println!("Cross forfeits the game — Nought holds signed evidence of the attempt.");
    println!("\n== Final metrics (both servers, merged)\n");
    println!("{}", telemetry.metrics().snapshot().render_table());
}
